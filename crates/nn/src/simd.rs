//! Runtime-dispatched SIMD micro-kernels for the f32 matrix hot paths.
//!
//! Two backends compile into every build:
//!
//! * [`Kernel::Scalar`] — the original scalar loops, kept verbatim as the
//!   always-available reference implementation (bit-identical to every
//!   release before the SIMD work landed);
//! * [`Kernel::Avx2Fma`] — hand-rolled 8-lane `std::arch` AVX2/FMA
//!   kernels, selected at runtime behind `is_x86_feature_detected!` so
//!   the binary still runs (and non-x86 targets still build) without the
//!   features.
//!
//! Dispatch happens once per process (cached in an atomic) from the
//! `NNLQP_SIMD` environment variable (`off`/`0`/`scalar`/`false`/`no`
//! forces the scalar backend; anything else auto-detects) and can be
//! overridden programmatically with [`set_simd_enabled`] — the facade
//! builder's `simd(bool)` knob and the bench `--no-simd` flag call that.
//!
//! # Numerical contract
//!
//! Element-wise sweeps (bias+activation, add, scale, scale-then-add,
//! ReLU, row max, integer dot products) are **bit-identical** across
//! backends: vector lanes perform exactly the operations the scalar loop
//! performs, ReLU masks with a `v < 0.0` compare (preserving `-0.0`, like
//! the scalar test), and integer math has no rounding at all. The GEMM
//! kernels keep ascending-`k` accumulation order per output element
//! *within* a backend — so packed/unpacked and serial/parallel paths of
//! one backend agree bitwise — but the AVX2 backend fuses each
//! multiply-add (one rounding instead of two; scalar tails use
//! `f32::mul_add` so every element sees the same fusion), which makes
//! scalar-vs-SIMD GEMM comparisons a relative-tolerance affair
//! (≤ ~1e-5). The parity suite in `tests/` pins both properties.

use std::sync::atomic::{AtomicU8, Ordering};

/// Which micro-kernel backend a matrix operation runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// Portable scalar reference loops (the pre-SIMD implementation).
    Scalar,
    /// 8-lane AVX2 + FMA kernels (x86-64 with runtime feature detection).
    Avx2Fma,
}

impl Kernel {
    /// Short name for logs and bench output.
    pub fn as_str(self) -> &'static str {
        match self {
            Kernel::Scalar => "scalar",
            Kernel::Avx2Fma => "avx2+fma",
        }
    }
}

const UNRESOLVED: u8 = 0;
const FORCE_SCALAR: u8 = 1;
const USE_AVX2: u8 = 2;

/// Process-wide resolved backend; `UNRESOLVED` until first use.
static KERNEL: AtomicU8 = AtomicU8::new(UNRESOLVED);

/// Whether this CPU (and target) can run the AVX2/FMA backend at all.
pub fn simd_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

fn env_enabled() -> bool {
    match std::env::var("NNLQP_SIMD") {
        Ok(v) => !matches!(
            v.trim().to_ascii_lowercase().as_str(),
            "off" | "0" | "scalar" | "false" | "no"
        ),
        Err(_) => true,
    }
}

/// The active backend for dispatched entry points (`Matrix::matmul` and
/// friends). Resolved once from `NNLQP_SIMD` + CPU detection, then cached.
pub fn kernel() -> Kernel {
    match KERNEL.load(Ordering::Relaxed) {
        FORCE_SCALAR => Kernel::Scalar,
        USE_AVX2 => Kernel::Avx2Fma,
        _ => {
            let k = if env_enabled() && simd_available() {
                USE_AVX2
            } else {
                FORCE_SCALAR
            };
            KERNEL.store(k, Ordering::Relaxed);
            if k == USE_AVX2 {
                Kernel::Avx2Fma
            } else {
                Kernel::Scalar
            }
        }
    }
}

/// Force the backend: `false` pins the scalar reference kernels, `true`
/// re-enables SIMD when the CPU supports it (no-op to `Scalar` otherwise).
/// Overrides whatever `NNLQP_SIMD` said.
pub fn set_simd_enabled(enabled: bool) {
    let k = if enabled && simd_available() {
        USE_AVX2
    } else {
        FORCE_SCALAR
    };
    KERNEL.store(k, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Dispatched slice kernels. Each scalar arm is the exact loop the matrix
// code ran before SIMD; each AVX2 arm is proven (tests + the parity suite)
// to match it bitwise unless noted.
// ---------------------------------------------------------------------------

/// Call an `avx2::` kernel on x86-64; unreachable elsewhere (the
/// [`Kernel::Avx2Fma`] variant is never produced when `simd_available()`
/// is false, and it is false off x86-64).
macro_rules! avx2_call {
    ($f:ident ( $($arg:expr),* )) => {{
        #[cfg(target_arch = "x86_64")]
        // SAFETY: Kernel::Avx2Fma is only ever constructed after
        // `is_x86_feature_detected!("avx2")` && `("fma")` both passed.
        let out = unsafe { avx2::$f($($arg),*) };
        #[cfg(not(target_arch = "x86_64"))]
        let out = unreachable!("AVX2 kernel selected on non-x86_64");
        out
    }};
}

/// One GEMM output row over a row-major `width`-wide B block:
/// `out[j] += sum_k a_row[k] * b[k * width + j]`, k ascending per element.
/// Serves both the unpacked kernel (`b` = full B, `width` = n) and the
/// packed panel kernel (`b` = one panel, `width` = panel width).
#[inline]
pub(crate) fn gemm_row(kern: Kernel, a_row: &[f32], b: &[f32], out: &mut [f32]) {
    let w = out.len();
    debug_assert_eq!(b.len(), a_row.len() * w);
    match kern {
        Kernel::Scalar => {
            for (kk, &a) in a_row.iter().enumerate() {
                let b_row = &b[kk * w..(kk + 1) * w];
                for (o, &bv) in out.iter_mut().zip(b_row) {
                    *o += a * bv;
                }
            }
        }
        Kernel::Avx2Fma => avx2_call!(gemm_row(a_row, b, out)),
    }
}

/// Two GEMM output rows sharing one sweep over B: each loaded B vector
/// feeds both rows' accumulators, halving the B-load traffic that bounds
/// the single-row kernel at small widths. Per output element the k-terms
/// still accumulate in ascending order, so results are bit-identical to
/// two [`gemm_row`] calls on the same backend.
#[inline]
pub(crate) fn gemm_two_rows(
    kern: Kernel,
    a0: &[f32],
    a1: &[f32],
    b: &[f32],
    out0: &mut [f32],
    out1: &mut [f32],
) {
    match kern {
        Kernel::Scalar => {
            gemm_row(Kernel::Scalar, a0, b, out0);
            gemm_row(Kernel::Scalar, a1, b, out1);
        }
        Kernel::Avx2Fma => avx2_call!(gemm_two_rows(a0, a1, b, out0, out1)),
    }
}

/// `dst[j] += a * x[j]` (the t_matmul inner sweep).
#[inline]
pub(crate) fn axpy(kern: Kernel, dst: &mut [f32], a: f32, x: &[f32]) {
    match kern {
        Kernel::Scalar => {
            for (o, &bv) in dst.iter_mut().zip(x) {
                *o += a * bv;
            }
        }
        Kernel::Avx2Fma => avx2_call!(axpy(dst, a, x)),
    }
}

/// One `A @ B^T` output row: `out[j] = dot(a_row, b[j * kd .. (j+1) * kd])`
/// with `kd = a_row.len()`.
#[inline]
pub(crate) fn matmul_t_row(kern: Kernel, a_row: &[f32], b: &[f32], out: &mut [f32]) {
    let kd = a_row.len();
    debug_assert_eq!(b.len(), out.len() * kd);
    match kern {
        Kernel::Scalar => {
            for (j, o) in out.iter_mut().enumerate() {
                let b_row = &b[j * kd..(j + 1) * kd];
                let mut acc = 0.0f32;
                for kk in 0..kd {
                    acc += a_row[kk] * b_row[kk];
                }
                *o = acc;
            }
        }
        Kernel::Avx2Fma => avx2_call!(matmul_t_row(a_row, b, out)),
    }
}

/// `dst[i] += src[i]` (element-wise add; exact on both backends).
#[inline]
pub(crate) fn add_slice(kern: Kernel, dst: &mut [f32], src: &[f32]) {
    match kern {
        Kernel::Scalar => {
            for (a, b) in dst.iter_mut().zip(src) {
                *a += b;
            }
        }
        Kernel::Avx2Fma => avx2_call!(add_slice(dst, src)),
    }
}

/// `dst[i] *= s` (exact on both backends).
#[inline]
pub(crate) fn scale_slice(kern: Kernel, dst: &mut [f32], s: f32) {
    match kern {
        Kernel::Scalar => {
            for a in dst.iter_mut() {
                *a *= s;
            }
        }
        Kernel::Avx2Fma => avx2_call!(scale_slice(dst, s)),
    }
}

/// `dst[i] = dst[i] * s + src[i]` as a separate multiply then add (NOT
/// fused), so it is bit-identical to `scale_slice` followed by
/// `add_slice` on every backend — the attention score epilogue relies on
/// that to fuse two sweeps without moving a single bit.
#[inline]
pub(crate) fn scale_add_slice(kern: Kernel, dst: &mut [f32], s: f32, src: &[f32]) {
    match kern {
        Kernel::Scalar => {
            for (a, &b) in dst.iter_mut().zip(src) {
                *a = *a * s + b;
            }
        }
        Kernel::Avx2Fma => avx2_call!(scale_add_slice(dst, s, src)),
    }
}

/// Fused bias + optional ReLU over one row: `r = act(r + bias)`. The ReLU
/// masks with a `v < 0.0` compare so `-0.0` survives, exactly like the
/// scalar branch (exact on both backends).
#[inline]
pub(crate) fn bias_act_row(kern: Kernel, row: &mut [f32], bias: &[f32], relu: bool) {
    match kern {
        Kernel::Scalar => {
            for (a, &b) in row.iter_mut().zip(bias) {
                let v = *a + b;
                *a = if relu && v < 0.0 { 0.0 } else { v };
            }
        }
        Kernel::Avx2Fma => avx2_call!(bias_act_row(row, bias, relu)),
    }
}

/// In-place ReLU (`v < 0.0` mask; exact on both backends).
#[inline]
pub(crate) fn relu_slice(kern: Kernel, xs: &mut [f32]) {
    match kern {
        Kernel::Scalar => {
            for v in xs.iter_mut() {
                if *v < 0.0 {
                    *v = 0.0;
                }
            }
        }
        Kernel::Avx2Fma => avx2_call!(relu_slice(xs)),
    }
}

/// Row maximum, seeded with `-inf` (softmax stabilizer). Max selection is
/// order-independent for non-NaN input, so backends agree.
#[inline]
pub(crate) fn max_slice(kern: Kernel, xs: &[f32]) -> f32 {
    match kern {
        Kernel::Scalar => {
            let mut max = f32::NEG_INFINITY;
            for &v in xs {
                if v > max {
                    max = v;
                }
            }
            max
        }
        Kernel::Avx2Fma => avx2_call!(max_slice(xs)),
    }
}

/// Softmax numerator: `xs[j] = exp(xs[j] - max)` in place, returning the
/// sum of the results. The scalar arm calls libm `exp` per element and is
/// bit-identical to the pre-SIMD code. The AVX2 arm evaluates a degree-6
/// polynomial `2^f * exp(r)` split (relative error ~1e-8, far inside the
/// ≤1e-5 cross-backend tolerance the FMA GEMMs already set) and sums in
/// lanes — like the GEMMs, numerically equivalent but not bitwise equal
/// to scalar. Each backend is fully deterministic.
#[inline]
pub(crate) fn exp_sum_slice(kern: Kernel, xs: &mut [f32], max: f32) -> f32 {
    match kern {
        Kernel::Scalar => {
            let mut sum = 0.0f32;
            for v in xs.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            sum
        }
        Kernel::Avx2Fma => avx2_call!(exp_sum_slice(xs, max)),
    }
}

/// Signed-i8 dot product accumulated in i32 (the quantized GEMM inner
/// loop). Integer math: bit-identical across backends by construction.
#[inline]
pub(crate) fn dot_i8(kern: Kernel, a: &[i8], b: &[i8]) -> i32 {
    debug_assert_eq!(a.len(), b.len());
    match kern {
        Kernel::Scalar => {
            let mut acc = 0i32;
            for (&x, &y) in a.iter().zip(b) {
                acc += x as i32 * y as i32;
            }
            acc
        }
        Kernel::Avx2Fma => avx2_call!(dot_i8(a, b)),
    }
}

/// The AVX2/FMA bodies. Everything here is `unsafe fn` with
/// `#[target_feature]`: callers must have verified the CPU features
/// (enforced by the dispatch invariant above).
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use std::arch::x86_64::*;

    const LANES: usize = 8;

    /// Horizontal sum of an 8-lane f32 vector.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn hsum(v: __m256) -> f32 {
        let hi = _mm256_extractf128_ps(v, 1);
        let lo = _mm256_castps256_ps128(v);
        let s = _mm_add_ps(lo, hi);
        let s = _mm_hadd_ps(s, s);
        let s = _mm_hadd_ps(s, s);
        _mm_cvtss_f32(s)
    }

    /// Vectorized `exp` for 8 lanes: `exp(x) = 2^f * exp(r)` with
    /// `f = round(x * log2 e)` and `r = x*ln2-split` in `[-ln2/2, ln2/2]`,
    /// where `exp(r)` is a degree-6 Taylor/Horner polynomial (max relative
    /// error ~1e-8 on the reduced range) and `2^f` is built by shifting
    /// `f + 127` into the float exponent field. Inputs are clamped to
    /// ±87 so the exponent reconstruction cannot wrap.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn exp8(x: __m256) -> __m256 {
        let x = _mm256_max_ps(
            _mm256_min_ps(x, _mm256_set1_ps(87.0)),
            _mm256_set1_ps(-87.0),
        );
        let t = _mm256_mul_ps(x, _mm256_set1_ps(std::f32::consts::LOG2_E));
        let f = _mm256_round_ps(t, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
        // r = x - f*ln2, in two steps (hi/lo split) for extra precision.
        let r = _mm256_fnmadd_ps(f, _mm256_set1_ps(0.693_359_4), x);
        let r = _mm256_fnmadd_ps(f, _mm256_set1_ps(-2.121_944_4e-4), r);
        // exp(r) ~= 1 + r + r^2/2 + ... + r^6/720, Horner with FMAs.
        let mut p = _mm256_set1_ps(1.0 / 720.0);
        p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(1.0 / 120.0));
        p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(1.0 / 24.0));
        p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(1.0 / 6.0));
        p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(0.5));
        p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(1.0));
        p = _mm256_fmadd_ps(p, r, _mm256_set1_ps(1.0));
        let pow2 = _mm256_castsi256_ps(_mm256_slli_epi32::<23>(_mm256_add_epi32(
            _mm256_cvtps_epi32(f),
            _mm256_set1_epi32(127),
        )));
        _mm256_mul_ps(p, pow2)
    }

    /// `xs[j] = exp(xs[j] - max)` in place; returns the sum. The tail
    /// (< 8 lanes) runs through the same polynomial via a zero-padded
    /// stack buffer, so every element sees identical math.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn exp_sum_slice(xs: &mut [f32], max: f32) -> f32 {
        let n = xs.len();
        let vmax = _mm256_set1_ps(max);
        let mut vsum = _mm256_setzero_ps();
        let p = xs.as_mut_ptr();
        let mut j = 0;
        while j + LANES <= n {
            let e = exp8(_mm256_sub_ps(_mm256_loadu_ps(p.add(j)), vmax));
            _mm256_storeu_ps(p.add(j), e);
            vsum = _mm256_add_ps(vsum, e);
            j += LANES;
        }
        let mut sum = hsum(vsum);
        if j < n {
            let mut buf = [0.0f32; LANES]; // padding lanes are never read back
            buf[..n - j].copy_from_slice(&xs[j..]);
            let mut out = [0.0f32; LANES];
            _mm256_storeu_ps(
                out.as_mut_ptr(),
                exp8(_mm256_sub_ps(_mm256_loadu_ps(buf.as_ptr()), vmax)),
            );
            for (dst, &e) in xs[j..].iter_mut().zip(&out) {
                *dst = e;
                sum += e;
            }
        }
        sum
    }

    /// `dst[j] += a * x[j]`, one FMA per element (tail uses `mul_add`, so
    /// lane position never changes the rounding behaviour).
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn axpy(dst: &mut [f32], a: f32, x: &[f32]) {
        debug_assert_eq!(dst.len(), x.len());
        let n = dst.len();
        let va = _mm256_set1_ps(a);
        let dp = dst.as_mut_ptr();
        let xp = x.as_ptr();
        let mut j = 0;
        while j + LANES <= n {
            let d = _mm256_loadu_ps(dp.add(j));
            let b = _mm256_loadu_ps(xp.add(j));
            _mm256_storeu_ps(dp.add(j), _mm256_fmadd_ps(va, b, d));
            j += LANES;
        }
        while j < n {
            *dp.add(j) = a.mul_add(*xp.add(j), *dp.add(j));
            j += 1;
        }
    }

    /// One GEMM output row: ascending-k FMA accumulation per element, so
    /// panel decomposition and row order never change the result.
    ///
    /// Register-blocked: each 32/8-wide column block keeps its
    /// accumulators in ymm registers across the entire k loop instead of
    /// round-tripping `out` through memory per k step (the axpy-per-k
    /// formulation this replaces). The per-element FMA chain is the same
    /// ascending-k sequence, so the output is bit-identical — only the
    /// load/store traffic changes.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn gemm_row(a_row: &[f32], b: &[f32], out: &mut [f32]) {
        let w = out.len();
        let k = a_row.len();
        let ap = a_row.as_ptr();
        let bp = b.as_ptr();
        let op = out.as_mut_ptr();
        let mut j = 0;
        while j + 4 * LANES <= w {
            let mut c0 = _mm256_loadu_ps(op.add(j));
            let mut c1 = _mm256_loadu_ps(op.add(j + LANES));
            let mut c2 = _mm256_loadu_ps(op.add(j + 2 * LANES));
            let mut c3 = _mm256_loadu_ps(op.add(j + 3 * LANES));
            for kk in 0..k {
                let a = _mm256_set1_ps(*ap.add(kk));
                let bb = bp.add(kk * w + j);
                c0 = _mm256_fmadd_ps(a, _mm256_loadu_ps(bb), c0);
                c1 = _mm256_fmadd_ps(a, _mm256_loadu_ps(bb.add(LANES)), c1);
                c2 = _mm256_fmadd_ps(a, _mm256_loadu_ps(bb.add(2 * LANES)), c2);
                c3 = _mm256_fmadd_ps(a, _mm256_loadu_ps(bb.add(3 * LANES)), c3);
            }
            _mm256_storeu_ps(op.add(j), c0);
            _mm256_storeu_ps(op.add(j + LANES), c1);
            _mm256_storeu_ps(op.add(j + 2 * LANES), c2);
            _mm256_storeu_ps(op.add(j + 3 * LANES), c3);
            j += 4 * LANES;
        }
        while j + LANES <= w {
            let mut c = _mm256_loadu_ps(op.add(j));
            for kk in 0..k {
                let a = _mm256_set1_ps(*ap.add(kk));
                c = _mm256_fmadd_ps(a, _mm256_loadu_ps(bp.add(kk * w + j)), c);
            }
            _mm256_storeu_ps(op.add(j), c);
            j += LANES;
        }
        while j < w {
            let mut acc = *op.add(j);
            for kk in 0..k {
                acc = (*ap.add(kk)).mul_add(*bp.add(kk * w + j), acc);
            }
            *op.add(j) = acc;
            j += 1;
        }
    }

    /// Two output rows per B sweep (see the dispatching wrapper): 2x4
    /// accumulator tile, so each of the four B vectors loaded per k step
    /// feeds two FMAs instead of one.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn gemm_two_rows(
        a0: &[f32],
        a1: &[f32],
        b: &[f32],
        out0: &mut [f32],
        out1: &mut [f32],
    ) {
        let w = out0.len();
        debug_assert_eq!(out1.len(), w);
        let k = a0.len();
        debug_assert_eq!(a1.len(), k);
        let a0p = a0.as_ptr();
        let a1p = a1.as_ptr();
        let bp = b.as_ptr();
        let o0 = out0.as_mut_ptr();
        let o1 = out1.as_mut_ptr();
        let mut j = 0;
        while j + 4 * LANES <= w {
            let mut c00 = _mm256_loadu_ps(o0.add(j));
            let mut c01 = _mm256_loadu_ps(o0.add(j + LANES));
            let mut c02 = _mm256_loadu_ps(o0.add(j + 2 * LANES));
            let mut c03 = _mm256_loadu_ps(o0.add(j + 3 * LANES));
            let mut c10 = _mm256_loadu_ps(o1.add(j));
            let mut c11 = _mm256_loadu_ps(o1.add(j + LANES));
            let mut c12 = _mm256_loadu_ps(o1.add(j + 2 * LANES));
            let mut c13 = _mm256_loadu_ps(o1.add(j + 3 * LANES));
            for kk in 0..k {
                let bb = bp.add(kk * w + j);
                let b0 = _mm256_loadu_ps(bb);
                let b1 = _mm256_loadu_ps(bb.add(LANES));
                let b2 = _mm256_loadu_ps(bb.add(2 * LANES));
                let b3 = _mm256_loadu_ps(bb.add(3 * LANES));
                let va0 = _mm256_set1_ps(*a0p.add(kk));
                let va1 = _mm256_set1_ps(*a1p.add(kk));
                c00 = _mm256_fmadd_ps(va0, b0, c00);
                c01 = _mm256_fmadd_ps(va0, b1, c01);
                c02 = _mm256_fmadd_ps(va0, b2, c02);
                c03 = _mm256_fmadd_ps(va0, b3, c03);
                c10 = _mm256_fmadd_ps(va1, b0, c10);
                c11 = _mm256_fmadd_ps(va1, b1, c11);
                c12 = _mm256_fmadd_ps(va1, b2, c12);
                c13 = _mm256_fmadd_ps(va1, b3, c13);
            }
            _mm256_storeu_ps(o0.add(j), c00);
            _mm256_storeu_ps(o0.add(j + LANES), c01);
            _mm256_storeu_ps(o0.add(j + 2 * LANES), c02);
            _mm256_storeu_ps(o0.add(j + 3 * LANES), c03);
            _mm256_storeu_ps(o1.add(j), c10);
            _mm256_storeu_ps(o1.add(j + LANES), c11);
            _mm256_storeu_ps(o1.add(j + 2 * LANES), c12);
            _mm256_storeu_ps(o1.add(j + 3 * LANES), c13);
            j += 4 * LANES;
        }
        while j + LANES <= w {
            let mut c0 = _mm256_loadu_ps(o0.add(j));
            let mut c1 = _mm256_loadu_ps(o1.add(j));
            for kk in 0..k {
                let bv = _mm256_loadu_ps(bp.add(kk * w + j));
                c0 = _mm256_fmadd_ps(_mm256_set1_ps(*a0p.add(kk)), bv, c0);
                c1 = _mm256_fmadd_ps(_mm256_set1_ps(*a1p.add(kk)), bv, c1);
            }
            _mm256_storeu_ps(o0.add(j), c0);
            _mm256_storeu_ps(o1.add(j), c1);
            j += LANES;
        }
        while j < w {
            let mut acc0 = *o0.add(j);
            let mut acc1 = *o1.add(j);
            for kk in 0..k {
                let bv = *bp.add(kk * w + j);
                acc0 = (*a0p.add(kk)).mul_add(bv, acc0);
                acc1 = (*a1p.add(kk)).mul_add(bv, acc1);
            }
            *o0.add(j) = acc0;
            *o1.add(j) = acc1;
            j += 1;
        }
    }

    /// Multi-accumulator FMA dot product. The two vector accumulators and
    /// the lane reduction reassociate the sum relative to the scalar
    /// kernel — this is the one helper that is tolerance-compared, like
    /// the GEMM rows that call it.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn dot(a: &[f32], b: &[f32]) -> f32 {
        let n = a.len();
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let mut acc0 = _mm256_setzero_ps();
        let mut acc1 = _mm256_setzero_ps();
        let mut j = 0;
        while j + 2 * LANES <= n {
            acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(ap.add(j)), _mm256_loadu_ps(bp.add(j)), acc0);
            acc1 = _mm256_fmadd_ps(
                _mm256_loadu_ps(ap.add(j + LANES)),
                _mm256_loadu_ps(bp.add(j + LANES)),
                acc1,
            );
            j += 2 * LANES;
        }
        if j + LANES <= n {
            acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(ap.add(j)), _mm256_loadu_ps(bp.add(j)), acc0);
            j += LANES;
        }
        let mut r = hsum(_mm256_add_ps(acc0, acc1));
        while j < n {
            r = (*ap.add(j)).mul_add(*bp.add(j), r);
            j += 1;
        }
        r
    }

    /// One `A @ B^T` output row (dot product against every row of B).
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn matmul_t_row(a_row: &[f32], b: &[f32], out: &mut [f32]) {
        let kd = a_row.len();
        for (j, o) in out.iter_mut().enumerate() {
            *o = dot(a_row, b.get_unchecked(j * kd..(j + 1) * kd));
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn add_slice(dst: &mut [f32], src: &[f32]) {
        let n = dst.len();
        let dp = dst.as_mut_ptr();
        let sp = src.as_ptr();
        let mut j = 0;
        while j + LANES <= n {
            let d = _mm256_loadu_ps(dp.add(j));
            let s = _mm256_loadu_ps(sp.add(j));
            _mm256_storeu_ps(dp.add(j), _mm256_add_ps(d, s));
            j += LANES;
        }
        while j < n {
            *dp.add(j) += *sp.add(j);
            j += 1;
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn scale_slice(dst: &mut [f32], s: f32) {
        let n = dst.len();
        let dp = dst.as_mut_ptr();
        let vs = _mm256_set1_ps(s);
        let mut j = 0;
        while j + LANES <= n {
            _mm256_storeu_ps(dp.add(j), _mm256_mul_ps(_mm256_loadu_ps(dp.add(j)), vs));
            j += LANES;
        }
        while j < n {
            *dp.add(j) *= s;
            j += 1;
        }
    }

    /// `dst = dst * s + src` as separate mul then add — deliberately NOT
    /// an FMA, to stay bit-identical to scale-then-add on every backend.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn scale_add_slice(dst: &mut [f32], s: f32, src: &[f32]) {
        let n = dst.len();
        let dp = dst.as_mut_ptr();
        let sp = src.as_ptr();
        let vs = _mm256_set1_ps(s);
        let mut j = 0;
        while j + LANES <= n {
            let scaled = _mm256_mul_ps(_mm256_loadu_ps(dp.add(j)), vs);
            _mm256_storeu_ps(dp.add(j), _mm256_add_ps(scaled, _mm256_loadu_ps(sp.add(j))));
            j += LANES;
        }
        while j < n {
            *dp.add(j) = *dp.add(j) * s + *sp.add(j);
            j += 1;
        }
    }

    /// ReLU mask: keep `v` where `!(v < 0.0)`. `cmp_lt` + `andnot` (not
    /// `max_ps`) so `-0.0` is preserved exactly like the scalar branch.
    #[inline]
    #[target_feature(enable = "avx2,fma")]
    unsafe fn relu_vec(v: __m256) -> __m256 {
        let neg = _mm256_cmp_ps(v, _mm256_setzero_ps(), _CMP_LT_OQ);
        _mm256_andnot_ps(neg, v)
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn relu_slice(xs: &mut [f32]) {
        let n = xs.len();
        let p = xs.as_mut_ptr();
        let mut j = 0;
        while j + LANES <= n {
            _mm256_storeu_ps(p.add(j), relu_vec(_mm256_loadu_ps(p.add(j))));
            j += LANES;
        }
        while j < n {
            if *p.add(j) < 0.0 {
                *p.add(j) = 0.0;
            }
            j += 1;
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn bias_act_row(row: &mut [f32], bias: &[f32], relu: bool) {
        let n = row.len();
        let rp = row.as_mut_ptr();
        let bp = bias.as_ptr();
        let mut j = 0;
        while j + LANES <= n {
            let mut v = _mm256_add_ps(_mm256_loadu_ps(rp.add(j)), _mm256_loadu_ps(bp.add(j)));
            if relu {
                v = relu_vec(v);
            }
            _mm256_storeu_ps(rp.add(j), v);
            j += LANES;
        }
        while j < n {
            let v = *rp.add(j) + *bp.add(j);
            *rp.add(j) = if relu && v < 0.0 { 0.0 } else { v };
            j += 1;
        }
    }

    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn max_slice(xs: &[f32]) -> f32 {
        let n = xs.len();
        let p = xs.as_ptr();
        let mut vmax = _mm256_set1_ps(f32::NEG_INFINITY);
        let mut j = 0;
        while j + LANES <= n {
            vmax = _mm256_max_ps(vmax, _mm256_loadu_ps(p.add(j)));
            j += LANES;
        }
        // Reduce lanes.
        let hi = _mm256_extractf128_ps(vmax, 1);
        let lo = _mm256_castps256_ps128(vmax);
        let m = _mm_max_ps(lo, hi);
        let m = _mm_max_ps(m, _mm_movehl_ps(m, m));
        let m = _mm_max_ss(m, _mm_shuffle_ps(m, m, 0b01));
        let mut max = _mm_cvtss_f32(m);
        while j < n {
            if *p.add(j) > max {
                max = *p.add(j);
            }
            j += 1;
        }
        max
    }

    /// i8 x i8 -> i32 dot: widen 16 lanes to i16, `madd` adjacent pairs
    /// into i32 and accumulate. Products cap at 127*127 = 16129, so the
    /// pairwise i16-product sums (≤ 32258) are exact in i32; whole-k sums
    /// stay far under i32::MAX for every shape this workload has.
    #[target_feature(enable = "avx2,fma")]
    pub unsafe fn dot_i8(a: &[i8], b: &[i8]) -> i32 {
        let n = a.len();
        let ap = a.as_ptr();
        let bp = b.as_ptr();
        let mut acc = _mm256_setzero_si256();
        let mut j = 0;
        while j + 16 <= n {
            let va = _mm256_cvtepi8_epi16(_mm_loadu_si128(ap.add(j) as *const __m128i));
            let vb = _mm256_cvtepi8_epi16(_mm_loadu_si128(bp.add(j) as *const __m128i));
            acc = _mm256_add_epi32(acc, _mm256_madd_epi16(va, vb));
            j += 16;
        }
        let hi = _mm256_extracti128_si256(acc, 1);
        let lo = _mm256_castsi256_si128(acc);
        let s = _mm_add_epi32(lo, hi);
        let s = _mm_hadd_epi32(s, s);
        let s = _mm_hadd_epi32(s, s);
        let mut r = _mm_cvtsi128_si32(s);
        while j < n {
            r += *ap.add(j) as i32 * *bp.add(j) as i32;
            j += 1;
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnlqp_ir::Rng64;

    fn backends() -> Vec<Kernel> {
        let mut ks = vec![Kernel::Scalar];
        if simd_available() {
            ks.push(Kernel::Avx2Fma);
        }
        ks
    }

    fn rand_vec(n: usize, rng: &mut Rng64) -> Vec<f32> {
        (0..n).map(|_| rng.range_f64(-2.0, 2.0) as f32).collect()
    }

    #[test]
    fn elementwise_kernels_are_bitwise_equal_across_backends() {
        let mut rng = Rng64::new(90);
        // Ragged lengths around the 8-lane width, including 0.
        for n in [0usize, 1, 5, 7, 8, 9, 15, 16, 17, 31, 64, 100] {
            let src = rand_vec(n, &mut rng);
            let bias = rand_vec(n, &mut rng);
            let base = rand_vec(n, &mut rng);
            for &kern in &backends()[1..] {
                let (mut a, mut b) = (base.clone(), base.clone());
                add_slice(Kernel::Scalar, &mut a, &src);
                add_slice(kern, &mut b, &src);
                assert_eq!(a, b, "add n={n}");
                let (mut a, mut b) = (base.clone(), base.clone());
                scale_slice(Kernel::Scalar, &mut a, 0.37);
                scale_slice(kern, &mut b, 0.37);
                assert_eq!(a, b, "scale n={n}");
                let (mut a, mut b) = (base.clone(), base.clone());
                scale_add_slice(Kernel::Scalar, &mut a, 0.37, &src);
                scale_add_slice(kern, &mut b, 0.37, &src);
                assert_eq!(a, b, "scale_add n={n}");
                for relu in [false, true] {
                    let (mut a, mut b) = (base.clone(), base.clone());
                    bias_act_row(Kernel::Scalar, &mut a, &bias, relu);
                    bias_act_row(kern, &mut b, &bias, relu);
                    assert_eq!(a, b, "bias_act relu={relu} n={n}");
                }
                let (mut a, mut b) = (base.clone(), base.clone());
                relu_slice(Kernel::Scalar, &mut a);
                relu_slice(kern, &mut b);
                assert_eq!(a, b, "relu n={n}");
                assert_eq!(
                    max_slice(Kernel::Scalar, &base).to_bits(),
                    max_slice(kern, &base).to_bits(),
                    "max n={n}"
                );
            }
        }
    }

    #[test]
    fn relu_kernel_preserves_negative_zero() {
        for kern in backends() {
            let mut xs = vec![-0.0f32, 0.0, -1.0, 2.0, -0.0, -0.0, -0.0, -0.0, -0.0];
            relu_slice(kern, &mut xs);
            assert_eq!(xs[0].to_bits(), (-0.0f32).to_bits(), "{kern:?}");
            assert_eq!(xs[2], 0.0);
            assert_eq!(xs[8].to_bits(), (-0.0f32).to_bits(), "{kern:?} tail");
        }
    }

    #[test]
    fn exp_sum_tracks_scalar_within_tolerance() {
        let mut rng = Rng64::new(95);
        // Ragged lengths; values span the post-max-subtraction softmax
        // range plus deep-negative and clamp-edge points.
        for n in [1usize, 5, 7, 8, 9, 16, 17, 60, 100] {
            let mut base: Vec<f32> = (0..n).map(|_| rng.range_f64(-30.0, 4.0) as f32).collect();
            base[0] = -90.0; // below the AVX2 clamp: both arms give ~0
            let max = max_slice(Kernel::Scalar, &base);
            let mut want = base.clone();
            let want_sum = exp_sum_slice(Kernel::Scalar, &mut want, max);
            for &kern in &backends()[1..] {
                let mut got = base.clone();
                let got_sum = exp_sum_slice(kern, &mut got, max);
                assert!(
                    (got_sum - want_sum).abs() / want_sum.max(1e-20) < 1e-6,
                    "{kern:?} n={n} sum {got_sum} vs {want_sum}"
                );
                for (j, (&g, &w)) in got.iter().zip(&want).enumerate() {
                    let denom = w.abs().max(1e-20);
                    assert!(
                        (g - w).abs() / denom < 1e-6,
                        "{kern:?} n={n} elem {j}: {g} vs {w}"
                    );
                }
            }
        }
    }

    #[test]
    fn scalar_exp_sum_matches_libm_bitwise() {
        let mut rng = Rng64::new(96);
        let base: Vec<f32> = (0..33).map(|_| rng.range_f64(-10.0, 3.0) as f32).collect();
        let max = max_slice(Kernel::Scalar, &base);
        let mut got = base.clone();
        exp_sum_slice(Kernel::Scalar, &mut got, max);
        for (g, b) in got.iter().zip(&base) {
            assert_eq!(g.to_bits(), (b - max).exp().to_bits());
        }
    }

    #[test]
    fn i8_dot_is_exact_on_every_backend() {
        let mut rng = Rng64::new(91);
        for n in [0usize, 1, 15, 16, 17, 33, 64, 129] {
            let a: Vec<i8> = (0..n).map(|_| rng.range_f64(-127.0, 127.0) as i8).collect();
            let b: Vec<i8> = (0..n).map(|_| rng.range_f64(-127.0, 127.0) as i8).collect();
            let want: i32 = a.iter().zip(&b).map(|(&x, &y)| x as i32 * y as i32).sum();
            for kern in backends() {
                assert_eq!(dot_i8(kern, &a, &b), want, "{kern:?} n={n}");
            }
        }
    }

    #[test]
    fn gemm_rows_agree_within_tolerance_across_backends() {
        let mut rng = Rng64::new(92);
        for (k, w) in [(3usize, 5usize), (8, 8), (13, 17), (40, 33), (64, 128)] {
            let a_row = rand_vec(k, &mut rng);
            let b = rand_vec(k * w, &mut rng);
            let mut want = vec![0.0f32; w];
            gemm_row(Kernel::Scalar, &a_row, &b, &mut want);
            let mut tw = vec![0.0f32; w];
            matmul_t_row(Kernel::Scalar, &a_row, &b, &mut tw);
            for &kern in &backends()[1..] {
                let mut got = vec![0.0f32; w];
                gemm_row(kern, &a_row, &b, &mut got);
                for (x, y) in got.iter().zip(&want) {
                    assert!((x - y).abs() <= 1e-5 * y.abs().max(1.0), "gemm {k}x{w}");
                }
                let mut got = vec![0.0f32; w];
                // matmul_t_row wants b as [w, k] row-major; reuse the same
                // buffer (contents differ in meaning, tolerance still holds
                // against the scalar run over the identical buffer).
                matmul_t_row(kern, &a_row, &b, &mut got);
                for (x, y) in got.iter().zip(&tw) {
                    assert!((x - y).abs() <= 1e-5 * y.abs().max(1.0), "mmt {k}x{w}");
                }
            }
        }
    }

    #[test]
    fn dispatch_override_round_trips() {
        // Save, exercise both settings, restore the resolved state.
        let before = kernel();
        set_simd_enabled(false);
        assert_eq!(kernel(), Kernel::Scalar);
        set_simd_enabled(true);
        assert_eq!(
            kernel(),
            if simd_available() {
                Kernel::Avx2Fma
            } else {
                Kernel::Scalar
            }
        );
        set_simd_enabled(before == Kernel::Avx2Fma);
    }
}
