//! Multi-head self-attention over node-feature tokens with an additive
//! attention bias — the transformer-encoder counterpart of the SAGE
//! convolution in `sage.rs` (NAR-Former-V2 direction):
//!
//! ```text
//! A_h = softmax( (X Wq)_h (X Wk)_h^T / sqrt(d_h)  +  B )
//! F_v = L2( W1 . X  +  Wo . concat_h(A_h (X Wv)_h) )
//! ```
//!
//! `B` is an adjacency-derived bias ([`attention_bias`]): zero on the
//! diagonal and on graph edges, a large negative constant elsewhere, so
//! attention stays global but strongly prefers structural neighbors. The
//! self path `W1 . X`, the optional ReLU and the row L2-normalization
//! mirror the SAGE layer exactly, which keeps the two encoders
//! interchangeable behind the same embed/head split.

use crate::csr::Csr;
use crate::layers::{
    l2_normalize_rows, l2_normalize_rows_backward, l2_normalize_rows_inplace, relu_inplace, Linear,
    LinearGrad,
};
use crate::tensor::{Activation, Matrix, Scratch};
use nnlqp_ir::Rng64;

/// Additive bias for non-edge, non-diagonal attention scores. Finite (not
/// `-inf`) so every pair keeps a gradient path, but large enough that
/// post-softmax mass concentrates on the graph neighborhood.
pub const ATTN_NONEDGE_BIAS: f32 = -8.0;

/// Build the `[n, n]` attention-bias matrix from an adjacency: `0` for
/// self-pairs and graph edges, [`ATTN_NONEDGE_BIAS`] everywhere else.
pub fn attention_bias(adj: &Csr) -> Matrix {
    let n = adj.n();
    let mut b = Matrix::from_fn(n, n, |i, j| if i == j { 0.0 } else { ATTN_NONEDGE_BIAS });
    for i in 0..n {
        for &j in adj.neighbors(i) {
            b.set(i, j as usize, 0.0);
        }
    }
    b
}

/// One attention block: query/key/value/output projections, a parallel
/// self transform `w1` (the SAGE `W1` analogue), optional ReLU, row L2
/// normalization. All projections are square (`d_model -> d_model`).
#[derive(Debug, Clone, PartialEq)]
pub struct AttnLayer {
    /// Query projection.
    pub wq: Linear,
    /// Key projection.
    pub wk: Linear,
    /// Value projection.
    pub wv: Linear,
    /// Output projection over the concatenated heads.
    pub wo: Linear,
    /// Self transform, added to the attention output.
    pub w1: Linear,
    /// Attention heads (`d_model` must divide evenly).
    pub n_heads: usize,
    /// Apply ReLU before the L2 normalization.
    pub relu: bool,
}

/// Activations cached by the forward pass for the backward pass.
#[derive(Debug, Clone)]
pub struct AttnCache {
    x: Matrix,
    q: Matrix,
    k: Matrix,
    v: Matrix,
    /// Post-softmax attention, one `[n, n]` matrix per head.
    attn: Vec<Matrix>,
    o: Matrix,
    pre_act: Matrix,
    y_norm: Matrix,
    norms: Vec<f32>,
}

/// Gradients of an [`AttnLayer`].
#[derive(Debug, Clone)]
pub struct AttnGrad {
    /// Gradient of the query projection.
    pub d_wq: LinearGrad,
    /// Gradient of the key projection.
    pub d_wk: LinearGrad,
    /// Gradient of the value projection.
    pub d_wv: LinearGrad,
    /// Gradient of the output projection.
    pub d_wo: LinearGrad,
    /// Gradient of the self transform.
    pub d_w1: LinearGrad,
}

impl AttnGrad {
    /// Zero gradients matching a layer.
    pub fn zeros_like(l: &AttnLayer) -> Self {
        AttnGrad {
            d_wq: LinearGrad::zeros_like(&l.wq),
            d_wk: LinearGrad::zeros_like(&l.wk),
            d_wv: LinearGrad::zeros_like(&l.wv),
            d_wo: LinearGrad::zeros_like(&l.wo),
            d_w1: LinearGrad::zeros_like(&l.w1),
        }
    }

    /// Accumulate (batch summation).
    pub fn add_assign(&mut self, other: &AttnGrad) {
        self.d_wq.add_assign(&other.d_wq);
        self.d_wk.add_assign(&other.d_wk);
        self.d_wv.add_assign(&other.d_wv);
        self.d_wo.add_assign(&other.d_wo);
        self.d_w1.add_assign(&other.d_w1);
    }

    /// Scale by a constant.
    pub fn scale(&mut self, s: f32) {
        self.d_wq.scale(s);
        self.d_wk.scale(s);
        self.d_wv.scale(s);
        self.d_wo.scale(s);
        self.d_w1.scale(s);
    }
}

/// Copy columns `[start, start+width)` out of `m`.
fn col_block(m: &Matrix, start: usize, width: usize) -> Matrix {
    Matrix::from_fn(m.rows, width, |i, j| m.get(i, start + j))
}

/// [`col_block`] into a caller-provided (scratch) matrix — the inference
/// path extracts every head through reused buffers instead of allocating
/// a fresh matrix per head per layer per graph.
fn col_block_into(m: &Matrix, start: usize, dst: &mut Matrix) {
    debug_assert_eq!(dst.rows, m.rows);
    for i in 0..m.rows {
        let src = &m.row(i)[start..start + dst.cols];
        dst.row_mut(i).copy_from_slice(src);
    }
}

/// Write `src` into `dst` at column offset `start`.
fn set_col_block(dst: &mut Matrix, start: usize, src: &Matrix) {
    for i in 0..src.rows {
        for j in 0..src.cols {
            dst.set(i, start + j, src.get(i, j));
        }
    }
}

/// Numerically stable row softmax, in place. One implementation shared by
/// the training and inference paths keeps them bit-identical to each
/// other. Max reduction, the `exp` + sum, and the final `1/sum` multiply
/// all dispatch on the SIMD backend; the scalar arm of every step
/// reproduces the pre-SIMD results bit for bit, while the AVX2 `exp`
/// (polynomial, ~1e-8 relative) tracks scalar within the same ≤1e-5
/// cross-backend tolerance the FMA GEMMs set.
fn softmax_rows_inplace(s: &mut Matrix) {
    let kern = crate::simd::kernel();
    for i in 0..s.rows {
        let row = s.row_mut(i);
        let max = crate::simd::max_slice(kern, row);
        let sum = crate::simd::exp_sum_slice(kern, row, max);
        crate::simd::scale_slice(kern, row, 1.0 / sum);
    }
}

/// Backward through a row softmax: `dS = A .* (dA - rowsum(A .* dA))`.
fn softmax_rows_backward(a: &Matrix, da: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows, a.cols);
    for i in 0..a.rows {
        let ar = a.row(i);
        let dr = da.row(i);
        let dot: f32 = ar.iter().zip(dr).map(|(&av, &dv)| av * dv).sum();
        for j in 0..a.cols {
            out.set(i, j, ar[j] * (dr[j] - dot));
        }
    }
    out
}

/// The attention core shared — verbatim — by [`AttnLayer::forward`] and
/// [`AttnLayer::forward_eval`]: per-head scaled dot-product scores plus
/// bias, row softmax, value mixing, heads concatenated. Returns the
/// concatenated output and the per-head attention matrices.
fn attend(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    bias: &Matrix,
    n_heads: usize,
) -> (Matrix, Vec<Matrix>) {
    let d = q.cols;
    let dh = d / n_heads;
    let scale = 1.0 / (dh as f32).sqrt();
    let mut o = Matrix::zeros(q.rows, d);
    let mut attn = Vec::with_capacity(n_heads);
    for h in 0..n_heads {
        let qh = col_block(q, h * dh, dh);
        let kh = col_block(k, h * dh, dh);
        let vh = col_block(v, h * dh, dh);
        let mut s = qh.matmul_t(&kh);
        s.scale_add_assign(scale, bias);
        softmax_rows_inplace(&mut s);
        let oh = s.matmul(&vh);
        set_col_block(&mut o, h * dh, &oh);
        attn.push(s);
    }
    (o, attn)
}

/// [`attend`] for the inference path: the same arithmetic — score scaling,
/// bias, softmax, value mixing, identical op order, so results are bitwise
/// equal — but every per-head intermediate (the head column blocks, the
/// `[n, n]` score matrix, the mixed output) is drawn from the shared
/// [`Scratch`] arena instead of freshly allocated, and the attention
/// matrices are returned to the arena rather than kept for a backward
/// pass. Public so the quantized predictor can reuse the f32 attention
/// core around its int8 projections.
pub fn attend_eval(
    q: &Matrix,
    k: &Matrix,
    v: &Matrix,
    bias: &Matrix,
    n_heads: usize,
    scratch: &mut Scratch,
) -> Matrix {
    let d = q.cols;
    let n = q.rows;
    let dh = d / n_heads;
    let scale = 1.0 / (dh as f32).sqrt();
    let mut o = scratch.take(n, d);
    let mut qh = scratch.take(n, dh);
    let mut kh = scratch.take(n, dh);
    let mut vh = scratch.take(n, dh);
    let mut s = scratch.take(n, n);
    let mut oh = scratch.take(n, dh);
    for h in 0..n_heads {
        col_block_into(q, h * dh, &mut qh);
        col_block_into(k, h * dh, &mut kh);
        col_block_into(v, h * dh, &mut vh);
        qh.matmul_t_into(&kh, &mut s);
        s.scale_add_assign(scale, bias);
        softmax_rows_inplace(&mut s);
        s.matmul_into(&vh, &mut oh, scratch.pack_buf());
        set_col_block(&mut o, h * dh, &oh);
    }
    scratch.put(qh);
    scratch.put(kh);
    scratch.put(vh);
    scratch.put(s);
    scratch.put(oh);
    o
}

impl AttnLayer {
    /// JSON value form (checkpointing).
    pub fn to_value(&self) -> serde_json::Value {
        serde_json::json!({
            "wq": self.wq.to_value(),
            "wk": self.wk.to_value(),
            "wv": self.wv.to_value(),
            "wo": self.wo.to_value(),
            "w1": self.w1.to_value(),
            "n_heads": self.n_heads,
            "relu": self.relu,
        })
    }

    /// Inverse of [`AttnLayer::to_value`].
    pub fn from_value(v: &serde_json::Value) -> Result<Self, String> {
        Ok(AttnLayer {
            wq: Linear::from_value(&v["wq"])?,
            wk: Linear::from_value(&v["wk"])?,
            wv: Linear::from_value(&v["wv"])?,
            wo: Linear::from_value(&v["wo"])?,
            w1: Linear::from_value(&v["w1"])?,
            n_heads: v["n_heads"]
                .as_u64()
                .map(|x| x as usize)
                .ok_or("attn n_heads missing")?,
            relu: v["relu"].as_bool().ok_or("attn relu flag missing")?,
        })
    }

    /// New square block `d_model -> d_model` with `n_heads` heads and
    /// ReLU enabled. `d_model` must be divisible by `n_heads`.
    pub fn new(d_model: usize, n_heads: usize, rng: &mut Rng64) -> Self {
        assert!(n_heads > 0, "attention needs at least one head");
        assert!(
            d_model.is_multiple_of(n_heads),
            "d_model {d_model} not divisible by n_heads {n_heads}"
        );
        AttnLayer {
            wq: Linear::new(d_model, d_model, rng),
            wk: Linear::new(d_model, d_model, rng),
            wv: Linear::new(d_model, d_model, rng),
            wo: Linear::new(d_model, d_model, rng),
            w1: Linear::new(d_model, d_model, rng),
            n_heads,
            relu: true,
        }
    }

    /// Forward over all node tokens at once; `x: [n, d]`, `bias: [n, n]`
    /// (from [`attention_bias`]) -> `[n, d]`.
    pub fn forward(&self, x: &Matrix, bias: &Matrix) -> (Matrix, AttnCache) {
        let q = self.wq.forward(x);
        let k = self.wk.forward(x);
        let v = self.wv.forward(x);
        let (o, attn) = attend(&q, &k, &v, bias, self.n_heads);
        let mut pre = self.w1.forward(x);
        let mixed = self.wo.forward(&o);
        pre.add_assign(&mixed);
        let act = if self.relu {
            crate::layers::relu(&pre)
        } else {
            pre.clone()
        };
        let (y_norm, norms) = l2_normalize_rows(&act);
        (
            y_norm.clone(),
            AttnCache {
                x: x.clone(),
                q,
                k,
                v,
                attn,
                o,
                pre_act: pre,
                y_norm,
                norms,
            },
        )
    }

    /// Inference-only forward: the same arithmetic as
    /// [`AttnLayer::forward`] — bit for bit — without the backward cache.
    /// The projections run on the fused GEMM+bias kernels into scratch
    /// buffers; the attention core is [`attend_eval`], op-for-op the same
    /// sweep as the training path's [`attend`] but with every per-head
    /// intermediate drawn from the arena, so parity is structural, not
    /// coincidental.
    pub fn forward_eval(&self, x: &Matrix, bias: &Matrix, scratch: &mut Scratch) -> Matrix {
        let mut q = scratch.take(x.rows, self.wq.w.cols);
        self.wq
            .forward_into(x, Activation::Identity, &mut q, scratch.pack_buf());
        let mut k = scratch.take(x.rows, self.wk.w.cols);
        self.wk
            .forward_into(x, Activation::Identity, &mut k, scratch.pack_buf());
        let mut v = scratch.take(x.rows, self.wv.w.cols);
        self.wv
            .forward_into(x, Activation::Identity, &mut v, scratch.pack_buf());
        let o = attend_eval(&q, &k, &v, bias, self.n_heads, scratch);
        scratch.put(q);
        scratch.put(k);
        scratch.put(v);
        let mut out = scratch.take(x.rows, self.w1.w.cols);
        self.w1
            .forward_into(x, Activation::Identity, &mut out, scratch.pack_buf());
        let mut mixed = scratch.take(o.rows, self.wo.w.cols);
        self.wo
            .forward_into(&o, Activation::Identity, &mut mixed, scratch.pack_buf());
        scratch.put(o);
        out.add_assign(&mixed);
        scratch.put(mixed);
        if self.relu {
            relu_inplace(&mut out);
        }
        l2_normalize_rows_inplace(&mut out);
        out
    }

    /// Backward; returns `(dx, grads)`.
    pub fn backward(&self, cache: &AttnCache, dy: &Matrix, bias: &Matrix) -> (Matrix, AttnGrad) {
        let _ = bias; // the bias is additive and constant: no gradient
        let d = cache.q.cols;
        let dh = d / self.n_heads;
        let scale = 1.0 / (dh as f32).sqrt();
        // Through the normalization and the optional ReLU.
        let d_act = l2_normalize_rows_backward(&cache.y_norm, &cache.norms, dy);
        let d_pre = if self.relu {
            crate::layers::relu_backward(&cache.pre_act, &d_act)
        } else {
            d_act
        };
        // The two summed paths: self transform and attention output.
        let (dx_self, d_w1) = self.w1.backward(&cache.x, &d_pre);
        let (d_o, d_wo) = self.wo.backward(&cache.o, &d_pre);
        // Per head, back through value mixing, softmax and the scores.
        let mut dq = Matrix::zeros(cache.q.rows, d);
        let mut dk = Matrix::zeros(cache.k.rows, d);
        let mut dv = Matrix::zeros(cache.v.rows, d);
        for h in 0..self.n_heads {
            let a = &cache.attn[h];
            let kh = col_block(&cache.k, h * dh, dh);
            let qh = col_block(&cache.q, h * dh, dh);
            let d_oh = col_block(&d_o, h * dh, dh);
            let d_a = d_oh.matmul_t(&col_block(&cache.v, h * dh, dh));
            let d_vh = a.t_matmul(&d_oh);
            let mut d_s = softmax_rows_backward(a, &d_a);
            d_s.scale(scale);
            let d_qh = d_s.matmul(&kh);
            let d_kh = d_s.t_matmul(&qh);
            set_col_block(&mut dq, h * dh, &d_qh);
            set_col_block(&mut dk, h * dh, &d_kh);
            set_col_block(&mut dv, h * dh, &d_vh);
        }
        // Through the three projections; all read the same input `x`.
        let (dx_q, d_wq) = self.wq.backward(&cache.x, &dq);
        let (dx_k, d_wk) = self.wk.backward(&cache.x, &dk);
        let (dx_v, d_wv) = self.wv.backward(&cache.x, &dv);
        let mut dx = dx_self;
        dx.add_assign(&dx_q);
        dx.add_assign(&dx_k);
        dx.add_assign(&dx_v);
        (
            dx,
            AttnGrad {
                d_wq,
                d_wk,
                d_wv,
                d_wo,
                d_w1,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (AttnLayer, Matrix, Matrix) {
        let mut rng = Rng64::new(40);
        let layer = AttnLayer::new(4, 2, &mut rng);
        let x = Matrix::from_fn(5, 4, |_, _| rng.range_f64(-1.0, 1.0) as f32);
        let adj = Csr::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (1, 3)]);
        let bias = attention_bias(&adj);
        (layer, x, bias)
    }

    #[test]
    fn bias_is_zero_on_diagonal_and_edges() {
        let adj = Csr::from_edges(4, &[(0, 1), (2, 3)]);
        let b = attention_bias(&adj);
        for i in 0..4 {
            assert_eq!(b.get(i, i), 0.0);
        }
        // Edges are symmetric in the CSR (undirected neighborhoods).
        assert_eq!(b.get(0, 1), 0.0);
        assert_eq!(b.get(1, 0), 0.0);
        assert_eq!(b.get(0, 2), ATTN_NONEDGE_BIAS);
        assert_eq!(b.get(3, 1), ATTN_NONEDGE_BIAS);
    }

    #[test]
    fn attention_rows_sum_to_one() {
        let (layer, x, bias) = setup();
        let q = layer.wq.forward(&x);
        let k = layer.wk.forward(&x);
        let v = layer.wv.forward(&x);
        let (_, attn) = attend(&q, &k, &v, &bias, layer.n_heads);
        assert_eq!(attn.len(), 2);
        for a in &attn {
            for i in 0..a.rows {
                let s: f32 = a.row(i).iter().sum();
                assert!((s - 1.0).abs() < 1e-5, "row {i} sums to {s}");
            }
        }
    }

    #[test]
    fn forward_shape_and_unit_rows() {
        let (mut layer, x, bias) = setup();
        layer.relu = false; // with ReLU an all-negative row collapses to zero
        let (y, _) = layer.forward(&x, &bias);
        assert_eq!((y.rows, y.cols), (5, 4));
        for i in 0..y.rows {
            let n: f32 = y.row(i).iter().map(|v| v * v).sum::<f32>().sqrt();
            assert!((n - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn attend_eval_matches_attend_bitwise() {
        let (layer, x, bias) = setup();
        let q = layer.wq.forward(&x);
        let k = layer.wk.forward(&x);
        let v = layer.wv.forward(&x);
        let (want, _) = attend(&q, &k, &v, &bias, layer.n_heads);
        let mut scratch = Scratch::new();
        let got = attend_eval(&q, &k, &v, &bias, layer.n_heads, &mut scratch);
        assert_eq!(got, want);
        // Warm arena second pass: same buffers, same bits.
        scratch.put(got);
        let again = attend_eval(&q, &k, &v, &bias, layer.n_heads, &mut scratch);
        assert_eq!(again, want);
    }

    #[test]
    fn forward_eval_matches_forward_bitwise() {
        let (layer, x, bias) = setup();
        let (want, _) = layer.forward(&x, &bias);
        let mut scratch = Scratch::new();
        let got = layer.forward_eval(&x, &bias, &mut scratch);
        assert_eq!(got, want);
        // Second pass through the (now warm) scratch arena is identical.
        scratch.put(got);
        let again = layer.forward_eval(&x, &bias, &mut scratch);
        assert_eq!(again, want);
        // And without the ReLU.
        let mut no_relu = layer;
        no_relu.relu = false;
        let (want2, _) = no_relu.forward(&x, &bias);
        assert_eq!(no_relu.forward_eval(&x, &bias, &mut scratch), want2);
    }

    #[test]
    fn gradcheck_weights_and_input() {
        let (layer, x, bias) = setup();
        // Asymmetric scalar loss: sum(y * coeff).
        let mut rng = Rng64::new(41);
        let coeff = Matrix::from_fn(5, 4, |_, _| rng.range_f64(-1.0, 1.0) as f32);
        let loss = |l: &AttnLayer, xx: &Matrix| -> f64 {
            let (y, _) = l.forward(xx, &bias);
            y.data
                .iter()
                .zip(&coeff.data)
                .map(|(&a, &c)| (a * c) as f64)
                .sum()
        };
        let (_, cache) = layer.forward(&x, &bias);
        let (dx, g) = layer.backward(&cache, &coeff, &bias);

        let h = 1e-3f32;
        // Spot-check one entry of every projection.
        let picks: [(&str, usize, usize); 5] = [
            ("wq", 0, 0),
            ("wk", 1, 2),
            ("wv", 3, 1),
            ("wo", 2, 3),
            ("w1", 0, 2),
        ];
        for (which, i, j) in picks {
            let mut lp = layer.clone();
            let mut lm = layer.clone();
            fn pick<'a>(l: &'a mut AttnLayer, which: &str) -> &'a mut Matrix {
                match which {
                    "wq" => &mut l.wq.w,
                    "wk" => &mut l.wk.w,
                    "wv" => &mut l.wv.w,
                    "wo" => &mut l.wo.w,
                    _ => &mut l.w1.w,
                }
            }
            let base = pick(&mut lp, which).get(i, j);
            pick(&mut lp, which).set(i, j, base + h);
            pick(&mut lm, which).set(i, j, base - h);
            let num = (loss(&lp, &x) - loss(&lm, &x)) / (2.0 * h as f64);
            let analytic = match which {
                "wq" => g.d_wq.dw.get(i, j),
                "wk" => g.d_wk.dw.get(i, j),
                "wv" => g.d_wv.dw.get(i, j),
                "wo" => g.d_wo.dw.get(i, j),
                _ => g.d_w1.dw.get(i, j),
            } as f64;
            assert!(
                (num - analytic).abs() < 2e-2,
                "{which}[{i},{j}]: num {num} vs {analytic}"
            );
        }
        // Input gradient spot checks (flows through all five paths and the
        // softmax coupling between tokens).
        for &(i, j) in &[(0usize, 0usize), (2, 3), (4, 1)] {
            let mut xp = x.clone();
            let mut xm = x.clone();
            xp.set(i, j, x.get(i, j) + h);
            xm.set(i, j, x.get(i, j) - h);
            let num = (loss(&layer, &xp) - loss(&layer, &xm)) / (2.0 * h as f64);
            assert!(
                (num - dx.get(i, j) as f64).abs() < 2e-2,
                "dx[{i},{j}]: num {num} vs {}",
                dx.get(i, j)
            );
        }
    }

    #[test]
    fn grad_accumulation_api() {
        let (layer, x, bias) = setup();
        let (_, cache) = layer.forward(&x, &bias);
        let dy = Matrix::from_fn(5, 4, |_, _| 1.0);
        let (_, g1) = layer.backward(&cache, &dy, &bias);
        let mut acc = AttnGrad::zeros_like(&layer);
        acc.add_assign(&g1);
        acc.add_assign(&g1);
        acc.scale(0.5);
        for (a, b) in acc.d_wq.dw.data.iter().zip(&g1.d_wq.dw.data) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn json_value_roundtrip() {
        let (layer, x, bias) = setup();
        let back = AttnLayer::from_value(&layer.to_value()).unwrap();
        assert_eq!(back, layer);
        let (want, _) = layer.forward(&x, &bias);
        let (got, _) = back.forward(&x, &bias);
        assert_eq!(got, want);
    }
}
