//! Bootstrap-aggregated random forest regression — the estimator class the
//! nn-Meter official project uses for kernel latency (Appendix E). Trees
//! are fitted in parallel with rayon.

use crate::tree::{RegressionTree, TreeConfig};
use nnlqp_ir::Rng64;
use rayon::prelude::*;

/// Forest parameters.
#[derive(Debug, Clone, Copy)]
pub struct RandomForestConfig {
    /// Number of trees.
    pub n_trees: usize,
    /// Per-tree growth parameters.
    pub tree: TreeConfig,
    /// Bootstrap sample fraction (1.0 = classic bootstrap, with
    /// replacement).
    pub sample_frac: f64,
}

impl Default for RandomForestConfig {
    fn default() -> Self {
        RandomForestConfig {
            n_trees: 60,
            tree: TreeConfig {
                max_depth: 14,
                min_samples_split: 4,
                min_samples_leaf: 2,
                max_features: None, // set from data dimension at fit time
            },
            sample_frac: 1.0,
        }
    }
}

/// A fitted forest.
#[derive(Debug, Clone)]
pub struct RandomForest {
    trees: Vec<RegressionTree>,
}

impl RandomForest {
    /// Fit `cfg.n_trees` trees on bootstrap resamples of `(x, y)`.
    pub fn fit(x: &[Vec<f64>], y: &[f64], cfg: RandomForestConfig, seed: u64) -> Self {
        assert_eq!(x.len(), y.len());
        assert!(!x.is_empty(), "empty training set");
        let d = x[0].len();
        let mut tree_cfg = cfg.tree;
        if tree_cfg.max_features.is_none() {
            // sqrt-ish heuristic, at least 1, at most d.
            tree_cfg.max_features =
                Some(((d as f64).sqrt().ceil() as usize).clamp(1, d).max(d / 3));
        }
        let n = x.len();
        let take = ((n as f64) * cfg.sample_frac).round().max(1.0) as usize;
        let trees: Vec<RegressionTree> = (0..cfg.n_trees)
            .into_par_iter()
            .map(|t| {
                let mut rng = Rng64::new(seed ^ (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                // Bootstrap with replacement.
                let mut bx = Vec::with_capacity(take);
                let mut by = Vec::with_capacity(take);
                for _ in 0..take {
                    let i = rng.below(n);
                    bx.push(x[i].clone());
                    by.push(y[i]);
                }
                RegressionTree::fit(&bx, &by, tree_cfg, &mut rng)
            })
            .collect();
        RandomForest { trees }
    }

    /// Mean prediction over all trees.
    pub fn predict(&self, x: &[f64]) -> f64 {
        self.trees.iter().map(|t| t.predict(x)).sum::<f64>() / self.trees.len() as f64
    }

    /// Predict a batch.
    pub fn predict_many(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        xs.par_iter().map(|x| self.predict(x)).collect()
    }

    /// Number of trees.
    pub fn len(&self) -> usize {
        self.trees.len()
    }

    /// True if the forest has no trees.
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_poly(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut r = Rng64::new(seed);
        let x: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![r.range_f64(-2.0, 2.0), r.range_f64(-2.0, 2.0)])
            .collect();
        let y: Vec<f64> = x
            .iter()
            .map(|v| v[0] * v[0] + 0.5 * v[1] + r.normal(0.0, 0.05))
            .collect();
        (x, y)
    }

    #[test]
    fn fits_nonlinear_function() {
        let (x, y) = noisy_poly(800, 60);
        let f = RandomForest::fit(&x, &y, RandomForestConfig::default(), 1);
        let (xt, yt) = noisy_poly(100, 61);
        let mse: f64 = xt
            .iter()
            .zip(&yt)
            .map(|(xi, yi)| (f.predict(xi) - yi).powi(2))
            .sum::<f64>()
            / 100.0;
        assert!(mse < 0.1, "test mse {mse}");
    }

    #[test]
    fn forest_beats_single_tree_on_noise() {
        let (x, y) = noisy_poly(400, 62);
        let (xt, yt) = noisy_poly(200, 63);
        let mut r = Rng64::new(2);
        let tree = crate::tree::RegressionTree::fit(&x, &y, TreeConfig::default(), &mut r);
        let forest = RandomForest::fit(&x, &y, RandomForestConfig::default(), 3);
        let err = |f: &dyn Fn(&[f64]) -> f64| {
            xt.iter()
                .zip(&yt)
                .map(|(xi, yi)| (f(xi) - yi).powi(2))
                .sum::<f64>()
                / xt.len() as f64
        };
        let te = err(&|x| tree.predict(x));
        let fe = err(&|x| forest.predict(x));
        assert!(fe <= te * 1.05, "forest {fe} vs tree {te}");
    }

    #[test]
    fn deterministic_per_seed() {
        let (x, y) = noisy_poly(200, 64);
        let a = RandomForest::fit(&x, &y, RandomForestConfig::default(), 9);
        let b = RandomForest::fit(&x, &y, RandomForestConfig::default(), 9);
        let p = vec![0.3, -1.0];
        assert_eq!(a.predict(&p), b.predict(&p));
    }

    #[test]
    fn predict_many_matches_predict() {
        let (x, y) = noisy_poly(100, 65);
        let f = RandomForest::fit(&x, &y, RandomForestConfig::default(), 4);
        let batch = f.predict_many(&x[..5]);
        for (b, xi) in batch.iter().zip(&x[..5]) {
            assert_eq!(*b, f.predict(xi));
        }
    }
}
