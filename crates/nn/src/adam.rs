//! The Adam optimizer (Kingma & Ba, 2014) — the paper trains with Adam at
//! learning rate 0.001 (§8.1).

use std::collections::HashMap;

/// Adam with per-tensor first/second-moment state, keyed by caller-chosen
/// tensor ids (stable across steps).
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate.
    pub lr: f64,
    /// First-moment decay.
    pub beta1: f64,
    /// Second-moment decay.
    pub beta2: f64,
    /// Numerical floor.
    pub eps: f64,
    t: u64,
    state: HashMap<u64, (Vec<f64>, Vec<f64>)>,
}

impl Adam {
    /// Paper defaults: lr 1e-3, betas (0.9, 0.999).
    pub fn new(lr: f64) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            state: HashMap::new(),
        }
    }

    /// Begin a new optimization step (increments the bias-correction
    /// timestep). Call once per mini-batch, before `update`ing tensors.
    pub fn begin_step(&mut self) {
        self.t += 1;
    }

    /// Current timestep.
    pub fn timestep(&self) -> u64 {
        self.t
    }

    /// Apply one Adam update to a tensor identified by `key`.
    pub fn update(&mut self, key: u64, param: &mut [f32], grad: &[f32]) {
        assert_eq!(param.len(), grad.len(), "param/grad length mismatch");
        assert!(self.t > 0, "call begin_step() before update()");
        let (m, v) = self
            .state
            .entry(key)
            .or_insert_with(|| (vec![0.0; param.len()], vec![0.0; param.len()]));
        assert_eq!(m.len(), param.len(), "tensor size changed under key {key}");
        let b1 = self.beta1;
        let b2 = self.beta2;
        let bc1 = 1.0 - b1.powi(self.t as i32);
        let bc2 = 1.0 - b2.powi(self.t as i32);
        for i in 0..param.len() {
            let g = grad[i] as f64;
            m[i] = b1 * m[i] + (1.0 - b1) * g;
            v[i] = b2 * v[i] + (1.0 - b2) * g * g;
            let m_hat = m[i] / bc1;
            let v_hat = v[i] / bc2;
            param[i] -= (self.lr * m_hat / (v_hat.sqrt() + self.eps)) as f32;
        }
    }

    /// Drop all state (e.g. when starting a fine-tuning phase).
    pub fn reset(&mut self) {
        self.t = 0;
        self.state.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_on_quadratic() {
        // minimize (x - 3)^2; grad = 2(x - 3).
        let mut x = [0.0f32];
        let mut opt = Adam::new(0.1);
        for _ in 0..500 {
            opt.begin_step();
            let g = [2.0 * (x[0] - 3.0)];
            opt.update(1, &mut x, &g);
        }
        assert!((x[0] - 3.0).abs() < 1e-2, "x = {}", x[0]);
    }

    #[test]
    fn first_step_size_is_lr() {
        // Adam's bias correction makes the first update ~= lr * sign(g).
        let mut x = [0.0f32];
        let mut opt = Adam::new(0.001);
        opt.begin_step();
        opt.update(1, &mut x, &[123.0]);
        assert!((x[0] + 0.001).abs() < 1e-6, "x = {}", x[0]);
    }

    #[test]
    fn separate_keys_have_separate_state() {
        let mut opt = Adam::new(0.01);
        let mut a = [0.0f32];
        let mut b = [0.0f32];
        for _ in 0..10 {
            opt.begin_step();
            opt.update(1, &mut a, &[1.0]);
            opt.update(2, &mut b, &[-1.0]);
        }
        assert!(a[0] < 0.0 && b[0] > 0.0);
        assert!((a[0] + b[0]).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "begin_step")]
    fn update_before_begin_panics() {
        let mut opt = Adam::new(0.01);
        let mut x = [0.0f32];
        opt.update(1, &mut x, &[1.0]);
    }

    #[test]
    fn reset_clears_state() {
        let mut opt = Adam::new(0.01);
        let mut x = [0.0f32];
        opt.begin_step();
        opt.update(1, &mut x, &[1.0]);
        opt.reset();
        assert_eq!(opt.timestep(), 0);
    }
}
