//! Closed-form ridge linear regression — the FLOPs and FLOPs+MAC baselines
//! (Appendix E: "we directly use the FLOPs feature or FLOPs+MAC features to
//! predict latency by linear regression") and the kernel-sum correction
//! applied to nn-Meter / TPU.

/// Ridge regression `y ~ X w + b`, solved by normal equations with
/// Gaussian elimination (feature counts here are tiny: 1-2 columns).
#[derive(Debug, Clone)]
pub struct LinearRegression {
    /// Coefficients, one per feature.
    pub coef: Vec<f64>,
    /// Intercept.
    pub intercept: f64,
}

/// Solve the symmetric system `A x = b` by Gaussian elimination with
/// partial pivoting. `A` is row-major `n x n`.
fn solve(mut a: Vec<f64>, mut b: Vec<f64>, n: usize) -> Vec<f64> {
    for col in 0..n {
        // Pivot.
        let mut piv = col;
        for r in (col + 1)..n {
            if a[r * n + col].abs() > a[piv * n + col].abs() {
                piv = r;
            }
        }
        if piv != col {
            for c in 0..n {
                a.swap(col * n + c, piv * n + c);
            }
            b.swap(col, piv);
        }
        let d = a[col * n + col];
        if d.abs() < 1e-12 {
            continue; // singular direction; ridge term normally prevents this
        }
        for r in (col + 1)..n {
            let f = a[r * n + col] / d;
            if f == 0.0 {
                continue;
            }
            for c in col..n {
                a[r * n + c] -= f * a[col * n + c];
            }
            b[r] -= f * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for col in (0..n).rev() {
        let mut acc = b[col];
        for c in (col + 1)..n {
            acc -= a[col * n + c] * x[c];
        }
        let d = a[col * n + col];
        x[col] = if d.abs() < 1e-12 { 0.0 } else { acc / d };
    }
    x
}

impl LinearRegression {
    /// Fit on rows of features `x` (each `d` long) against targets `y`,
    /// with ridge strength `lambda` (not applied to the intercept).
    pub fn fit(x: &[Vec<f64>], y: &[f64], lambda: f64) -> Self {
        assert_eq!(x.len(), y.len(), "sample count mismatch");
        assert!(!x.is_empty(), "empty training set");
        let d = x[0].len();
        let n = d + 1; // + intercept column
                       // Normal equations over the augmented design matrix [X | 1].
        let mut xtx = vec![0.0f64; n * n];
        let mut xty = vec![0.0f64; n];
        for (row, &target) in x.iter().zip(y) {
            assert_eq!(row.len(), d, "ragged feature row");
            for i in 0..n {
                let xi = if i < d { row[i] } else { 1.0 };
                xty[i] += xi * target;
                for j in 0..n {
                    let xj = if j < d { row[j] } else { 1.0 };
                    xtx[i * n + j] += xi * xj;
                }
            }
        }
        for i in 0..d {
            xtx[i * n + i] += lambda;
        }
        let w = solve(xtx, xty, n);
        LinearRegression {
            coef: w[..d].to_vec(),
            intercept: w[d],
        }
    }

    /// Predict one sample.
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.coef.len());
        self.intercept + self.coef.iter().zip(x).map(|(c, v)| c * v).sum::<f64>()
    }

    /// Predict many samples.
    pub fn predict_many(&self, xs: &[Vec<f64>]) -> Vec<f64> {
        xs.iter().map(|x| self.predict(x)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnlqp_ir::Rng64;

    #[test]
    fn recovers_exact_line() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..20).map(|i| 3.0 * i as f64 + 7.0).collect();
        let m = LinearRegression::fit(&x, &y, 0.0);
        assert!((m.coef[0] - 3.0).abs() < 1e-8);
        assert!((m.intercept - 7.0).abs() < 1e-6);
    }

    #[test]
    fn recovers_two_features_with_noise() {
        let mut r = Rng64::new(40);
        let mut x = Vec::new();
        let mut y = Vec::new();
        for _ in 0..500 {
            let a = r.range_f64(0.0, 10.0);
            let b = r.range_f64(0.0, 5.0);
            x.push(vec![a, b]);
            y.push(2.0 * a - 1.5 * b + 4.0 + r.normal(0.0, 0.01));
        }
        let m = LinearRegression::fit(&x, &y, 1e-6);
        assert!((m.coef[0] - 2.0).abs() < 0.01, "{:?}", m.coef);
        assert!((m.coef[1] + 1.5).abs() < 0.01);
        assert!((m.intercept - 4.0).abs() < 0.05);
    }

    #[test]
    fn ridge_shrinks_collinear_coefficients() {
        // Two identical features: OLS is ill-posed; ridge splits the weight.
        let x: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64, i as f64]).collect();
        let y: Vec<f64> = (0..50).map(|i| 2.0 * i as f64).collect();
        let m = LinearRegression::fit(&x, &y, 1.0);
        assert!((m.coef[0] + m.coef[1] - 2.0).abs() < 0.05, "{:?}", m.coef);
        assert!((m.coef[0] - m.coef[1]).abs() < 1e-6);
    }

    #[test]
    fn constant_target_yields_intercept_only() {
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let y = vec![5.0; 10];
        let m = LinearRegression::fit(&x, &y, 1e-9);
        assert!(m.coef[0].abs() < 1e-6);
        assert!((m.intercept - 5.0).abs() < 1e-6);
    }
}
