//! Purely-functional layers with hand-derived backward passes.
//!
//! Layers hold parameters only; activations needed by the backward pass are
//! returned to (and passed back by) the caller. This makes data-parallel
//! training trivial: forward/backward borrow the model immutably, per-
//! sample gradients are summed afterwards.

use crate::tensor::{Activation, Matrix};
use nnlqp_ir::Rng64;
use serde::{Deserialize, Serialize};

/// Fully-connected layer `y = x W + b` with `W: [in, out]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Linear {
    /// Weight matrix, `[in_features, out_features]`.
    pub w: Matrix,
    /// Bias, `[out_features]`.
    pub b: Vec<f32>,
}

impl Linear {
    /// JSON value form (checkpointing).
    pub fn to_value(&self) -> serde_json::Value {
        serde_json::json!({ "w": self.w.to_value(), "b": self.b })
    }

    /// Inverse of [`Linear::to_value`].
    pub fn from_value(v: &serde_json::Value) -> Result<Self, String> {
        let w = Matrix::from_value(&v["w"])?;
        let b = v["b"]
            .as_array()
            .and_then(|a| {
                a.iter()
                    .map(|x| x.as_f64().map(|f| f as f32))
                    .collect::<Option<Vec<f32>>>()
            })
            .ok_or("linear bias missing")?;
        Ok(Linear { w, b })
    }
}

/// Gradients of a [`Linear`] layer.
#[derive(Debug, Clone)]
pub struct LinearGrad {
    /// dL/dW.
    pub dw: Matrix,
    /// dL/db.
    pub db: Vec<f32>,
}

impl LinearGrad {
    /// Zero gradients matching a layer.
    pub fn zeros_like(l: &Linear) -> Self {
        LinearGrad {
            dw: Matrix::zeros(l.w.rows, l.w.cols),
            db: vec![0.0; l.b.len()],
        }
    }

    /// Accumulate another gradient (batch summation).
    pub fn add_assign(&mut self, other: &LinearGrad) {
        self.dw.add_assign(&other.dw);
        for (a, b) in self.db.iter_mut().zip(&other.db) {
            *a += b;
        }
    }

    /// Scale (e.g. by 1/batch).
    pub fn scale(&mut self, s: f32) {
        self.dw.scale(s);
        for a in &mut self.db {
            *a *= s;
        }
    }
}

impl Linear {
    /// Kaiming-initialized layer.
    pub fn new(in_features: usize, out_features: usize, rng: &mut Rng64) -> Self {
        Linear {
            w: Matrix::kaiming(in_features, out_features, in_features, rng),
            b: vec![0.0; out_features],
        }
    }

    /// Forward: `y = x W + b`.
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut y = x.matmul(&self.w);
        y.add_row_vector(&self.b);
        y
    }

    /// Fused inference entry point: `out = act(x W + b)` with no
    /// intermediate matrices — the GEMM writes `out` in place (via `pack`
    /// for panel reuse) and the bias + activation run as one epilogue
    /// sweep. Arithmetic is bit-identical to `forward` followed by `relu`.
    pub fn forward_into(&self, x: &Matrix, act: Activation, out: &mut Matrix, pack: &mut Vec<f32>) {
        x.matmul_into(&self.w, out, pack);
        out.bias_act(&self.b, act);
    }

    /// Backward. `x` is the forward input, `dy` the upstream gradient.
    /// Returns `(dx, grads)`.
    pub fn backward(&self, x: &Matrix, dy: &Matrix) -> (Matrix, LinearGrad) {
        let dw = x.t_matmul(dy); // [in, out]
        let db = dy.col_sums();
        let dx = dy.matmul_t(&self.w); // [rows, in]
        (dx, LinearGrad { dw, db })
    }
}

/// ReLU forward.
pub fn relu(x: &Matrix) -> Matrix {
    let mut y = x.clone();
    relu_inplace(&mut y);
    y
}

/// ReLU in place (inference path — no extra matrix). The SIMD backend
/// masks with a `v < 0.0` compare, so `-0.0` survives exactly as in the
/// scalar loop.
pub fn relu_inplace(x: &mut Matrix) {
    crate::simd::relu_slice(crate::simd::kernel(), &mut x.data);
}

/// ReLU backward: gradient masked by the forward *input* sign.
pub fn relu_backward(x: &Matrix, dy: &Matrix) -> Matrix {
    let mut dx = dy.clone();
    for (d, &xv) in dx.data.iter_mut().zip(&x.data) {
        if xv <= 0.0 {
            *d = 0.0;
        }
    }
    dx
}

/// Inverted dropout: at train time zeroes activations with probability `p`
/// and rescales survivors by `1/(1-p)`; identity at eval time.
#[derive(Debug, Clone, Copy)]
pub struct Dropout {
    /// Drop probability.
    pub p: f64,
}

impl Dropout {
    /// Forward at train time; returns `(y, mask)` — pass the mask to
    /// [`Dropout::backward`].
    pub fn forward_train(&self, x: &Matrix, rng: &mut Rng64) -> (Matrix, Vec<bool>) {
        let keep = 1.0 - self.p;
        let scale = (1.0 / keep) as f32;
        let mut y = x.clone();
        let mut mask = Vec::with_capacity(x.data.len());
        for v in &mut y.data {
            let k = rng.bernoulli(keep);
            mask.push(k);
            *v = if k { *v * scale } else { 0.0 };
        }
        (y, mask)
    }

    /// Forward at eval time (identity).
    pub fn forward_eval(&self, x: &Matrix) -> Matrix {
        x.clone()
    }

    /// Backward through the stored mask.
    pub fn backward(&self, mask: &[bool], dy: &Matrix) -> Matrix {
        let scale = (1.0 / (1.0 - self.p)) as f32;
        let mut dx = dy.clone();
        for (d, &k) in dx.data.iter_mut().zip(mask) {
            *d = if k { *d * scale } else { 0.0 };
        }
        dx
    }
}

const L2_EPS: f32 = 1e-8;

/// Row-wise L2 normalization `y_i = x_i / max(||x_i||, eps)` (the `L2`
/// of Eq. 4). Returns `(y, norms)`; pass both to the backward.
pub fn l2_normalize_rows(x: &Matrix) -> (Matrix, Vec<f32>) {
    let mut y = x.clone();
    let mut norms = Vec::with_capacity(x.rows);
    for i in 0..x.rows {
        let n = y
            .row(i)
            .iter()
            .map(|v| v * v)
            .sum::<f32>()
            .sqrt()
            .max(L2_EPS);
        for v in y.row_mut(i) {
            *v /= n;
        }
        norms.push(n);
    }
    (y, norms)
}

/// [`l2_normalize_rows`] in place, discarding the norms (inference path —
/// the backward pass never runs, so nothing needs to be kept).
pub fn l2_normalize_rows_inplace(x: &mut Matrix) {
    for i in 0..x.rows {
        let n = x
            .row(i)
            .iter()
            .map(|v| v * v)
            .sum::<f32>()
            .sqrt()
            .max(L2_EPS);
        for v in x.row_mut(i) {
            *v /= n;
        }
    }
}

/// Backward of row-wise L2 normalization:
/// `dx_i = (dy_i - y_i (y_i . dy_i)) / n_i`.
pub fn l2_normalize_rows_backward(y: &Matrix, norms: &[f32], dy: &Matrix) -> Matrix {
    let mut dx = Matrix::zeros(y.rows, y.cols);
    for (i, &n) in norms.iter().enumerate().take(y.rows) {
        let yr = y.row(i);
        let dyr = dy.row(i);
        let dot: f32 = yr.iter().zip(dyr).map(|(a, b)| a * b).sum();
        for ((d, &dy_j), &y_j) in dx.row_mut(i).iter_mut().zip(dyr).zip(yr) {
            *d = (dy_j - y_j * dot) / n;
        }
    }
    dx
}

/// Mean-squared-error loss over a column vector of predictions; returns
/// `(loss, dpred)`.
pub fn mse_loss(pred: &[f32], target: &[f32]) -> (f64, Vec<f32>) {
    assert_eq!(pred.len(), target.len());
    let n = pred.len().max(1) as f64;
    let mut grad = vec![0.0f32; pred.len()];
    let mut loss = 0.0f64;
    for i in 0..pred.len() {
        let e = (pred[i] - target[i]) as f64;
        loss += e * e;
        grad[i] = (2.0 * e / n) as f32;
    }
    (loss / n, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Central finite difference of a scalar loss wrt one parameter.
    fn numeric_grad(f: &mut dyn FnMut(f32) -> f64, x0: f32) -> f64 {
        let h = 1e-3f32;
        (f(x0 + h) - f(x0 - h)) / (2.0 * h as f64)
    }

    fn rand_mat(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut r = Rng64::new(seed);
        Matrix::from_fn(rows, cols, |_, _| r.range_f64(-1.0, 1.0) as f32)
    }

    /// Scalar loss = sum(y) lets us check every gradient at once: the
    /// upstream gradient is all-ones.
    fn ones(rows: usize, cols: usize) -> Matrix {
        Matrix::from_fn(rows, cols, |_, _| 1.0)
    }

    #[test]
    fn linear_forward_known() {
        let l = Linear {
            w: Matrix::from_rows(2, 2, vec![1.0, 2.0, 3.0, 4.0]),
            b: vec![0.5, -0.5],
        };
        let x = Matrix::from_rows(1, 2, vec![1.0, 1.0]);
        let y = l.forward(&x);
        assert_eq!(y.data, vec![4.5, 5.5]);
    }

    #[test]
    fn linear_gradcheck() {
        let mut rng = Rng64::new(10);
        let l = Linear::new(4, 3, &mut rng);
        let x = rand_mat(5, 4, 11);
        let dy = ones(5, 3);
        let (dx, g) = l.backward(&x, &dy);

        // Weight gradient check at a few positions.
        for &(i, j) in &[(0usize, 0usize), (3, 2), (1, 1)] {
            let mut f = |w: f32| {
                let mut l2 = l.clone();
                l2.w.set(i, j, w);
                l2.forward(&x).data.iter().map(|&v| v as f64).sum()
            };
            let num = numeric_grad(&mut f, l.w.get(i, j));
            assert!(
                (num - g.dw.get(i, j) as f64).abs() < 1e-2,
                "dw[{i},{j}] num {num} vs {}",
                g.dw.get(i, j)
            );
        }
        // Bias gradient: sum over rows of dy = 5.
        assert!(g.db.iter().all(|&b| (b - 5.0).abs() < 1e-5));
        // Input gradient check.
        for &(i, j) in &[(0usize, 0usize), (4, 3)] {
            let mut f = |v: f32| {
                let mut x2 = x.clone();
                x2.set(i, j, v);
                l.forward(&x2).data.iter().map(|&v| v as f64).sum()
            };
            let num = numeric_grad(&mut f, x.get(i, j));
            assert!((num - dx.get(i, j) as f64).abs() < 1e-2);
        }
    }

    #[test]
    fn fused_forward_matches_unfused_bitwise() {
        let mut rng = Rng64::new(17);
        let l = Linear::new(6, 5, &mut rng);
        let x = rand_mat(7, 6, 18);
        let unfused = relu(&l.forward(&x));
        let mut pack = Vec::new();
        let mut out = Matrix::zeros(7, 5);
        l.forward_into(&x, Activation::Relu, &mut out, &mut pack);
        assert_eq!(out, unfused);
        l.forward_into(&x, Activation::Identity, &mut out, &mut pack);
        assert_eq!(out, l.forward(&x));
    }

    #[test]
    fn inplace_variants_match() {
        let x = rand_mat(5, 4, 19);
        let mut r = x.clone();
        relu_inplace(&mut r);
        assert_eq!(r, relu(&x));
        let mut n = x.clone();
        l2_normalize_rows_inplace(&mut n);
        assert_eq!(n, l2_normalize_rows(&x).0);
    }

    #[test]
    fn relu_gradcheck() {
        let x = Matrix::from_rows(1, 4, vec![-1.0, 2.0, -0.5, 3.0]);
        let dy = ones(1, 4);
        let dx = relu_backward(&x, &dy);
        assert_eq!(dx.data, vec![0.0, 1.0, 0.0, 1.0]);
        assert_eq!(relu(&x).data, vec![0.0, 2.0, 0.0, 3.0]);
    }

    #[test]
    fn l2_norm_rows_unit_length() {
        let x = rand_mat(6, 5, 12);
        let (y, _) = l2_normalize_rows(&x);
        for i in 0..y.rows {
            let n: f32 = y.row(i).iter().map(|v| v * v).sum::<f32>().sqrt();
            assert!((n - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn l2_norm_gradcheck() {
        let x = rand_mat(3, 4, 13);
        let (y, norms) = l2_normalize_rows(&x);
        // Loss = sum of y * coefficient matrix to make gradients asymmetric.
        let coeff = rand_mat(3, 4, 14);
        let dx = l2_normalize_rows_backward(&y, &norms, &coeff);
        for &(i, j) in &[(0usize, 0usize), (2, 3), (1, 2)] {
            let mut f = |v: f32| {
                let mut x2 = x.clone();
                x2.set(i, j, v);
                let (y2, _) = l2_normalize_rows(&x2);
                y2.data
                    .iter()
                    .zip(&coeff.data)
                    .map(|(&a, &c)| (a * c) as f64)
                    .sum()
            };
            let num = numeric_grad(&mut f, x.get(i, j));
            assert!(
                (num - dx.get(i, j) as f64).abs() < 1e-2,
                "dx[{i},{j}] num {num} vs {}",
                dx.get(i, j)
            );
        }
    }

    #[test]
    fn dropout_train_scales_survivors() {
        let mut rng = Rng64::new(15);
        let d = Dropout { p: 0.5 };
        let x = ones(20, 20);
        let (y, mask) = d.forward_train(&x, &mut rng);
        let kept = mask.iter().filter(|&&k| k).count();
        assert!(kept > 100 && kept < 300, "kept {kept}");
        for (v, &k) in y.data.iter().zip(&mask) {
            if k {
                assert!((*v - 2.0).abs() < 1e-6);
            } else {
                assert_eq!(*v, 0.0);
            }
        }
        // Backward routes gradient only through kept units.
        let dx = d.backward(&mask, &ones(20, 20));
        for (v, &k) in dx.data.iter().zip(&mask) {
            assert_eq!(*v, if k { 2.0 } else { 0.0 });
        }
    }

    #[test]
    fn dropout_eval_is_identity() {
        let d = Dropout { p: 0.5 };
        let x = rand_mat(4, 4, 16);
        assert_eq!(d.forward_eval(&x), x);
    }

    #[test]
    fn mse_loss_and_grad() {
        let (loss, grad) = mse_loss(&[2.0, 0.0], &[1.0, 0.0]);
        assert!((loss - 0.5).abs() < 1e-9);
        assert!((grad[0] - 1.0).abs() < 1e-6);
        assert_eq!(grad[1], 0.0);
    }
}
