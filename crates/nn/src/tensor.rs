//! Dense row-major f32 matrices.
//!
//! Sized for this workload — node-feature matrices of a few hundred rows
//! and a few dozen columns — so the multiply kernels favour simplicity and
//! cache-friendly access (`a[i,k] * b[k,j]` with the k-loop outermost per
//! row) over BLAS-grade tiling. Rayon parallelizes over rows when the
//! matrix is large enough to amortize the fork.

use crate::simd::{self, Kernel};
use nnlqp_ir::Rng64;
use rayon::prelude::*;

/// Row-major 2-D f32 matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Row-major storage, `rows * cols` long.
    pub data: Vec<f32>,
}

// Hand-written JSON codec (checkpointing trained heads): a flat object of
// dims plus the row-major payload.
impl serde::Serialize for Matrix {
    fn __stub_to_json(&self) -> Option<String> {
        Some(self.to_value().to_string())
    }

    fn __stub_to_json_pretty(&self) -> Option<String> {
        serde_json::to_string_pretty(&self.to_value()).ok()
    }
}

impl<'de> serde::Deserialize<'de> for Matrix {
    fn __stub_from_json(s: &str) -> Option<Result<Self, String>> {
        let v: serde_json::Value = match serde_json::from_str(s) {
            Ok(v) => v,
            Err(e) => return Some(Err(e.to_string())),
        };
        Some(Matrix::from_value(&v))
    }
}

/// Row count below which matmul stays single-threaded.
const PAR_THRESHOLD: usize = 64;

/// Column-panel width of the packed-B matmul kernel. Panels keep the B
/// operand cache-resident across the k-loop once outputs grow wider than
/// one panel.
const PANEL: usize = 128;

/// Row count below which packing B costs more than it saves (the pack
/// sweep is O(k*n) — the same order as multiplying a single row).
const PACK_MIN_ROWS: usize = 4;

/// Element-wise nonlinearity fused into the GEMM epilogue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// No nonlinearity.
    Identity,
    /// `max(0, x)` — bit-identical to `layers::relu` (negative zero is
    /// preserved, matching its `v < 0.0` test).
    Relu,
}

/// A reusable buffer arena for the allocation-free inference path: layers
/// `take` correctly-shaped zeroed matrices and `put` them back when done,
/// so a batched forward touches the allocator only while warming up. One
/// extra buffer backs the matmul panel packing.
#[derive(Debug, Default)]
pub struct Scratch {
    free: Vec<Vec<f32>>,
    pack: Vec<f32>,
}

impl Scratch {
    /// An empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// A zeroed `rows x cols` matrix, reusing a returned buffer when one
    /// is available.
    pub fn take(&mut self, rows: usize, cols: usize) -> Matrix {
        let mut data = self.free.pop().unwrap_or_default();
        data.clear();
        data.resize(rows * cols, 0.0);
        Matrix { rows, cols, data }
    }

    /// Return a matrix's allocation to the arena (the shape is forgotten;
    /// only the buffer is kept).
    pub fn put(&mut self, m: Matrix) {
        self.free.push(m.data);
    }

    /// The panel-packing buffer for [`Matrix::matmul_into`].
    pub fn pack_buf(&mut self) -> &mut Vec<f32> {
        &mut self.pack
    }
}

impl Matrix {
    /// JSON value form (checkpointing).
    pub fn to_value(&self) -> serde_json::Value {
        serde_json::json!({
            "rows": self.rows,
            "cols": self.cols,
            "data": self.data,
        })
    }

    /// Inverse of [`Matrix::to_value`].
    pub fn from_value(v: &serde_json::Value) -> Result<Self, String> {
        let dims = (v["rows"].as_u64(), v["cols"].as_u64());
        let (Some(rows), Some(cols)) = dims else {
            return Err("matrix dims missing".to_string());
        };
        let Some(data) = v["data"].as_array().and_then(|a| {
            a.iter()
                .map(|x| x.as_f64().map(|f| f as f32))
                .collect::<Option<Vec<f32>>>()
        }) else {
            return Err("matrix data missing".to_string());
        };
        if data.len() != (rows * cols) as usize {
            return Err("matrix shape/data mismatch".to_string());
        }
        Ok(Matrix {
            rows: rows as usize,
            cols: cols as usize,
            data,
        })
    }

    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from a function of (row, col).
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Build from a row-major slice.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Matrix { rows, cols, data }
    }

    /// Kaiming-uniform initialization for a layer with `fan_in` inputs.
    pub fn kaiming(rows: usize, cols: usize, fan_in: usize, rng: &mut Rng64) -> Self {
        let bound = (6.0 / fan_in.max(1) as f64).sqrt();
        Matrix::from_fn(rows, cols, |_, _| rng.range_f64(-bound, bound) as f32)
    }

    /// Borrow one row.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow one row.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Element access.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        self.data[i * self.cols + j]
    }

    /// Element mutation.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f32) {
        self.data[i * self.cols + j] = v;
    }

    /// `self @ b` — `[m,k] x [k,n] -> [m,n]`.
    pub fn matmul(&self, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, b.cols);
        let mut pack = Vec::new();
        self.matmul_into(b, &mut out, &mut pack);
        out
    }

    /// `self @ b` written into `out` (zeroed first), the allocation-free
    /// core of [`Matrix::matmul`]. The inner loops are axpy sweeps on the
    /// process-wide kernel backend — per output element the k-terms
    /// accumulate in ascending order, so results are bit-identical
    /// whichever path runs *within* a backend. Wide outputs go through a
    /// packed-B panel kernel (`pack` holds the panels, reused across
    /// calls); narrow or single-row products read B in place.
    pub fn matmul_into(&self, b: &Matrix, out: &mut Matrix, pack: &mut Vec<f32>) {
        self.matmul_into_with(simd::kernel(), b, out, pack);
    }

    /// [`Matrix::matmul_into`] on an explicit kernel backend (parity
    /// tests and benches compare backends without touching the global).
    pub fn matmul_into_with(
        &self,
        kern: Kernel,
        b: &Matrix,
        out: &mut Matrix,
        pack: &mut Vec<f32>,
    ) {
        assert_eq!(self.cols, b.rows, "matmul shape mismatch");
        assert_eq!(
            (out.rows, out.cols),
            (self.rows, b.cols),
            "matmul out shape mismatch"
        );
        let (m, k, n) = (self.rows, self.cols, b.cols);
        out.data.fill(0.0);
        if n == 0 {
            return;
        }
        if n <= PANEL || m < PACK_MIN_ROWS {
            // Row pairs share each B sweep (`gemm_two_rows`); an odd
            // trailing row runs the single-row kernel. Identical
            // arithmetic either way — pairing only changes load traffic.
            let body = |(c, rows_chunk): (usize, &mut [f32])| {
                let i = 2 * c;
                if rows_chunk.len() == 2 * n {
                    let (r0, r1) = rows_chunk.split_at_mut(n);
                    simd::gemm_two_rows(kern, self.row(i), self.row(i + 1), &b.data, r0, r1);
                } else {
                    simd::gemm_row(kern, self.row(i), &b.data, rows_chunk);
                }
            };
            if m >= PAR_THRESHOLD {
                out.data.par_chunks_mut(2 * n).enumerate().for_each(body);
            } else {
                out.data.chunks_mut(2 * n).enumerate().for_each(body);
            }
            return;
        }
        // Panel-pack B once (panel `j0` starts at `j0 * k`, rows of width
        // `jw` contiguous), then stream every output row through the
        // packed panels.
        pack.clear();
        pack.resize(k * n, 0.0);
        for j0 in (0..n).step_by(PANEL) {
            let jw = PANEL.min(n - j0);
            let base = j0 * k;
            for kk in 0..k {
                pack[base + kk * jw..base + kk * jw + jw]
                    .copy_from_slice(&b.data[kk * n + j0..kk * n + j0 + jw]);
            }
        }
        let pack = &pack[..];
        let body = |(i, out_row): (usize, &mut [f32])| {
            let a_row = self.row(i);
            for j0 in (0..n).step_by(PANEL) {
                let jw = PANEL.min(n - j0);
                let panel = &pack[j0 * k..j0 * k + k * jw];
                simd::gemm_row(kern, a_row, panel, &mut out_row[j0..j0 + jw]);
            }
        };
        if m >= PAR_THRESHOLD {
            out.data.par_chunks_mut(n).enumerate().for_each(body);
        } else {
            out.data.chunks_mut(n).enumerate().for_each(body);
        }
    }

    /// `self^T @ b` — `[k,m]^T x [k,n] -> [m,n]` without materializing the
    /// transpose (gradient of weights).
    pub fn t_matmul(&self, b: &Matrix) -> Matrix {
        self.t_matmul_with(simd::kernel(), b)
    }

    /// [`Matrix::t_matmul`] on an explicit kernel backend.
    pub fn t_matmul_with(&self, kern: Kernel, b: &Matrix) -> Matrix {
        assert_eq!(self.rows, b.rows, "t_matmul shape mismatch");
        let (k, m, n) = (self.rows, self.cols, b.cols);
        let mut out = Matrix::zeros(m, n);
        for kk in 0..k {
            let a_row = self.row(kk);
            let b_row = b.row(kk);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                simd::axpy(kern, out.row_mut(i), a, b_row);
            }
        }
        out
    }

    /// `self @ b^T` — `[m,k] x [n,k]^T -> [m,n]` (gradient of inputs).
    pub fn matmul_t(&self, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, b.rows);
        self.matmul_t_into_with(simd::kernel(), b, &mut out);
        out
    }

    /// [`Matrix::matmul_t`] written into `out` (the attention score path
    /// runs this over scratch buffers instead of allocating per head).
    pub fn matmul_t_into(&self, b: &Matrix, out: &mut Matrix) {
        self.matmul_t_into_with(simd::kernel(), b, out);
    }

    /// [`Matrix::matmul_t_into`] on an explicit kernel backend.
    pub fn matmul_t_into_with(&self, kern: Kernel, b: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, b.cols, "matmul_t shape mismatch");
        assert_eq!(
            (out.rows, out.cols),
            (self.rows, b.rows),
            "matmul_t out shape mismatch"
        );
        let (m, n) = (self.rows, b.rows);
        let body = |(i, out_row): (usize, &mut [f32])| {
            simd::matmul_t_row(kern, self.row(i), &b.data, out_row);
        };
        if m >= PAR_THRESHOLD {
            out.data.par_chunks_mut(n).enumerate().for_each(body);
        } else {
            out.data.chunks_mut(n).enumerate().for_each(body);
        }
    }

    /// Element-wise in-place addition.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        simd::add_slice(simd::kernel(), &mut self.data, &other.data);
    }

    /// In-place scale.
    pub fn scale(&mut self, s: f32) {
        simd::scale_slice(simd::kernel(), &mut self.data, s);
    }

    /// Fused `self = self * s + other`, element-wise — one sweep instead
    /// of [`Matrix::scale`] then [`Matrix::add_assign`], with bit-identical
    /// results (the kernel performs a separate multiply then add, never an
    /// FMA). The attention score epilogue (`scores/sqrt(d) + bias`) is the
    /// customer.
    pub fn scale_add_assign(&mut self, s: f32, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        simd::scale_add_slice(simd::kernel(), &mut self.data, s, &other.data);
    }

    /// Add a row vector to every row (bias).
    pub fn add_row_vector(&mut self, v: &[f32]) {
        assert_eq!(v.len(), self.cols);
        let kern = simd::kernel();
        for i in 0..self.rows {
            simd::bias_act_row(kern, self.row_mut(i), v, false);
        }
    }

    /// Fused bias + activation epilogue:
    /// `self[i][j] = act(self[i][j] + bias[j])` in one sweep — the tail of
    /// the fused GEMM entry points in `layers`.
    pub fn bias_act(&mut self, bias: &[f32], act: Activation) {
        self.bias_act_with(simd::kernel(), bias, act);
    }

    /// [`Matrix::bias_act`] on an explicit kernel backend.
    pub fn bias_act_with(&mut self, kern: Kernel, bias: &[f32], act: Activation) {
        assert_eq!(bias.len(), self.cols);
        let relu = act == Activation::Relu;
        for i in 0..self.rows {
            simd::bias_act_row(kern, self.row_mut(i), bias, relu);
        }
    }

    /// Column-wise sums (bias gradient; also the sum-over-nodes pooling).
    pub fn col_sums(&self) -> Vec<f32> {
        let kern = simd::kernel();
        let mut out = vec![0.0f32; self.cols];
        for i in 0..self.rows {
            simd::add_slice(kern, &mut out, self.row(i));
        }
        out
    }

    /// Frobenius norm.
    pub fn frob(&self) -> f64 {
        self.data
            .iter()
            .map(|&x| (x as f64).powi(2))
            .sum::<f64>()
            .sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(rows: usize, cols: usize, xs: &[f32]) -> Matrix {
        Matrix::from_rows(rows, cols, xs.to_vec())
    }

    #[test]
    fn matmul_small_known() {
        let a = mat(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = mat(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data, vec![58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn t_matmul_equals_explicit_transpose() {
        let mut r = Rng64::new(1);
        let a = Matrix::from_fn(7, 5, |_, _| r.range_f64(-1.0, 1.0) as f32);
        let b = Matrix::from_fn(7, 4, |_, _| r.range_f64(-1.0, 1.0) as f32);
        let at = Matrix::from_fn(5, 7, |i, j| a.get(j, i));
        let want = at.matmul(&b);
        let got = a.t_matmul(&b);
        for (x, y) in got.data.iter().zip(&want.data) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_t_equals_explicit_transpose() {
        let mut r = Rng64::new(2);
        let a = Matrix::from_fn(6, 5, |_, _| r.range_f64(-1.0, 1.0) as f32);
        let b = Matrix::from_fn(3, 5, |_, _| r.range_f64(-1.0, 1.0) as f32);
        let bt = Matrix::from_fn(5, 3, |i, j| b.get(j, i));
        let want = a.matmul(&bt);
        let got = a.matmul_t(&b);
        for (x, y) in got.data.iter().zip(&want.data) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn parallel_path_matches_serial() {
        let mut r = Rng64::new(3);
        // rows >= PAR_THRESHOLD triggers the parallel path.
        let a = Matrix::from_fn(80, 32, |_, _| r.range_f64(-1.0, 1.0) as f32);
        let b = Matrix::from_fn(32, 16, |_, _| r.range_f64(-1.0, 1.0) as f32);
        let c = a.matmul(&b);
        // Check a few entries against a scalar reference.
        for &(i, j) in &[(0, 0), (79, 15), (40, 7)] {
            let want: f32 = (0..32).map(|k| a.get(i, k) * b.get(k, j)).sum();
            assert!((c.get(i, j) - want).abs() < 1e-4);
        }
    }

    #[test]
    fn bias_and_col_sums() {
        let mut a = Matrix::zeros(3, 2);
        a.add_row_vector(&[1.0, 2.0]);
        assert_eq!(a.col_sums(), vec![3.0, 6.0]);
    }

    #[test]
    fn kaiming_bounds() {
        let mut r = Rng64::new(4);
        let m = Matrix::kaiming(10, 10, 50, &mut r);
        let bound = (6.0f64 / 50.0).sqrt() as f32;
        assert!(m.data.iter().all(|&x| x.abs() <= bound));
        assert!(m.data.iter().any(|&x| x != 0.0));
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        let _ = a.matmul(&b);
    }

    #[test]
    fn packed_panel_kernel_matches_reference() {
        let mut r = Rng64::new(5);
        // n > PANEL and m >= PACK_MIN_ROWS triggers the packed path;
        // compare against a scalar reference and (bit-for-bit) against the
        // narrow unpacked kernel run column-block by column-block.
        let a = Matrix::from_fn(9, 37, |_, _| r.range_f64(-1.0, 1.0) as f32);
        let b = Matrix::from_fn(37, 200, |_, _| r.range_f64(-1.0, 1.0) as f32);
        let c = a.matmul(&b);
        for &(i, j) in &[(0, 0), (8, 199), (4, 127), (4, 128)] {
            let want: f64 = (0..37)
                .map(|k| a.get(i, k) as f64 * b.get(k, j) as f64)
                .sum();
            assert!((c.get(i, j) as f64 - want).abs() < 1e-4, "c[{i},{j}]");
        }
        // Single-row product (unpacked path) over the same B agrees bitwise.
        for i in 0..a.rows {
            let row = Matrix::from_rows(1, a.cols, a.row(i).to_vec());
            assert_eq!(row.matmul(&b).data, c.row(i), "row {i}");
        }
    }

    #[test]
    fn matmul_into_reuses_buffers() {
        let mut r = Rng64::new(6);
        let a = Matrix::from_fn(5, 7, |_, _| r.range_f64(-1.0, 1.0) as f32);
        let b = Matrix::from_fn(7, 3, |_, _| r.range_f64(-1.0, 1.0) as f32);
        let want = a.matmul(&b);
        let mut scratch = Scratch::new();
        let mut out = scratch.take(5, 3);
        // Dirty the buffer to prove matmul_into zeroes it.
        out.data.fill(f32::NAN);
        a.matmul_into(&b, &mut out, scratch.pack_buf());
        assert_eq!(out, want);
        let ptr = out.data.as_ptr();
        scratch.put(out);
        let again = scratch.take(5, 3);
        assert_eq!(again.data.as_ptr(), ptr, "allocation is reused");
        assert!(again.data.iter().all(|&v| v == 0.0), "take() zeroes");
    }

    #[test]
    fn bias_act_matches_unfused() {
        let mut r = Rng64::new(7);
        let x = Matrix::from_fn(4, 6, |_, _| r.range_f64(-1.0, 1.0) as f32);
        let bias: Vec<f32> = (0..6).map(|_| r.range_f64(-1.0, 1.0) as f32).collect();
        let mut with_bias = x.clone();
        with_bias.add_row_vector(&bias);
        let mut ident = x.clone();
        ident.bias_act(&bias, Activation::Identity);
        assert_eq!(ident, with_bias);
        let relued = crate::layers::relu(&with_bias);
        let mut fused = x.clone();
        fused.bias_act(&bias, Activation::Relu);
        assert_eq!(fused, relued);
    }

    #[test]
    fn serde_roundtrip() {
        let m = mat(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let s = serde_json::to_string(&m).unwrap();
        let m2: Matrix = serde_json::from_str(&s).unwrap();
        assert_eq!(m, m2);
    }
}
