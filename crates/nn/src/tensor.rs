//! Dense row-major f32 matrices.
//!
//! Sized for this workload — node-feature matrices of a few hundred rows
//! and a few dozen columns — so the multiply kernels favour simplicity and
//! cache-friendly access (`a[i,k] * b[k,j]` with the k-loop outermost per
//! row) over BLAS-grade tiling. Rayon parallelizes over rows when the
//! matrix is large enough to amortize the fork.

use nnlqp_ir::Rng64;
use rayon::prelude::*;

/// Row-major 2-D f32 matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Row-major storage, `rows * cols` long.
    pub data: Vec<f32>,
}

// Hand-written JSON codec (checkpointing trained heads): a flat object of
// dims plus the row-major payload.
impl serde::Serialize for Matrix {
    fn __stub_to_json(&self) -> Option<String> {
        Some(self.to_value().to_string())
    }

    fn __stub_to_json_pretty(&self) -> Option<String> {
        serde_json::to_string_pretty(&self.to_value()).ok()
    }
}

impl<'de> serde::Deserialize<'de> for Matrix {
    fn __stub_from_json(s: &str) -> Option<Result<Self, String>> {
        let v: serde_json::Value = match serde_json::from_str(s) {
            Ok(v) => v,
            Err(e) => return Some(Err(e.to_string())),
        };
        Some(Matrix::from_value(&v))
    }
}

/// Row count below which matmul stays single-threaded.
const PAR_THRESHOLD: usize = 64;

impl Matrix {
    /// JSON value form (checkpointing).
    pub fn to_value(&self) -> serde_json::Value {
        serde_json::json!({
            "rows": self.rows,
            "cols": self.cols,
            "data": self.data,
        })
    }

    /// Inverse of [`Matrix::to_value`].
    pub fn from_value(v: &serde_json::Value) -> Result<Self, String> {
        let dims = (v["rows"].as_u64(), v["cols"].as_u64());
        let (Some(rows), Some(cols)) = dims else {
            return Err("matrix dims missing".to_string());
        };
        let Some(data) = v["data"].as_array().and_then(|a| {
            a.iter()
                .map(|x| x.as_f64().map(|f| f as f32))
                .collect::<Option<Vec<f32>>>()
        }) else {
            return Err("matrix data missing".to_string());
        };
        if data.len() != (rows * cols) as usize {
            return Err("matrix shape/data mismatch".to_string());
        }
        Ok(Matrix {
            rows: rows as usize,
            cols: cols as usize,
            data,
        })
    }

    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from a function of (row, col).
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Build from a row-major slice.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "shape/data mismatch");
        Matrix { rows, cols, data }
    }

    /// Kaiming-uniform initialization for a layer with `fan_in` inputs.
    pub fn kaiming(rows: usize, cols: usize, fan_in: usize, rng: &mut Rng64) -> Self {
        let bound = (6.0 / fan_in.max(1) as f64).sqrt();
        Matrix::from_fn(rows, cols, |_, _| rng.range_f64(-bound, bound) as f32)
    }

    /// Borrow one row.
    #[inline]
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutably borrow one row.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f32] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Element access.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f32 {
        self.data[i * self.cols + j]
    }

    /// Element mutation.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f32) {
        self.data[i * self.cols + j] = v;
    }

    /// `self @ b` — `[m,k] x [k,n] -> [m,n]`.
    pub fn matmul(&self, b: &Matrix) -> Matrix {
        assert_eq!(self.cols, b.rows, "matmul shape mismatch");
        let (m, k, n) = (self.rows, self.cols, b.cols);
        let mut out = vec![0.0f32; m * n];
        let body = |(i, out_row): (usize, &mut [f32])| {
            let a_row = self.row(i);
            for (kk, &a) in a_row.iter().enumerate().take(k) {
                if a == 0.0 {
                    continue;
                }
                let b_row = &b.data[kk * n..(kk + 1) * n];
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += a * bv;
                }
            }
        };
        if m >= PAR_THRESHOLD {
            out.par_chunks_mut(n).enumerate().for_each(body);
        } else {
            out.chunks_mut(n).enumerate().for_each(body);
        }
        Matrix::from_rows(m, n, out)
    }

    /// `self^T @ b` — `[k,m]^T x [k,n] -> [m,n]` without materializing the
    /// transpose (gradient of weights).
    pub fn t_matmul(&self, b: &Matrix) -> Matrix {
        assert_eq!(self.rows, b.rows, "t_matmul shape mismatch");
        let (k, m, n) = (self.rows, self.cols, b.cols);
        let mut out = Matrix::zeros(m, n);
        for kk in 0..k {
            let a_row = self.row(kk);
            let b_row = b.row(kk);
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = out.row_mut(i);
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += a * bv;
                }
            }
        }
        out
    }

    /// `self @ b^T` — `[m,k] x [n,k]^T -> [m,n]` (gradient of inputs).
    pub fn matmul_t(&self, b: &Matrix) -> Matrix {
        assert_eq!(self.cols, b.cols, "matmul_t shape mismatch");
        let (m, k, n) = (self.rows, self.cols, b.rows);
        let mut out = vec![0.0f32; m * n];
        let body = |(i, out_row): (usize, &mut [f32])| {
            let a_row = self.row(i);
            for (j, o) in out_row.iter_mut().enumerate() {
                let b_row = b.row(j);
                let mut acc = 0.0f32;
                for kk in 0..k {
                    acc += a_row[kk] * b_row[kk];
                }
                *o = acc;
            }
        };
        if m >= PAR_THRESHOLD {
            out.par_chunks_mut(n).enumerate().for_each(body);
        } else {
            out.chunks_mut(n).enumerate().for_each(body);
        }
        Matrix::from_rows(m, n, out)
    }

    /// Element-wise in-place addition.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place scale.
    pub fn scale(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Add a row vector to every row (bias).
    pub fn add_row_vector(&mut self, v: &[f32]) {
        assert_eq!(v.len(), self.cols);
        for i in 0..self.rows {
            for (a, b) in self.row_mut(i).iter_mut().zip(v) {
                *a += b;
            }
        }
    }

    /// Column-wise sums (bias gradient).
    pub fn col_sums(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.cols];
        for i in 0..self.rows {
            for (o, &x) in out.iter_mut().zip(self.row(i)) {
                *o += x;
            }
        }
        out
    }

    /// Sum of all rows as a single row vector.
    pub fn sum_rows(&self) -> Vec<f32> {
        self.col_sums()
    }

    /// Frobenius norm.
    pub fn frob(&self) -> f64 {
        self.data
            .iter()
            .map(|&x| (x as f64).powi(2))
            .sum::<f64>()
            .sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(rows: usize, cols: usize, xs: &[f32]) -> Matrix {
        Matrix::from_rows(rows, cols, xs.to_vec())
    }

    #[test]
    fn matmul_small_known() {
        let a = mat(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = mat(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data, vec![58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn t_matmul_equals_explicit_transpose() {
        let mut r = Rng64::new(1);
        let a = Matrix::from_fn(7, 5, |_, _| r.range_f64(-1.0, 1.0) as f32);
        let b = Matrix::from_fn(7, 4, |_, _| r.range_f64(-1.0, 1.0) as f32);
        let at = Matrix::from_fn(5, 7, |i, j| a.get(j, i));
        let want = at.matmul(&b);
        let got = a.t_matmul(&b);
        for (x, y) in got.data.iter().zip(&want.data) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_t_equals_explicit_transpose() {
        let mut r = Rng64::new(2);
        let a = Matrix::from_fn(6, 5, |_, _| r.range_f64(-1.0, 1.0) as f32);
        let b = Matrix::from_fn(3, 5, |_, _| r.range_f64(-1.0, 1.0) as f32);
        let bt = Matrix::from_fn(5, 3, |i, j| b.get(j, i));
        let want = a.matmul(&bt);
        let got = a.matmul_t(&b);
        for (x, y) in got.data.iter().zip(&want.data) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn parallel_path_matches_serial() {
        let mut r = Rng64::new(3);
        // rows >= PAR_THRESHOLD triggers the parallel path.
        let a = Matrix::from_fn(80, 32, |_, _| r.range_f64(-1.0, 1.0) as f32);
        let b = Matrix::from_fn(32, 16, |_, _| r.range_f64(-1.0, 1.0) as f32);
        let c = a.matmul(&b);
        // Check a few entries against a scalar reference.
        for &(i, j) in &[(0, 0), (79, 15), (40, 7)] {
            let want: f32 = (0..32).map(|k| a.get(i, k) * b.get(k, j)).sum();
            assert!((c.get(i, j) - want).abs() < 1e-4);
        }
    }

    #[test]
    fn bias_and_col_sums() {
        let mut a = Matrix::zeros(3, 2);
        a.add_row_vector(&[1.0, 2.0]);
        assert_eq!(a.col_sums(), vec![3.0, 6.0]);
    }

    #[test]
    fn kaiming_bounds() {
        let mut r = Rng64::new(4);
        let m = Matrix::kaiming(10, 10, 50, &mut r);
        let bound = (6.0f64 / 50.0).sqrt() as f32;
        assert!(m.data.iter().all(|&x| x.abs() <= bound));
        assert!(m.data.iter().any(|&x| x != 0.0));
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        let _ = a.matmul(&b);
    }

    #[test]
    fn serde_roundtrip() {
        let m = mat(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let s = serde_json::to_string(&m).unwrap();
        let m2: Matrix = serde_json::from_str(&s).unwrap();
        assert_eq!(m, m2);
    }
}
