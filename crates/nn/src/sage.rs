//! The GraphSAGE convolution of Eq. 4:
//!
//! ```text
//! F_v^i = L2( W1 . F_v^{i-1}  +  W2 . mean_{u in N(v)} F_u^{i-1} )
//! ```

use crate::csr::Csr;
use crate::layers::{
    l2_normalize_rows, l2_normalize_rows_backward, l2_normalize_rows_inplace, relu_inplace, Linear,
    LinearGrad,
};
use crate::tensor::{Activation, Matrix, Scratch};
use nnlqp_ir::Rng64;
use serde::{Deserialize, Serialize};

/// One SAGEConv layer: self weight `w1`, neighbor weight `w2`. When
/// `relu` is set, the ReLU nonlinearity of GraphSAGE is applied between
/// the linear combination and the L2 normalization (Eq. 4 cites GraphSAGE,
/// whose layers are `norm(sigma(...))`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SageLayer {
    /// Transform of the node's own features.
    pub w1: Linear,
    /// Transform of the mean-aggregated neighborhood.
    pub w2: Linear,
    /// Apply ReLU before the L2 normalization.
    pub relu: bool,
}

impl SageLayer {
    /// JSON value form (checkpointing).
    pub fn to_value(&self) -> serde_json::Value {
        serde_json::json!({
            "w1": self.w1.to_value(),
            "w2": self.w2.to_value(),
            "relu": self.relu,
        })
    }

    /// Inverse of [`SageLayer::to_value`].
    pub fn from_value(v: &serde_json::Value) -> Result<Self, String> {
        Ok(SageLayer {
            w1: Linear::from_value(&v["w1"])?,
            w2: Linear::from_value(&v["w2"])?,
            relu: v["relu"].as_bool().ok_or("sage relu flag missing")?,
        })
    }
}

/// Activations cached by the forward pass for the backward pass.
#[derive(Debug, Clone)]
pub struct SageCache {
    x: Matrix,
    agg: Matrix,
    pre_act: Matrix,
    y_norm: Matrix,
    norms: Vec<f32>,
}

/// Gradients of a [`SageLayer`].
#[derive(Debug, Clone)]
pub struct SageGrad {
    /// Gradient of the self transform.
    pub d_w1: LinearGrad,
    /// Gradient of the neighbor transform.
    pub d_w2: LinearGrad,
}

impl SageGrad {
    /// Zero gradients matching a layer.
    pub fn zeros_like(l: &SageLayer) -> Self {
        SageGrad {
            d_w1: LinearGrad::zeros_like(&l.w1),
            d_w2: LinearGrad::zeros_like(&l.w2),
        }
    }

    /// Accumulate (batch summation).
    pub fn add_assign(&mut self, other: &SageGrad) {
        self.d_w1.add_assign(&other.d_w1);
        self.d_w2.add_assign(&other.d_w2);
    }

    /// Scale by a constant.
    pub fn scale(&mut self, s: f32) {
        self.d_w1.scale(s);
        self.d_w2.scale(s);
    }
}

impl SageLayer {
    /// New layer `in_features -> out_features` with ReLU enabled.
    pub fn new(in_features: usize, out_features: usize, rng: &mut Rng64) -> Self {
        SageLayer {
            w1: Linear::new(in_features, out_features, rng),
            w2: Linear::new(in_features, out_features, rng),
            relu: true,
        }
    }

    /// Forward over all nodes at once; `x: [n, in]` -> `[n, out]`.
    pub fn forward(&self, x: &Matrix, adj: &Csr) -> (Matrix, SageCache) {
        let agg = adj.mean_agg(x);
        let mut pre = self.w1.forward(x);
        let y2 = self.w2.forward(&agg);
        pre.add_assign(&y2);
        let act = if self.relu {
            crate::layers::relu(&pre)
        } else {
            pre.clone()
        };
        let (y_norm, norms) = l2_normalize_rows(&act);
        (
            y_norm.clone(),
            SageCache {
                x: x.clone(),
                agg,
                pre_act: pre,
                y_norm,
                norms,
            },
        )
    }

    /// Inference-only forward: the same arithmetic as
    /// [`SageLayer::forward`] — bit for bit — without building the
    /// backward cache, running on the fused GEMM+bias kernels and scratch
    /// buffers. The two linear paths are computed into separate scratch
    /// matrices and then summed, preserving the `(x W1 + b1) + (agg W2 +
    /// b2)` association of the training path.
    pub fn forward_eval(&self, x: &Matrix, adj: &Csr, scratch: &mut Scratch) -> Matrix {
        let mut agg = scratch.take(x.rows, x.cols);
        adj.mean_agg_into(x, &mut agg);
        let mut out = scratch.take(x.rows, self.w1.w.cols);
        self.w1
            .forward_into(x, Activation::Identity, &mut out, scratch.pack_buf());
        let mut y2 = scratch.take(x.rows, self.w2.w.cols);
        self.w2
            .forward_into(&agg, Activation::Identity, &mut y2, scratch.pack_buf());
        out.add_assign(&y2);
        scratch.put(agg);
        scratch.put(y2);
        if self.relu {
            relu_inplace(&mut out);
        }
        l2_normalize_rows_inplace(&mut out);
        out
    }

    /// Backward; returns `(dx, grads)`.
    pub fn backward(&self, cache: &SageCache, dy: &Matrix, adj: &Csr) -> (Matrix, SageGrad) {
        // Through the normalization.
        let d_act = l2_normalize_rows_backward(&cache.y_norm, &cache.norms, dy);
        // Through the optional ReLU.
        let d_pre = if self.relu {
            crate::layers::relu_backward(&cache.pre_act, &d_act)
        } else {
            d_act
        };
        // Through the two linear paths.
        let (dx_self, d_w1) = self.w1.backward(&cache.x, &d_pre);
        let (d_agg, d_w2) = self.w2.backward(&cache.agg, &d_pre);
        // Through the aggregation.
        let mut dx = adj.mean_agg_backward(&d_agg);
        dx.add_assign(&dx_self);
        (dx, SageGrad { d_w1, d_w2 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (SageLayer, Matrix, Csr) {
        let mut rng = Rng64::new(30);
        let layer = SageLayer::new(4, 3, &mut rng);
        let x = Matrix::from_fn(5, 4, |_, _| rng.range_f64(-1.0, 1.0) as f32);
        let adj = Csr::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (1, 3)]);
        (layer, x, adj)
    }

    #[test]
    fn forward_shape_and_unit_rows() {
        let (mut layer, x, adj) = setup();
        layer.relu = false; // with ReLU an all-negative row collapses to zero
        let (y, _) = layer.forward(&x, &adj);
        assert_eq!((y.rows, y.cols), (5, 3));
        for i in 0..y.rows {
            let n: f32 = y.row(i).iter().map(|v| v * v).sum::<f32>().sqrt();
            assert!((n - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn relu_rows_are_unit_or_zero() {
        let (layer, x, adj) = setup();
        assert!(layer.relu);
        let (y, _) = layer.forward(&x, &adj);
        for i in 0..y.rows {
            let n: f32 = y.row(i).iter().map(|v| v * v).sum::<f32>().sqrt();
            assert!((n - 1.0).abs() < 1e-4 || n < 1e-4, "row {i} norm {n}");
            assert!(y.row(i).iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn forward_eval_matches_forward_bitwise() {
        let (layer, x, adj) = setup();
        let (want, _) = layer.forward(&x, &adj);
        let mut scratch = Scratch::new();
        let got = layer.forward_eval(&x, &adj, &mut scratch);
        assert_eq!(got, want);
        // Second pass through the (now warm) scratch arena is identical.
        scratch.put(got);
        let again = layer.forward_eval(&x, &adj, &mut scratch);
        assert_eq!(again, want);
        // And without the ReLU.
        let mut no_relu = layer;
        no_relu.relu = false;
        let (want2, _) = no_relu.forward(&x, &adj);
        assert_eq!(no_relu.forward_eval(&x, &adj, &mut scratch), want2);
    }

    #[test]
    fn gradcheck_weights_and_input() {
        let (layer, x, adj) = setup();
        // Asymmetric scalar loss: sum(y * coeff).
        let mut rng = Rng64::new(31);
        let coeff = Matrix::from_fn(5, 3, |_, _| rng.range_f64(-1.0, 1.0) as f32);
        let loss = |l: &SageLayer, xx: &Matrix| -> f64 {
            let (y, _) = l.forward(xx, &adj);
            y.data
                .iter()
                .zip(&coeff.data)
                .map(|(&a, &c)| (a * c) as f64)
                .sum()
        };
        let (y, cache) = layer.forward(&x, &adj);
        let _ = y;
        let (dx, g) = layer.backward(&cache, &coeff, &adj);

        let h = 1e-3f32;
        // w1, w2 spot checks.
        for &(i, j) in &[(0usize, 0usize), (3, 2)] {
            for which in 0..2 {
                let mut lp = layer.clone();
                let mut lm = layer.clone();
                let (wp, wm) = if which == 0 {
                    (&mut lp.w1.w, &mut lm.w1.w)
                } else {
                    (&mut lp.w2.w, &mut lm.w2.w)
                };
                let base = wp.get(i, j);
                wp.set(i, j, base + h);
                wm.set(i, j, base - h);
                let num = (loss(&lp, &x) - loss(&lm, &x)) / (2.0 * h as f64);
                let analytic = if which == 0 {
                    g.d_w1.dw.get(i, j)
                } else {
                    g.d_w2.dw.get(i, j)
                } as f64;
                assert!(
                    (num - analytic).abs() < 2e-2,
                    "w{} [{i},{j}]: num {num} vs {analytic}",
                    which + 1
                );
            }
        }
        // Input gradient spot checks (flows through both paths and the
        // neighborhood aggregation).
        for &(i, j) in &[(0usize, 0usize), (2, 3), (4, 1)] {
            let mut xp = x.clone();
            let mut xm = x.clone();
            xp.set(i, j, x.get(i, j) + h);
            xm.set(i, j, x.get(i, j) - h);
            let num = (loss(&layer, &xp) - loss(&layer, &xm)) / (2.0 * h as f64);
            assert!(
                (num - dx.get(i, j) as f64).abs() < 2e-2,
                "dx[{i},{j}]: num {num} vs {}",
                dx.get(i, j)
            );
        }
    }

    #[test]
    fn grad_accumulation_api() {
        let (layer, x, adj) = setup();
        let (_, cache) = layer.forward(&x, &adj);
        let dy = Matrix::from_fn(5, 3, |_, _| 1.0);
        let (_, g1) = layer.backward(&cache, &dy, &adj);
        let mut acc = SageGrad::zeros_like(&layer);
        acc.add_assign(&g1);
        acc.add_assign(&g1);
        acc.scale(0.5);
        for (a, b) in acc.d_w1.dw.data.iter().zip(&g1.d_w1.dw.data) {
            assert!((a - b).abs() < 1e-6);
        }
    }
}
