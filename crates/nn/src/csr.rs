//! Compressed sparse-row adjacency and the mean aggregation of GraphSAGE.
//!
//! `N(v)` follows GraphSAGE practice: the *undirected* neighborhood of the
//! operator DAG (both producers and consumers), so information flows along
//! and against data-flow edges with each convolution layer.

use crate::tensor::Matrix;
use nnlqp_ir::Graph;

/// CSR adjacency over `n` nodes.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    /// Row offsets, length `n + 1`.
    pub row_ptr: Vec<u32>,
    /// Neighbor indices.
    pub col_idx: Vec<u32>,
}

impl Csr {
    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.row_ptr.len() - 1
    }

    /// Neighbors of node `i`.
    pub fn neighbors(&self, i: usize) -> &[u32] {
        &self.col_idx[self.row_ptr[i] as usize..self.row_ptr[i + 1] as usize]
    }

    /// Build the undirected adjacency of a model graph.
    pub fn from_graph(g: &Graph) -> Csr {
        // Two-pass CSR build (count, prefix-sum, scatter) over three flat
        // buffers instead of one `Vec` per node: this runs on every query's
        // feature extraction, so per-node allocations add up.
        let n = g.len();
        let mut row_ptr = vec![0u32; n + 1];
        for (id, node) in g.iter() {
            row_ptr[id.index() + 1] += node.inputs.len() as u32;
            for &inp in &node.inputs {
                row_ptr[inp.index() + 1] += 1;
            }
        }
        for i in 0..n {
            row_ptr[i + 1] += row_ptr[i];
        }
        let mut col_idx = vec![0u32; row_ptr[n] as usize];
        let mut cursor: Vec<u32> = row_ptr[..n].to_vec();
        for (id, node) in g.iter() {
            for &inp in &node.inputs {
                let ci = &mut cursor[id.index()];
                col_idx[*ci as usize] = inp.0;
                *ci += 1;
                let cj = &mut cursor[inp.index()];
                col_idx[*cj as usize] = id.0;
                *cj += 1;
            }
        }
        // Sort each row and compact out duplicate edges in place. The write
        // cursor trails the row being processed, so no data is clobbered.
        let mut write = 0usize;
        let mut start = 0usize;
        for i in 0..n {
            let end = row_ptr[i + 1] as usize;
            col_idx[start..end].sort_unstable();
            let mut prev = None;
            for j in start..end {
                let v = col_idx[j];
                if Some(v) != prev {
                    col_idx[write] = v;
                    write += 1;
                    prev = Some(v);
                }
            }
            start = end;
            row_ptr[i + 1] = write as u32;
        }
        col_idx.truncate(write);
        Csr { row_ptr, col_idx }
    }

    /// Build from an explicit undirected edge list over `n` nodes.
    pub fn from_edges(n: usize, edges: &[(u32, u32)]) -> Csr {
        let mut lists: Vec<Vec<u32>> = vec![Vec::new(); n];
        for &(a, b) in edges {
            lists[a as usize].push(b);
            lists[b as usize].push(a);
        }
        let mut row_ptr = vec![0u32];
        let mut col_idx = Vec::new();
        for mut l in lists {
            l.sort_unstable();
            l.dedup();
            col_idx.extend_from_slice(&l);
            row_ptr.push(col_idx.len() as u32);
        }
        Csr { row_ptr, col_idx }
    }

    /// Mean aggregation: `out[i] = mean_{j in N(i)} x[j]` (zero for
    /// isolated nodes).
    pub fn mean_agg(&self, x: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.n(), x.cols);
        self.mean_agg_into(x, &mut out);
        out
    }

    /// [`Csr::mean_agg`] written into a caller-provided (scratch) matrix —
    /// zeroed first, then accumulated row-by-row in neighbor order, so the
    /// result is bit-identical to the allocating form.
    pub fn mean_agg_into(&self, x: &Matrix, out: &mut Matrix) {
        assert_eq!(
            (out.rows, out.cols),
            (self.n(), x.cols),
            "mean_agg out shape mismatch"
        );
        out.data.fill(0.0);
        let kern = crate::simd::kernel();
        for i in 0..self.n() {
            let nb = self.neighbors(i);
            if nb.is_empty() {
                continue;
            }
            let inv = 1.0 / nb.len() as f32;
            let orow = out.row_mut(i);
            for &j in nb {
                crate::simd::add_slice(kern, orow, x.row(j as usize));
            }
            crate::simd::scale_slice(kern, orow, inv);
        }
    }

    /// Backward of [`Csr::mean_agg`]: given `d_out`, scatter
    /// `d_x[j] += d_out[i] / |N(i)|` for each `j in N(i)`.
    pub fn mean_agg_backward(&self, d_out: &Matrix) -> Matrix {
        let mut dx = Matrix::zeros(self.n(), d_out.cols);
        for i in 0..self.n() {
            let nb = self.neighbors(i);
            if nb.is_empty() {
                continue;
            }
            let inv = 1.0 / nb.len() as f32;
            for &j in nb {
                for (d, &v) in dx.row_mut(j as usize).iter_mut().zip(d_out.row(i)) {
                    *d += v * inv;
                }
            }
        }
        dx
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnlqp_ir::{GraphBuilder, Shape};

    #[test]
    fn from_graph_undirected() {
        let mut b = GraphBuilder::new("g", Shape::nchw(1, 3, 8, 8));
        let c = b.conv(None, 8, 3, 1, 1, 1).unwrap();
        let r = b.relu(c).unwrap();
        let c2 = b.conv(Some(r), 8, 3, 1, 1, 1).unwrap();
        b.add(r, c2).unwrap();
        let g = b.finish().unwrap();
        let csr = Csr::from_graph(&g);
        assert_eq!(csr.n(), 4);
        assert_eq!(csr.neighbors(0), &[1]);
        assert_eq!(csr.neighbors(1), &[0, 2, 3]);
        assert_eq!(csr.neighbors(2), &[1, 3]);
        assert_eq!(csr.neighbors(3), &[1, 2]);
    }

    #[test]
    fn mean_agg_known_values() {
        let csr = Csr::from_edges(3, &[(0, 1), (1, 2)]);
        let x = Matrix::from_rows(3, 2, vec![1.0, 0.0, 3.0, 2.0, 5.0, 4.0]);
        let y = csr.mean_agg(&x);
        // node0: mean(row1) = [3,2]; node1: mean(rows 0,2) = [3,2];
        // node2: mean(row1) = [3,2].
        assert_eq!(y.data, vec![3.0, 2.0, 3.0, 2.0, 3.0, 2.0]);
    }

    #[test]
    fn mean_agg_into_matches_allocating_form() {
        use nnlqp_ir::Rng64;
        let mut r = Rng64::new(21);
        let csr = Csr::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (1, 4)]);
        let x = Matrix::from_fn(6, 4, |_, _| r.range_f64(-1.0, 1.0) as f32);
        let want = csr.mean_agg(&x);
        let mut out = Matrix::from_fn(6, 4, |_, _| f32::NAN);
        csr.mean_agg_into(&x, &mut out);
        assert_eq!(out, want);
    }

    #[test]
    fn isolated_node_gets_zero() {
        let csr = Csr::from_edges(3, &[(0, 1)]);
        let x = Matrix::from_rows(3, 1, vec![1.0, 2.0, 3.0]);
        let y = csr.mean_agg(&x);
        assert_eq!(y.data[2], 0.0);
    }

    #[test]
    fn mean_agg_backward_is_transpose() {
        // <A x, y> == <x, A^T y> for the aggregation operator A.
        use nnlqp_ir::Rng64;
        let mut r = Rng64::new(20);
        let csr = Csr::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 4), (1, 3)]);
        let x = Matrix::from_fn(5, 3, |_, _| r.range_f64(-1.0, 1.0) as f32);
        let y = Matrix::from_fn(5, 3, |_, _| r.range_f64(-1.0, 1.0) as f32);
        let ax = csr.mean_agg(&x);
        let aty = csr.mean_agg_backward(&y);
        let lhs: f64 = ax
            .data
            .iter()
            .zip(&y.data)
            .map(|(&a, &b)| (a * b) as f64)
            .sum();
        let rhs: f64 = x
            .data
            .iter()
            .zip(&aty.data)
            .map(|(&a, &b)| (a * b) as f64)
            .sum();
        assert!((lhs - rhs).abs() < 1e-4, "lhs {lhs} rhs {rhs}");
    }
}
