//! Int8 quantized inference kernels: symmetric per-channel weights,
//! per-row dynamically quantized activations, i8×i8→i32 GEMM with an f32
//! dequantize epilogue.
//!
//! This is the deploy-time trade-off the latency targets themselves live
//! under (the NNLQP platform set includes int8 NNIE/TensorRT deployments),
//! reproduced inside the predictor: training stays f32; a trained model's
//! [`crate::layers::Linear`] layers are frozen into [`QuantLinear`] at
//! publish time. The scheme is the standard "dynamic quantization":
//!
//! * weights: per-output-channel symmetric, `s_j = max_i |w[i][j]| / 127`,
//!   stored transposed (`[out][in]`) so the inner loop is a contiguous
//!   i8 dot product;
//! * activations: per-row symmetric, quantized on the fly each call;
//! * accumulation: exact i32 (products cap at 127², far from overflow),
//!   then one f32 fused epilogue `acc * (s_x * s_j) + bias[j]` with the
//!   optional ReLU.
//!
//! The integer inner product dispatches through [`crate::simd`]
//! (`_mm256_madd_epi16` on AVX2), and — being integer math — is
//! bit-identical across kernel backends, so quantized predictions never
//! depend on which CPU served them.

use crate::layers::Linear;
use crate::simd::{self, Kernel};
use crate::tensor::{Activation, Matrix};

/// One linear layer frozen to symmetric int8: transposed quantized
/// weights plus per-output-channel scales and the original f32 bias.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantLinear {
    /// Quantized weights, transposed to `[out_dim, in_dim]` row-major.
    wt: Vec<i8>,
    in_dim: usize,
    out_dim: usize,
    /// Per-output-channel dequantize scale (`w[:,j] ≈ wt[j,:] * w_scale[j]`).
    w_scale: Vec<f32>,
    /// Bias stays f32 — it is added after dequantization.
    bias: Vec<f32>,
}

impl QuantLinear {
    /// Quantize a trained f32 layer (weights `[in, out]`).
    pub fn from_linear(l: &Linear) -> Self {
        Self::quantize(&l.w, &l.b)
    }

    /// Quantize an explicit weight matrix + bias.
    pub fn quantize(w: &Matrix, bias: &[f32]) -> Self {
        assert_eq!(bias.len(), w.cols, "quantize bias/width mismatch");
        let (in_dim, out_dim) = (w.rows, w.cols);
        let mut w_scale = vec![0.0f32; out_dim];
        for (j, scale) in w_scale.iter_mut().enumerate() {
            let mut max = 0.0f32;
            for i in 0..in_dim {
                max = max.max(w.get(i, j).abs());
            }
            // An all-zero channel keeps scale 0: its quantized row is all
            // zeros and dequantizes to exactly bias[j].
            *scale = max / 127.0;
        }
        let mut wt = vec![0i8; out_dim * in_dim];
        for j in 0..out_dim {
            if w_scale[j] == 0.0 {
                continue;
            }
            let inv = 1.0 / w_scale[j];
            let row = &mut wt[j * in_dim..(j + 1) * in_dim];
            for (i, q) in row.iter_mut().enumerate() {
                *q = (w.get(i, j) * inv).round().clamp(-127.0, 127.0) as i8;
            }
        }
        QuantLinear {
            wt,
            in_dim,
            out_dim,
            w_scale,
            bias: bias.to_vec(),
        }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    /// `out = act(x @ W + b)` through the quantized path: each row of `x`
    /// is quantized into `qrow` (reused across calls), the i8 GEMM
    /// accumulates in i32 and the epilogue dequantizes, adds bias and
    /// applies the activation in one sweep.
    pub fn forward_quant(
        &self,
        x: &Matrix,
        out: &mut Matrix,
        act: Activation,
        qrow: &mut QuantRow,
    ) {
        self.forward_quant_with(simd::kernel(), x, out, act, qrow);
    }

    /// [`QuantLinear::forward_quant`] on an explicit kernel backend.
    pub fn forward_quant_with(
        &self,
        kern: Kernel,
        x: &Matrix,
        out: &mut Matrix,
        act: Activation,
        qrow: &mut QuantRow,
    ) {
        assert_eq!(x.cols, self.in_dim, "quant forward shape mismatch");
        assert_eq!(
            (out.rows, out.cols),
            (x.rows, self.out_dim),
            "quant forward out shape mismatch"
        );
        let relu = act == Activation::Relu;
        for i in 0..x.rows {
            qrow.quantize(x.row(i));
            let orow = out.row_mut(i);
            for (j, o) in orow.iter_mut().enumerate() {
                let wrow = &self.wt[j * self.in_dim..(j + 1) * self.in_dim];
                let acc = simd::dot_i8(kern, &qrow.q, wrow);
                let v = acc as f32 * (qrow.scale * self.w_scale[j]) + self.bias[j];
                *o = if relu && v < 0.0 { 0.0 } else { v };
            }
        }
    }
}

/// Reusable per-row activation quantization buffer (symmetric, dynamic:
/// the scale is recomputed from each row's max-abs).
#[derive(Debug, Default, Clone)]
pub struct QuantRow {
    /// Quantized row.
    q: Vec<i8>,
    /// Dequantize scale (`row ≈ q * scale`).
    scale: f32,
}

impl QuantRow {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Quantize `row` in place over the reused buffer.
    pub fn quantize(&mut self, row: &[f32]) {
        let mut max = 0.0f32;
        for &v in row {
            max = max.max(v.abs());
        }
        self.scale = max / 127.0;
        self.q.clear();
        if max == 0.0 {
            self.q.resize(row.len(), 0);
            return;
        }
        let inv = 127.0 / max;
        self.q.extend(
            row.iter()
                .map(|&v| (v * inv).round().clamp(-127.0, 127.0) as i8),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnlqp_ir::Rng64;

    fn rand_linear(inp: usize, out: usize, seed: u64) -> Linear {
        let mut rng = Rng64::new(seed);
        let mut l = Linear::new(inp, out, &mut rng);
        for b in &mut l.b {
            *b = rng.range_f64(-0.5, 0.5) as f32;
        }
        l
    }

    fn rand_mat(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut r = Rng64::new(seed);
        Matrix::from_fn(rows, cols, |_, _| r.range_f64(-1.0, 1.0) as f32)
    }

    #[test]
    fn weight_quantization_roundtrip_error_is_bounded() {
        let l = rand_linear(24, 16, 50);
        let q = QuantLinear::quantize(&l.w, &l.b);
        // Per channel: |w - wt * scale| <= scale / 2 (symmetric rounding).
        for j in 0..16 {
            for i in 0..24 {
                let deq = q.wt[j * 24 + i] as f32 * q.w_scale[j];
                assert!(
                    (deq - l.w.get(i, j)).abs() <= q.w_scale[j] * 0.5 + 1e-7,
                    "w[{i},{j}]"
                );
            }
        }
    }

    #[test]
    fn quant_forward_tracks_f32_forward() {
        let l = rand_linear(48, 32, 51);
        let x = rand_mat(9, 48, 52);
        let want = l.forward(&x);
        let q = QuantLinear::from_linear(&l);
        let mut out = Matrix::zeros(9, 32);
        let mut qrow = QuantRow::new();
        q.forward_quant(&x, &mut out, Activation::Identity, &mut qrow);
        // int8 dynamic quantization error at these widths stays small
        // relative to the activation magnitude.
        for (got, want) in out.data.iter().zip(&want.data) {
            assert!((got - want).abs() < 0.05, "{got} vs {want}");
        }
    }

    #[test]
    fn quant_forward_is_bitwise_identical_across_backends() {
        let l = rand_linear(33, 17, 53); // ragged: not multiples of 16
        let x = rand_mat(5, 33, 54);
        let q = QuantLinear::from_linear(&l);
        let mut qrow = QuantRow::new();
        let mut a = Matrix::zeros(5, 17);
        q.forward_quant_with(Kernel::Scalar, &x, &mut a, Activation::Relu, &mut qrow);
        if simd::simd_available() {
            let mut b = Matrix::zeros(5, 17);
            q.forward_quant_with(Kernel::Avx2Fma, &x, &mut b, Activation::Relu, &mut qrow);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn zero_channel_and_zero_row_degrade_to_bias() {
        let mut l = rand_linear(8, 4, 55);
        for i in 0..8 {
            l.w.set(i, 2, 0.0); // dead output channel
        }
        let q = QuantLinear::from_linear(&l);
        let x = Matrix::zeros(3, 8); // all-zero activations
        let mut out = Matrix::zeros(3, 4);
        let mut qrow = QuantRow::new();
        q.forward_quant(&x, &mut out, Activation::Identity, &mut qrow);
        for i in 0..3 {
            for j in 0..4 {
                assert_eq!(out.get(i, j), l.b[j], "[{i},{j}]");
            }
        }
    }
}
