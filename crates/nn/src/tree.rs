//! CART regression trees — the building block of the random-forest
//! regressor that backs the nn-Meter baseline (Appendix E).

use nnlqp_ir::Rng64;

/// Tree growth parameters.
#[derive(Debug, Clone, Copy)]
pub struct TreeConfig {
    /// Maximum depth.
    pub max_depth: usize,
    /// Minimum samples to attempt a split.
    pub min_samples_split: usize,
    /// Minimum samples in a leaf.
    pub min_samples_leaf: usize,
    /// Features considered per split (`None` = all).
    pub max_features: Option<usize>,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 12,
            min_samples_split: 4,
            min_samples_leaf: 2,
            max_features: None,
        }
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A fitted regression tree (arena representation).
#[derive(Debug, Clone)]
pub struct RegressionTree {
    nodes: Vec<Node>,
    n_features: usize,
}

struct Builder<'a> {
    x: &'a [Vec<f64>],
    y: &'a [f64],
    cfg: TreeConfig,
    nodes: Vec<Node>,
}

impl<'a> Builder<'a> {
    /// Best (feature, threshold, sse) split for the sample set, or None.
    fn best_split(&self, idx: &[usize], features: &[usize]) -> Option<(usize, f64, f64)> {
        let n = idx.len();
        let mut best: Option<(usize, f64, f64)> = None;
        let mut vals: Vec<(f64, f64)> = Vec::with_capacity(n);
        for &f in features {
            vals.clear();
            vals.extend(idx.iter().map(|&i| (self.x[i][f], self.y[i])));
            vals.sort_unstable_by(|a, b| a.0.partial_cmp(&b.0).expect("finite features"));
            // Prefix sums for O(n) split scoring.
            let total_sum: f64 = vals.iter().map(|v| v.1).sum();
            let total_sq: f64 = vals.iter().map(|v| v.1 * v.1).sum();
            let mut lsum = 0.0;
            let mut lsq = 0.0;
            for k in 0..n - 1 {
                lsum += vals[k].1;
                lsq += vals[k].1 * vals[k].1;
                // Can't split between equal feature values.
                if vals[k].0 == vals[k + 1].0 {
                    continue;
                }
                let nl = (k + 1) as f64;
                let nr = (n - k - 1) as f64;
                if (nl as usize) < self.cfg.min_samples_leaf
                    || (nr as usize) < self.cfg.min_samples_leaf
                {
                    continue;
                }
                let rsum = total_sum - lsum;
                let rsq = total_sq - lsq;
                let sse = (lsq - lsum * lsum / nl) + (rsq - rsum * rsum / nr);
                if best.is_none_or(|(_, _, b)| sse < b) {
                    let threshold = 0.5 * (vals[k].0 + vals[k + 1].0);
                    best = Some((f, threshold, sse));
                }
            }
        }
        best
    }

    fn grow(&mut self, idx: Vec<usize>, depth: usize, rng: &mut Rng64) -> usize {
        let mean = idx.iter().map(|&i| self.y[i]).sum::<f64>() / idx.len() as f64;
        let leaf = |nodes: &mut Vec<Node>| {
            nodes.push(Node::Leaf { value: mean });
            nodes.len() - 1
        };
        if depth >= self.cfg.max_depth || idx.len() < self.cfg.min_samples_split {
            return leaf(&mut self.nodes);
        }
        let d = self.x[0].len();
        let features: Vec<usize> = match self.cfg.max_features {
            Some(m) if m < d => rng.sample_indices(d, m),
            _ => (0..d).collect(),
        };
        let Some((feature, threshold, _)) = self.best_split(&idx, &features) else {
            return leaf(&mut self.nodes);
        };
        let (li, ri): (Vec<usize>, Vec<usize>) =
            idx.iter().partition(|&&i| self.x[i][feature] <= threshold);
        if li.is_empty() || ri.is_empty() {
            return leaf(&mut self.nodes);
        }
        // Reserve this node's slot before growing children.
        self.nodes.push(Node::Leaf { value: mean });
        let me = self.nodes.len() - 1;
        let left = self.grow(li, depth + 1, rng);
        let right = self.grow(ri, depth + 1, rng);
        self.nodes[me] = Node::Split {
            feature,
            threshold,
            left,
            right,
        };
        me
    }
}

impl RegressionTree {
    /// Fit a tree on `(x, y)`; `rng` drives feature subsampling.
    pub fn fit(x: &[Vec<f64>], y: &[f64], cfg: TreeConfig, rng: &mut Rng64) -> Self {
        assert_eq!(x.len(), y.len());
        assert!(!x.is_empty(), "empty training set");
        let mut b = Builder {
            x,
            y,
            cfg,
            nodes: Vec::new(),
        };
        let root = b.grow((0..x.len()).collect(), 0, rng);
        debug_assert_eq!(root, 0);
        RegressionTree {
            nodes: b.nodes,
            n_features: x[0].len(),
        }
    }

    /// Predict one sample.
    pub fn predict(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.n_features);
        let mut i = 0usize;
        loop {
            match &self.nodes[i] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    i = if x[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Number of nodes (diagnostics).
    pub fn size(&self) -> usize {
        self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fits_a_step_function_exactly() {
        let x: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..100).map(|i| if i < 50 { 1.0 } else { 5.0 }).collect();
        let mut r = Rng64::new(50);
        let t = RegressionTree::fit(&x, &y, TreeConfig::default(), &mut r);
        assert_eq!(t.predict(&[10.0]), 1.0);
        assert_eq!(t.predict(&[90.0]), 5.0);
    }

    #[test]
    fn approximates_smooth_function() {
        let x: Vec<Vec<f64>> = (0..400).map(|i| vec![i as f64 / 40.0]).collect();
        let y: Vec<f64> = x.iter().map(|v| (v[0]).sin() * 3.0).collect();
        let mut r = Rng64::new(51);
        let t = RegressionTree::fit(&x, &y, TreeConfig::default(), &mut r);
        let mut max_err = 0.0f64;
        for (xi, yi) in x.iter().zip(&y) {
            max_err = max_err.max((t.predict(xi) - yi).abs());
        }
        assert!(max_err < 0.2, "max err {max_err}");
    }

    #[test]
    fn respects_max_depth() {
        let x: Vec<Vec<f64>> = (0..64).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..64).map(|i| i as f64).collect();
        let cfg = TreeConfig {
            max_depth: 2,
            ..Default::default()
        };
        let mut r = Rng64::new(52);
        let t = RegressionTree::fit(&x, &y, cfg, &mut r);
        // Depth 2 -> at most 3 splits + 4 leaves = 7 nodes.
        assert!(t.size() <= 7, "size {}", t.size());
    }

    #[test]
    fn constant_target_single_leaf() {
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let y = vec![2.5; 10];
        let mut r = Rng64::new(53);
        let t = RegressionTree::fit(&x, &y, TreeConfig::default(), &mut r);
        assert_eq!(t.predict(&[3.0]), 2.5);
    }

    #[test]
    fn multi_feature_split_selection() {
        // y depends only on feature 1; the tree must ignore feature 0.
        let mut r = Rng64::new(54);
        let x: Vec<Vec<f64>> = (0..200)
            .map(|_| vec![r.range_f64(0.0, 1.0), r.range_f64(0.0, 1.0)])
            .collect();
        let y: Vec<f64> = x
            .iter()
            .map(|v| if v[1] > 0.5 { 10.0 } else { 0.0 })
            .collect();
        let t = RegressionTree::fit(&x, &y, TreeConfig::default(), &mut r);
        assert!((t.predict(&[0.9, 0.9]) - 10.0).abs() < 1.0);
        assert!(t.predict(&[0.9, 0.1]).abs() < 1.0);
    }
}
