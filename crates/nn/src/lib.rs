//! # nnlqp-nn
//!
//! A minimal, self-contained deep-learning framework — the substrate that
//! replaces PyTorch for the NNLP predictor (the Rust ecosystem offers no
//! GNN training stack, so it is built here from scratch):
//!
//! * dense f32 [`Matrix`] math with rayon-parallel, packed-panel
//!   multiplication, plus fused GEMM+bias+activation entry points and a
//!   [`Scratch`] arena for the allocation-free inference path,
//! * purely-functional layers with hand-derived backward passes
//!   ([`Linear`], [`relu`], [`Dropout`], [`l2_normalize_rows`]) so batches
//!   can be differentiated in parallel and gradients summed,
//! * the GraphSAGE convolution of Eq. 4 over [`Csr`] adjacency,
//! * multi-head self-attention with an adjacency-derived bias
//!   ([`AttnLayer`]), the transformer-encoder counterpart of the SAGE
//!   layer,
//! * the [`Adam`] optimizer (Kingma & Ba, 2014) keyed per tensor,
//! * classic estimators for the paper's baselines: closed-form ridge
//!   [`LinearRegression`] (FLOPs / FLOPs+MAC) and a CART-based
//!   [`RandomForest`] (nn-Meter's kernel regressor).
//!
//! Every backward pass is validated against finite differences in the unit
//! tests.

pub mod adam;
pub mod attention;
pub mod csr;
pub mod forest;
pub mod layers;
pub mod linreg;
pub mod quant;
pub mod sage;
pub mod simd;
pub mod tensor;
pub mod tree;

pub use adam::Adam;
pub use attention::{attention_bias, AttnGrad, AttnLayer, ATTN_NONEDGE_BIAS};
pub use csr::Csr;
pub use forest::{RandomForest, RandomForestConfig};
pub use layers::{
    l2_normalize_rows, l2_normalize_rows_backward, l2_normalize_rows_inplace, relu, relu_backward,
    relu_inplace, Dropout, Linear, LinearGrad,
};
pub use linreg::LinearRegression;
pub use quant::{QuantLinear, QuantRow};
pub use sage::{SageGrad, SageLayer};
pub use simd::{kernel, set_simd_enabled, simd_available, Kernel};
pub use tensor::{Activation, Matrix, Scratch};
pub use tree::{RegressionTree, TreeConfig};
