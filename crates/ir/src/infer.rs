//! Shape inference for every operator.

use crate::attrs::Attrs;
use crate::error::{IrError, IrResult};
use crate::op::OpType;
use crate::shape::Shape;

/// Spatial output size of a convolution/pooling window.
#[inline]
fn conv_out(dim: usize, kernel: u32, stride: u32, pad: u32, dilation: u32) -> IrResult<usize> {
    let eff_k = (dilation as usize) * (kernel as usize - 1) + 1;
    let padded = dim + 2 * pad as usize;
    if kernel == 0 || stride == 0 || padded < eff_k {
        return Err(IrError::Decode(format!(
            "window does not fit: dim={dim} k={kernel} s={stride} p={pad} d={dilation}"
        )));
    }
    Ok((padded - eff_k) / stride as usize + 1)
}

/// Infer the output shape of a node.
///
/// `node` is used only for error messages. `in_shapes` are the output shapes
/// of the node's predecessors; a node with no predecessors consumes
/// `graph_input`.
pub fn infer_shape(
    node: u32,
    op: OpType,
    attrs: &Attrs,
    in_shapes: &[&Shape],
    graph_input: &Shape,
) -> IrResult<Shape> {
    let err = |detail: String| IrError::ShapeMismatch { node, detail };
    let arity_err = |expected: &'static str, got: usize| IrError::Arity {
        node,
        op: op.name(),
        expected,
        got,
    };

    // Resolve the effective input list.
    let owned_default = [graph_input];
    let ins: &[&Shape] = if in_shapes.is_empty() {
        &owned_default
    } else {
        in_shapes
    };

    match op {
        OpType::Conv => {
            if ins.len() != 1 {
                return Err(arity_err("1", ins.len()));
            }
            let s = ins[0];
            if s.rank() != 4 {
                return Err(err(format!("Conv needs rank-4 input, got {s}")));
            }
            if attrs.groups == 0 || attrs.out_channels == 0 {
                return Err(IrError::BadAttr {
                    node,
                    detail: "Conv needs groups >= 1 and out_channels >= 1".into(),
                });
            }
            if !s.channels().is_multiple_of(attrs.groups as usize)
                || !(attrs.out_channels as usize).is_multiple_of(attrs.groups as usize)
            {
                return Err(err(format!(
                    "channels {} / out {} not divisible by groups {}",
                    s.channels(),
                    attrs.out_channels,
                    attrs.groups
                )));
            }
            let h = conv_out(
                s.height(),
                attrs.kernel[0],
                attrs.stride[0],
                attrs.pad[0],
                attrs.dilation[0],
            )
            .map_err(|_| err(format!("conv window H does not fit: in {s}")))?;
            let w = conv_out(
                s.width(),
                attrs.kernel[1],
                attrs.stride[1],
                attrs.pad[1],
                attrs.dilation[1],
            )
            .map_err(|_| err(format!("conv window W does not fit: in {s}")))?;
            Ok(Shape::nchw(s.batch(), attrs.out_channels as usize, h, w))
        }
        OpType::MaxPool | OpType::AveragePool => {
            if ins.len() != 1 {
                return Err(arity_err("1", ins.len()));
            }
            let s = ins[0];
            if s.rank() != 4 {
                return Err(err(format!("pool needs rank-4 input, got {s}")));
            }
            let h = conv_out(
                s.height(),
                attrs.kernel[0],
                attrs.stride[0],
                attrs.pad[0],
                1,
            )
            .map_err(|_| err(format!("pool window H does not fit: in {s}")))?;
            let w = conv_out(s.width(), attrs.kernel[1], attrs.stride[1], attrs.pad[1], 1)
                .map_err(|_| err(format!("pool window W does not fit: in {s}")))?;
            Ok(Shape::nchw(s.batch(), s.channels(), h, w))
        }
        OpType::GlobalAveragePool | OpType::ReduceMean => {
            if ins.len() != 1 {
                return Err(arity_err("1", ins.len()));
            }
            let s = ins[0];
            if s.rank() != 4 {
                return Err(err(format!("global pool needs rank-4 input, got {s}")));
            }
            Ok(Shape::nchw(s.batch(), s.channels(), 1, 1))
        }
        OpType::Relu | OpType::Clip | OpType::Sigmoid => {
            if ins.len() != 1 {
                return Err(arity_err("1", ins.len()));
            }
            Ok(ins[0].clone())
        }
        OpType::Add | OpType::Mul => {
            if ins.len() != 2 {
                return Err(arity_err("2", ins.len()));
            }
            // Allow NCHW x NC11 broadcast (squeeze-excite scaling).
            let (a, b) = (ins[0], ins[1]);
            if a == b {
                return Ok(a.clone());
            }
            let broadcast = |big: &Shape, small: &Shape| {
                big.rank() == 4
                    && small.rank() == 4
                    && big.batch() == small.batch()
                    && big.channels() == small.channels()
                    && small.height() == 1
                    && small.width() == 1
            };
            if broadcast(a, b) {
                Ok(a.clone())
            } else if broadcast(b, a) {
                Ok(b.clone())
            } else {
                Err(err(format!("binary op shapes differ: {a} vs {b}")))
            }
        }
        OpType::Concat => {
            if ins.len() < 2 {
                return Err(arity_err("2+", ins.len()));
            }
            if attrs.axis != 1 {
                return Err(IrError::BadAttr {
                    node,
                    detail: format!(
                        "only channel-axis concat supported, got axis {}",
                        attrs.axis
                    ),
                });
            }
            let first = ins[0];
            if first.rank() != 4 {
                return Err(err(format!("concat needs rank-4 inputs, got {first}")));
            }
            let mut c = 0usize;
            for s in ins {
                if s.rank() != 4
                    || s.batch() != first.batch()
                    || s.height() != first.height()
                    || s.width() != first.width()
                {
                    return Err(err(format!("concat input mismatch: {first} vs {s}")));
                }
                c += s.channels();
            }
            Ok(Shape::nchw(first.batch(), c, first.height(), first.width()))
        }
        OpType::Gemm => {
            if ins.len() != 1 {
                return Err(arity_err("1", ins.len()));
            }
            let s = ins[0];
            if attrs.out_channels == 0 {
                return Err(IrError::BadAttr {
                    node,
                    detail: "Gemm needs out_channels >= 1".into(),
                });
            }
            match s.rank() {
                2 => Ok(Shape::nc(s.batch(), attrs.out_channels as usize)),
                // Allow NCHW input with H=W=1 (after a global pool).
                4 if s.height() == 1 && s.width() == 1 => {
                    Ok(Shape::nc(s.batch(), attrs.out_channels as usize))
                }
                _ => Err(err(format!("Gemm needs rank-2 or NC11 input, got {s}"))),
            }
        }
        OpType::Flatten => {
            if ins.len() != 1 {
                return Err(arity_err("1", ins.len()));
            }
            let s = ins[0];
            let per_batch = s.numel() / s.batch().max(1);
            Ok(Shape::nc(s.batch(), per_batch))
        }
    }
}

/// Input features a Gemm weight matrix spans, given the producing shape.
pub fn gemm_in_features(input: &Shape) -> usize {
    match input.rank() {
        2 => input.channels(),
        _ => input.numel() / input.batch().max(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn infer(op: OpType, attrs: &Attrs, ins: &[&Shape]) -> IrResult<Shape> {
        infer_shape(0, op, attrs, ins, &Shape::nchw(1, 3, 224, 224))
    }

    #[test]
    fn conv_same_padding() {
        let a = Attrs::conv(64, 3, 1, 1, 1);
        let s = Shape::nchw(1, 3, 224, 224);
        assert_eq!(
            infer(OpType::Conv, &a, &[&s]).unwrap(),
            Shape::nchw(1, 64, 224, 224)
        );
    }

    #[test]
    fn conv_stride2_halves() {
        let a = Attrs::conv(32, 3, 2, 1, 1);
        let s = Shape::nchw(1, 16, 56, 56);
        assert_eq!(
            infer(OpType::Conv, &a, &[&s]).unwrap(),
            Shape::nchw(1, 32, 28, 28)
        );
    }

    #[test]
    fn conv_7x7_s2_p3_imagenet_stem() {
        let a = Attrs::conv(64, 7, 2, 3, 1);
        let s = Shape::nchw(1, 3, 224, 224);
        assert_eq!(
            infer(OpType::Conv, &a, &[&s]).unwrap(),
            Shape::nchw(1, 64, 112, 112)
        );
    }

    #[test]
    fn dilated_conv_shrinks_more() {
        // Dilation 2 on a 3x3 kernel: effective window 5.
        let a = Attrs {
            dilation: [2, 2],
            ..Attrs::conv(8, 3, 1, 0, 1)
        };
        let s = Shape::nchw(1, 4, 16, 16);
        assert_eq!(
            infer(OpType::Conv, &a, &[&s]).unwrap(),
            Shape::nchw(1, 8, 12, 12)
        );
    }

    #[test]
    fn conv_group_mismatch_rejected() {
        let a = Attrs::conv(64, 3, 1, 1, 5);
        let s = Shape::nchw(1, 16, 8, 8);
        assert!(infer(OpType::Conv, &a, &[&s]).is_err());
    }

    #[test]
    fn conv_window_too_large_rejected() {
        let a = Attrs::conv(8, 11, 1, 0, 1);
        let s = Shape::nchw(1, 3, 4, 4);
        assert!(infer(OpType::Conv, &a, &[&s]).is_err());
    }

    #[test]
    fn maxpool_imagenet_stem() {
        let a = Attrs::pool(3, 2, 1);
        let s = Shape::nchw(1, 64, 112, 112);
        assert_eq!(
            infer(OpType::MaxPool, &a, &[&s]).unwrap(),
            Shape::nchw(1, 64, 56, 56)
        );
    }

    #[test]
    fn global_pool_to_1x1() {
        let s = Shape::nchw(2, 512, 7, 7);
        assert_eq!(
            infer(OpType::GlobalAveragePool, &Attrs::default(), &[&s]).unwrap(),
            Shape::nchw(2, 512, 1, 1)
        );
    }

    #[test]
    fn elementwise_preserves_shape() {
        let s = Shape::nchw(1, 32, 14, 14);
        assert_eq!(infer(OpType::Relu, &Attrs::default(), &[&s]).unwrap(), s);
        assert_eq!(infer(OpType::Sigmoid, &Attrs::default(), &[&s]).unwrap(), s);
    }

    #[test]
    fn add_requires_matching_shapes() {
        let a = Shape::nchw(1, 32, 14, 14);
        let b = Shape::nchw(1, 32, 7, 7);
        assert!(infer(OpType::Add, &Attrs::default(), &[&a, &b]).is_err());
        assert_eq!(infer(OpType::Add, &Attrs::default(), &[&a, &a]).unwrap(), a);
    }

    #[test]
    fn mul_broadcast_se_scaling() {
        let act = Shape::nchw(1, 128, 28, 28);
        let gate = Shape::nchw(1, 128, 1, 1);
        assert_eq!(
            infer(OpType::Mul, &Attrs::default(), &[&act, &gate]).unwrap(),
            act
        );
        assert_eq!(
            infer(OpType::Mul, &Attrs::default(), &[&gate, &act]).unwrap(),
            act
        );
    }

    #[test]
    fn concat_sums_channels() {
        let a = Shape::nchw(1, 64, 28, 28);
        let b = Shape::nchw(1, 32, 28, 28);
        let c = Shape::nchw(1, 16, 28, 28);
        assert_eq!(
            infer(OpType::Concat, &Attrs::default(), &[&a, &b, &c]).unwrap(),
            Shape::nchw(1, 112, 28, 28)
        );
    }

    #[test]
    fn concat_spatial_mismatch_rejected() {
        let a = Shape::nchw(1, 64, 28, 28);
        let b = Shape::nchw(1, 32, 14, 14);
        assert!(infer(OpType::Concat, &Attrs::default(), &[&a, &b]).is_err());
    }

    #[test]
    fn gemm_from_flatten_and_nc11() {
        let a = Attrs::gemm(1000);
        assert_eq!(
            infer(OpType::Gemm, &a, &[&Shape::nc(4, 512)]).unwrap(),
            Shape::nc(4, 1000)
        );
        assert_eq!(
            infer(OpType::Gemm, &a, &[&Shape::nchw(4, 512, 1, 1)]).unwrap(),
            Shape::nc(4, 1000)
        );
        assert!(infer(OpType::Gemm, &a, &[&Shape::nchw(4, 512, 7, 7)]).is_err());
    }

    #[test]
    fn flatten_collapses() {
        assert_eq!(
            infer(
                OpType::Flatten,
                &Attrs::default(),
                &[&Shape::nchw(2, 256, 6, 6)]
            )
            .unwrap(),
            Shape::nc(2, 256 * 36)
        );
    }

    #[test]
    fn empty_inputs_consume_graph_input() {
        let a = Attrs::conv(16, 3, 1, 1, 1);
        let out = infer_shape(0, OpType::Conv, &a, &[], &Shape::nchw(1, 3, 32, 32)).unwrap();
        assert_eq!(out, Shape::nchw(1, 16, 32, 32));
    }

    #[test]
    fn gemm_in_features_helper() {
        assert_eq!(gemm_in_features(&Shape::nc(1, 512)), 512);
        assert_eq!(gemm_in_features(&Shape::nchw(1, 256, 6, 6)), 256 * 36);
    }
}
