//! Operator taxonomy.
//!
//! The set is exactly the operators the paper's dataset exercises: every op
//! here lands in one of the 14 kernel families of Appendix D after fusion
//! (Conv, Conv+Relu, Conv+Add, Conv+Add+Relu, Conv+Clip, Sigmoid+Mul,
//! Concat, MaxPool, AveragePool, GlobalAveragePool, Gemm, Flatten,
//! ReduceMean, Relu). BatchNorm is assumed folded into the preceding
//! convolution, as deployment toolchains (TensorRT et al.) do before
//! measurement.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An ONNX-style operator type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum OpType {
    /// 2-D convolution (grouped / depthwise via `groups`).
    Conv = 0,
    /// Rectified linear unit.
    Relu = 1,
    /// Clip to `[min, max]` — ReLU6 in the mobile families.
    Clip = 2,
    /// Logistic sigmoid (combined with Mul it forms the Swish kernel).
    Sigmoid = 3,
    /// Element-wise multiplication (two inputs).
    Mul = 4,
    /// Element-wise addition (two inputs) — residual connections.
    Add = 5,
    /// Channel-axis concatenation (two or more inputs).
    Concat = 6,
    /// 2-D max pooling.
    MaxPool = 7,
    /// 2-D average pooling.
    AveragePool = 8,
    /// Global average pooling to 1x1.
    GlobalAveragePool = 9,
    /// Fully-connected layer (matrix multiply + bias).
    Gemm = 10,
    /// Collapse CHW into a single axis.
    Flatten = 11,
    /// Mean over spatial axes (keepdims) — squeeze-and-excite pooling.
    ReduceMean = 12,
}

/// Number of distinct operator types; the width of the one-hot block in the
/// node feature vector (Eq. 3).
pub const NUM_OP_TYPES: usize = 13;

/// All operator types in `op_code` order.
pub const ALL_OPS: [OpType; NUM_OP_TYPES] = [
    OpType::Conv,
    OpType::Relu,
    OpType::Clip,
    OpType::Sigmoid,
    OpType::Mul,
    OpType::Add,
    OpType::Concat,
    OpType::MaxPool,
    OpType::AveragePool,
    OpType::GlobalAveragePool,
    OpType::Gemm,
    OpType::Flatten,
    OpType::ReduceMean,
];

impl OpType {
    /// Dense integer code, `0..NUM_OP_TYPES`.
    #[inline]
    pub fn code(self) -> usize {
        self as usize
    }

    /// Inverse of [`OpType::code`].
    pub fn from_code(code: u8) -> Option<Self> {
        ALL_OPS.get(code as usize).copied()
    }

    /// Canonical ONNX-style name.
    pub fn name(self) -> &'static str {
        match self {
            OpType::Conv => "Conv",
            OpType::Relu => "Relu",
            OpType::Clip => "Clip",
            OpType::Sigmoid => "Sigmoid",
            OpType::Mul => "Mul",
            OpType::Add => "Add",
            OpType::Concat => "Concat",
            OpType::MaxPool => "MaxPool",
            OpType::AveragePool => "AveragePool",
            OpType::GlobalAveragePool => "GlobalAveragePool",
            OpType::Gemm => "Gemm",
            OpType::Flatten => "Flatten",
            OpType::ReduceMean => "ReduceMean",
        }
    }

    /// Parse the canonical name.
    pub fn parse(s: &str) -> Option<Self> {
        ALL_OPS.iter().copied().find(|op| op.name() == s)
    }

    /// True for ops carrying learned weights (contribute parameters).
    #[inline]
    pub fn has_weights(self) -> bool {
        matches!(self, OpType::Conv | OpType::Gemm)
    }

    /// True for element-wise ops that preserve the input shape.
    #[inline]
    pub fn is_elementwise(self) -> bool {
        matches!(
            self,
            OpType::Relu | OpType::Clip | OpType::Sigmoid | OpType::Mul | OpType::Add
        )
    }

    /// Expected input arity: `(min, max)`; `usize::MAX` means unbounded.
    pub fn arity(self) -> (usize, usize) {
        match self {
            // A parameterless-input node consumes the graph input, so the
            // minimum arity of unary ops is 0 (first node of the graph).
            OpType::Conv
            | OpType::Relu
            | OpType::Clip
            | OpType::Sigmoid
            | OpType::MaxPool
            | OpType::AveragePool
            | OpType::GlobalAveragePool
            | OpType::Gemm
            | OpType::Flatten
            | OpType::ReduceMean => (0, 1),
            OpType::Mul | OpType::Add => (2, 2),
            OpType::Concat => (2, usize::MAX),
        }
    }
}

impl fmt::Display for OpType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_dense_and_roundtrip() {
        for (i, op) in ALL_OPS.iter().enumerate() {
            assert_eq!(op.code(), i);
            assert_eq!(OpType::from_code(i as u8), Some(*op));
        }
        assert_eq!(OpType::from_code(NUM_OP_TYPES as u8), None);
    }

    #[test]
    fn names_roundtrip() {
        for op in ALL_OPS {
            assert_eq!(OpType::parse(op.name()), Some(op));
        }
        assert_eq!(OpType::parse("Softmax"), None);
    }

    #[test]
    fn weights_flags() {
        assert!(OpType::Conv.has_weights());
        assert!(OpType::Gemm.has_weights());
        assert!(!OpType::Relu.has_weights());
        assert!(!OpType::Concat.has_weights());
    }

    #[test]
    fn arity_sanity() {
        assert_eq!(OpType::Add.arity(), (2, 2));
        assert_eq!(OpType::Concat.arity().0, 2);
        assert_eq!(OpType::Conv.arity(), (0, 1));
    }

    #[test]
    fn elementwise_flags() {
        assert!(OpType::Add.is_elementwise());
        assert!(OpType::Mul.is_elementwise());
        assert!(!OpType::Conv.is_elementwise());
        assert!(!OpType::GlobalAveragePool.is_elementwise());
    }
}
