//! Operator attributes.
//!
//! A single flat attribute record is shared by all operators; fields that do
//! not apply to an op are left at their defaults. This mirrors how the
//! paper's predictor consumes attributes: `F_v^attr` is a fixed-length
//! numeric vector regardless of operator type (Eq. 3).

use serde::{Deserialize, Serialize};

/// Flat attribute record attached to every node.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Attrs {
    /// Kernel size `[kh, kw]` (Conv, MaxPool, AveragePool).
    pub kernel: [u32; 2],
    /// Stride `[sh, sw]`.
    pub stride: [u32; 2],
    /// Symmetric padding `[ph, pw]`.
    pub pad: [u32; 2],
    /// Dilation `[dh, dw]` (Conv only).
    pub dilation: [u32; 2],
    /// Convolution groups; `groups == in_channels == out_channels` is a
    /// depthwise convolution.
    pub groups: u32,
    /// Output channels (Conv) or output features (Gemm).
    pub out_channels: u32,
    /// Concat axis (only 1, the channel axis, is produced by the builders).
    pub axis: u32,
    /// Clip lower bound.
    pub clip_min: f32,
    /// Clip upper bound.
    pub clip_max: f32,
}

impl Default for Attrs {
    fn default() -> Self {
        Attrs {
            kernel: [0, 0],
            stride: [1, 1],
            pad: [0, 0],
            dilation: [1, 1],
            groups: 1,
            out_channels: 0,
            axis: 1,
            clip_min: 0.0,
            clip_max: 6.0,
        }
    }
}

/// Length of the numeric attribute vector produced by [`Attrs::to_vec`].
pub const ATTR_VEC_LEN: usize = 12;

impl Attrs {
    /// Attributes for a convolution.
    pub fn conv(out_channels: u32, kernel: u32, stride: u32, pad: u32, groups: u32) -> Self {
        Attrs {
            kernel: [kernel, kernel],
            stride: [stride, stride],
            pad: [pad, pad],
            groups,
            out_channels,
            ..Default::default()
        }
    }

    /// Attributes for a pooling op.
    pub fn pool(kernel: u32, stride: u32, pad: u32) -> Self {
        Attrs {
            kernel: [kernel, kernel],
            stride: [stride, stride],
            pad: [pad, pad],
            ..Default::default()
        }
    }

    /// Attributes for a fully-connected layer.
    pub fn gemm(out_features: u32) -> Self {
        Attrs {
            out_channels: out_features,
            ..Default::default()
        }
    }

    /// Attributes for a Clip (ReLU6 uses `[0, 6]`).
    pub fn clip(min: f32, max: f32) -> Self {
        Attrs {
            clip_min: min,
            clip_max: max,
            ..Default::default()
        }
    }

    /// The fixed-length numeric encoding used both by the graph hash and by
    /// the node feature extractor.
    pub fn to_vec(&self) -> [f32; ATTR_VEC_LEN] {
        [
            self.kernel[0] as f32,
            self.kernel[1] as f32,
            self.stride[0] as f32,
            self.stride[1] as f32,
            self.pad[0] as f32,
            self.pad[1] as f32,
            self.dilation[0] as f32,
            self.dilation[1] as f32,
            self.groups as f32,
            self.out_channels as f32,
            self.axis as f32,
            self.clip_max - self.clip_min,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_constructor() {
        let a = Attrs::conv(64, 3, 2, 1, 1);
        assert_eq!(a.kernel, [3, 3]);
        assert_eq!(a.stride, [2, 2]);
        assert_eq!(a.pad, [1, 1]);
        assert_eq!(a.out_channels, 64);
        assert_eq!(a.groups, 1);
    }

    #[test]
    fn depthwise_groups() {
        let a = Attrs::conv(128, 3, 1, 1, 128);
        assert_eq!(a.groups, 128);
    }

    #[test]
    fn attr_vec_length_and_content() {
        let a = Attrs::conv(32, 5, 1, 2, 1);
        let v = a.to_vec();
        assert_eq!(v.len(), ATTR_VEC_LEN);
        assert_eq!(v[0], 5.0);
        assert_eq!(v[9], 32.0);
    }

    #[test]
    fn default_is_neutral() {
        let a = Attrs::default();
        assert_eq!(a.stride, [1, 1]);
        assert_eq!(a.groups, 1);
        assert_eq!(a.out_channels, 0);
    }

    #[test]
    fn clip_range_encoded() {
        let a = Attrs::clip(0.0, 6.0);
        assert_eq!(a.to_vec()[11], 6.0);
    }
}
