//! # nnlqp-ir
//!
//! Graph intermediate representation for the NNLQP reproduction.
//!
//! A deep neural network is modelled as a directed acyclic graph (DAG) of
//! operator nodes, exactly as the paper treats ONNX models: each node carries
//! an operator type, a set of numeric attributes and an inferred output
//! shape. The crate provides:
//!
//! * the operator taxonomy ([`OpType`]) restricted to the 14 kernel families
//!   the paper's fusion rules produce (Appendix D),
//! * tensor [`Shape`]s and [`DType`]s,
//! * the [`Graph`] container whose node vector is always a valid topological
//!   order (enforced by [`GraphBuilder`] and [`validate::validate`]),
//! * shape inference ([`infer`]), FLOPs / parameter / memory-access
//!   accounting ([`cost`]),
//! * compact binary serialization ([`serialize`]) used by the evolving
//!   database, and
//! * a small deterministic RNG ([`rng`]) shared by the generators and the
//!   simulator so every experiment is reproducible from a seed.

pub mod attrs;
pub mod builder;
pub mod cost;
pub mod dot;
pub mod error;
pub mod graph;
pub mod infer;
pub mod node;
pub mod op;
pub mod rng;
pub mod serialize;
pub mod shape;
pub mod summary;
pub mod validate;

pub use attrs::Attrs;
pub use builder::GraphBuilder;
pub use cost::{GraphCost, NodeCost};
pub use error::{IrError, IrResult};
pub use graph::Graph;
pub use node::{Node, NodeId};
pub use op::OpType;
pub use rng::Rng64;
pub use shape::{DType, Shape};
