//! Error type shared by all IR operations.

use std::fmt;

/// Errors raised while constructing, validating or (de)serializing graphs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrError {
    /// A node references an input id that does not precede it (or does not
    /// exist). The node vector must be a topological order.
    BadTopology { node: u32, input: u32 },
    /// Shape inference failed for a node.
    ShapeMismatch { node: u32, detail: String },
    /// An operator received the wrong number of inputs.
    Arity {
        node: u32,
        op: &'static str,
        expected: &'static str,
        got: usize,
    },
    /// An attribute value is invalid for the operator (e.g. zero stride).
    BadAttr { node: u32, detail: String },
    /// The graph is structurally empty or has no output.
    Empty,
    /// Binary decoding failed.
    Decode(String),
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::BadTopology { node, input } => {
                write!(
                    f,
                    "node {node} references input {input} that is not an earlier node"
                )
            }
            IrError::ShapeMismatch { node, detail } => {
                write!(f, "shape inference failed at node {node}: {detail}")
            }
            IrError::Arity {
                node,
                op,
                expected,
                got,
            } => {
                write!(f, "node {node} ({op}) expects {expected} inputs, got {got}")
            }
            IrError::BadAttr { node, detail } => {
                write!(f, "invalid attribute at node {node}: {detail}")
            }
            IrError::Empty => write!(f, "graph has no nodes"),
            IrError::Decode(d) => write!(f, "decode error: {d}"),
        }
    }
}

impl std::error::Error for IrError {}

/// Convenience alias used across the crate.
pub type IrResult<T> = Result<T, IrError>;
