//! Human-readable model summaries (Keras-style layer table).

use crate::cost;
use crate::graph::Graph;
use crate::shape::DType;
use std::fmt::Write;

/// Render a layer-by-layer summary: operator, output shape, parameters,
/// FLOPs, plus totals — the quick sanity view for generated models.
pub fn summarize(g: &Graph) -> String {
    let gc = cost::graph_cost(g, DType::F32);
    let mut s = String::new();
    let _ = writeln!(s, "Model: {}  (input {})", g.name, g.input_shape);
    let _ = writeln!(
        s,
        "{:<6} {:<18} {:<16} {:>12} {:>14}",
        "id", "op", "output", "params", "flops"
    );
    for (id, n) in g.iter() {
        let c = &gc.per_node[id.index()];
        let _ = writeln!(
            s,
            "{:<6} {:<18} {:<16} {:>12} {:>14}",
            format!("n{}", id.0),
            n.op.name(),
            n.out_shape.to_string(),
            human(c.params),
            human(c.flops),
        );
    }
    let _ = writeln!(
        s,
        "total: {} nodes, {} edges, {} params, {} flops, {} MiB memory access",
        g.len(),
        g.num_edges(),
        human(gc.params),
        human(gc.flops),
        (gc.mem_bytes / (1024.0 * 1024.0)).round() as u64,
    );
    s
}

/// Compact human number (1.23K / 4.56M / 7.89G).
fn human(x: f64) -> String {
    let ax = x.abs();
    if ax >= 1e9 {
        format!("{:.2}G", x / 1e9)
    } else if ax >= 1e6 {
        format!("{:.2}M", x / 1e6)
    } else if ax >= 1e3 {
        format!("{:.2}K", x / 1e3)
    } else {
        format!("{x:.0}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::shape::Shape;

    #[test]
    fn summary_contains_layers_and_totals() {
        let mut b = GraphBuilder::new("sum-test", Shape::nchw(1, 3, 32, 32));
        let c = b.conv(None, 16, 3, 1, 1, 1).unwrap();
        let r = b.relu(c).unwrap();
        let g0 = b.global_avgpool(r).unwrap();
        let f = b.flatten(g0).unwrap();
        b.gemm(f, 10).unwrap();
        let g = b.finish().unwrap();
        let s = summarize(&g);
        assert!(s.contains("Model: sum-test"));
        assert!(s.contains("Conv"));
        assert!(s.contains("Gemm"));
        assert!(s.contains("total: 5 nodes"));
        assert_eq!(s.lines().count(), 2 + 5 + 1);
    }

    #[test]
    fn human_units() {
        assert_eq!(human(950.0), "950");
        assert_eq!(human(1500.0), "1.50K");
        assert_eq!(human(2.5e6), "2.50M");
        assert_eq!(human(3.1e9), "3.10G");
    }
}
