//! Graph nodes.

use crate::attrs::Attrs;
use crate::op::OpType;
use crate::shape::Shape;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Index of a node within its graph's node vector.
///
/// Because graphs keep their nodes in topological order, `NodeId` ordering
/// is also a (one of possibly many) topological ordering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// As a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// One operator node of a model DAG.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Operator type.
    pub op: OpType,
    /// Operator attributes.
    pub attrs: Attrs,
    /// Predecessor nodes, in argument order. Empty means the node reads the
    /// graph input tensor.
    pub inputs: Vec<NodeId>,
    /// Inferred output shape.
    pub out_shape: Shape,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_ordering_matches_index() {
        assert!(NodeId(2) < NodeId(5));
        assert_eq!(NodeId(7).index(), 7);
        assert_eq!(NodeId(3).to_string(), "n3");
    }
}
