//! Graphviz DOT export — handy for inspecting generated models.

use crate::graph::Graph;
use std::fmt::Write;

/// Render the graph in Graphviz DOT format. Node labels carry the
/// operator name and output shape; graph inputs are drawn as a separate
/// source node.
pub fn to_dot(g: &Graph) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "digraph \"{}\" {{", g.name.replace('"', "'"));
    let _ = writeln!(s, "  rankdir=TB;");
    let _ = writeln!(
        s,
        "  input [label=\"Input {}\", shape=oval];",
        g.input_shape
    );
    for (id, n) in g.iter() {
        let _ = writeln!(
            s,
            "  n{} [label=\"{} {}\", shape=box];",
            id.0,
            n.op.name(),
            n.out_shape
        );
        if n.inputs.is_empty() {
            let _ = writeln!(s, "  input -> n{};", id.0);
        } else {
            for inp in &n.inputs {
                let _ = writeln!(s, "  n{} -> n{};", inp.0, id.0);
            }
        }
    }
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::shape::Shape;

    #[test]
    fn dot_contains_all_nodes_and_edges() {
        let mut b = GraphBuilder::new("dot-test", Shape::nchw(1, 3, 8, 8));
        let c = b.conv(None, 8, 3, 1, 1, 1).unwrap();
        let r = b.relu(c).unwrap();
        let c2 = b.conv(Some(r), 8, 3, 1, 1, 1).unwrap();
        b.add(r, c2).unwrap();
        let g = b.finish().unwrap();
        let dot = to_dot(&g);
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("input -> n0;"));
        assert!(dot.contains("n0 -> n1;"));
        assert!(dot.contains("n1 -> n3;")); // relu feeds add
        assert!(dot.contains("Conv (1x8x8x8)"));
        assert_eq!(dot.matches("shape=box").count(), g.len());
    }

    #[test]
    fn quotes_in_names_are_sanitized() {
        let mut b = GraphBuilder::new("a\"b", Shape::nchw(1, 3, 8, 8));
        b.conv(None, 8, 3, 1, 1, 1).unwrap();
        let g = b.finish().unwrap();
        assert!(to_dot(&g).contains("digraph \"a'b\""));
    }
}
