//! Compact binary serialization of graphs.
//!
//! The evolving database stores models "ONNX format without weights ...
//! hundreds of bytes" per record (§5.2). This module provides exactly that:
//! a versioned, weight-free binary encoding (a few bytes per node) plus JSON
//! helpers for human-readable export.

use crate::attrs::Attrs;
use crate::error::{IrError, IrResult};
use crate::graph::Graph;
use crate::node::{Node, NodeId};
use crate::op::OpType;
use crate::shape::Shape;
use bytes::{Buf, BufMut, Bytes, BytesMut};

const MAGIC: &[u8; 4] = b"NLQP";
const VERSION: u8 = 1;

fn put_shape(buf: &mut BytesMut, s: &Shape) {
    buf.put_u8(s.rank() as u8);
    for &d in &s.0 {
        buf.put_u32_le(d as u32);
    }
}

fn get_shape(buf: &mut Bytes) -> IrResult<Shape> {
    if buf.remaining() < 1 {
        return Err(IrError::Decode("truncated shape rank".into()));
    }
    let rank = buf.get_u8() as usize;
    if buf.remaining() < rank * 4 {
        return Err(IrError::Decode("truncated shape dims".into()));
    }
    let dims = (0..rank).map(|_| buf.get_u32_le() as usize).collect();
    Ok(Shape(dims))
}

/// Encode a graph to its compact binary form.
pub fn encode(g: &Graph) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + g.len() * 40);
    buf.put_slice(MAGIC);
    buf.put_u8(VERSION);
    let name = g.name.as_bytes();
    buf.put_u16_le(name.len() as u16);
    buf.put_slice(name);
    put_shape(&mut buf, &g.input_shape);
    buf.put_u32_le(g.len() as u32);
    for n in &g.nodes {
        buf.put_u8(n.op.code() as u8);
        buf.put_u16_le(n.attrs.kernel[0] as u16);
        buf.put_u16_le(n.attrs.kernel[1] as u16);
        buf.put_u8(n.attrs.stride[0] as u8);
        buf.put_u8(n.attrs.stride[1] as u8);
        buf.put_u8(n.attrs.pad[0] as u8);
        buf.put_u8(n.attrs.pad[1] as u8);
        buf.put_u8(n.attrs.dilation[0] as u8);
        buf.put_u8(n.attrs.dilation[1] as u8);
        buf.put_u16_le(n.attrs.groups as u16);
        buf.put_u16_le(n.attrs.out_channels as u16);
        buf.put_u8(n.attrs.axis as u8);
        buf.put_f32_le(n.attrs.clip_min);
        buf.put_f32_le(n.attrs.clip_max);
        buf.put_u8(n.inputs.len() as u8);
        for &i in &n.inputs {
            buf.put_u32_le(i.0);
        }
        put_shape(&mut buf, &n.out_shape);
    }
    buf.freeze()
}

/// Decode and validate a graph previously produced by [`encode`].
pub fn decode(mut buf: Bytes) -> IrResult<Graph> {
    let need = |buf: &Bytes, n: usize, what: &str| {
        if buf.remaining() < n {
            Err(IrError::Decode(format!("truncated {what}")))
        } else {
            Ok(())
        }
    };
    need(&buf, 5, "header")?;
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(IrError::Decode("bad magic".into()));
    }
    let version = buf.get_u8();
    if version != VERSION {
        return Err(IrError::Decode(format!("unsupported version {version}")));
    }
    need(&buf, 2, "name len")?;
    let name_len = buf.get_u16_le() as usize;
    need(&buf, name_len, "name")?;
    let name = String::from_utf8(buf.copy_to_bytes(name_len).to_vec())
        .map_err(|_| IrError::Decode("name not utf-8".into()))?;
    let input_shape = get_shape(&mut buf)?;
    need(&buf, 4, "node count")?;
    let count = buf.get_u32_le() as usize;
    let mut nodes = Vec::with_capacity(count);
    for _ in 0..count {
        need(&buf, 28, "node body")?;
        let op = OpType::from_code(buf.get_u8())
            .ok_or_else(|| IrError::Decode("unknown op code".into()))?;
        let attrs = Attrs {
            kernel: [buf.get_u16_le() as u32, buf.get_u16_le() as u32],
            stride: [buf.get_u8() as u32, buf.get_u8() as u32],
            pad: [buf.get_u8() as u32, buf.get_u8() as u32],
            dilation: [buf.get_u8() as u32, buf.get_u8() as u32],
            groups: buf.get_u16_le() as u32,
            out_channels: buf.get_u16_le() as u32,
            axis: buf.get_u8() as u32,
            clip_min: buf.get_f32_le(),
            clip_max: buf.get_f32_le(),
        };
        let n_in = buf.get_u8() as usize;
        need(&buf, n_in * 4, "node inputs")?;
        let inputs = (0..n_in).map(|_| NodeId(buf.get_u32_le())).collect();
        let out_shape = get_shape(&mut buf)?;
        nodes.push(Node {
            op,
            attrs,
            inputs,
            out_shape,
        });
    }
    let g = Graph {
        name,
        input_shape,
        nodes,
    };
    crate::validate::validate(&g)?;
    Ok(g)
}

/// Encoded size in bytes — what a database model record costs.
pub fn storage_bytes(g: &Graph) -> usize {
    encode(g).len()
}

/// JSON export (pretty). The field layout matches what a serde derive
/// would emit: shapes as plain arrays, ops by canonical name.
pub fn to_json(g: &Graph) -> String {
    let nodes: Vec<serde_json::Value> = g
        .nodes
        .iter()
        .map(|n| {
            let inputs: Vec<u32> = n.inputs.iter().map(|i| i.0).collect();
            serde_json::json!({
                "op": n.op.name(),
                "attrs": {
                    "kernel": n.attrs.kernel,
                    "stride": n.attrs.stride,
                    "pad": n.attrs.pad,
                    "dilation": n.attrs.dilation,
                    "groups": n.attrs.groups,
                    "out_channels": n.attrs.out_channels,
                    "axis": n.attrs.axis,
                    "clip_min": n.attrs.clip_min,
                    "clip_max": n.attrs.clip_max,
                },
                "inputs": inputs,
                "out_shape": n.out_shape.0,
            })
        })
        .collect();
    let v = serde_json::json!({
        "name": g.name,
        "input_shape": g.input_shape.0,
        "nodes": nodes,
    });
    serde_json::to_string_pretty(&v).expect("value serializes")
}

/// JSON import with validation.
pub fn from_json(s: &str) -> IrResult<Graph> {
    let g = from_json_unchecked(s)?;
    crate::validate::validate(&g)?;
    Ok(g)
}

/// JSON import without validation — for diagnostic tools (`nnlqp lint`)
/// that report on malformed graphs rather than refusing to open them.
pub fn from_json_unchecked(s: &str) -> IrResult<Graph> {
    let v: serde_json::Value =
        serde_json::from_str(s).map_err(|e| IrError::Decode(e.to_string()))?;
    let bad = |what: &str| IrError::Decode(format!("missing or malformed {what}"));

    let name = v["name"].as_str().ok_or_else(|| bad("name"))?.to_string();
    let input_shape = Shape(shape_dims(&v["input_shape"]).ok_or_else(|| bad("input_shape"))?);
    let raw_nodes = v["nodes"].as_array().ok_or_else(|| bad("nodes"))?;
    let mut nodes = Vec::with_capacity(raw_nodes.len());
    for (i, n) in raw_nodes.iter().enumerate() {
        let op = n["op"]
            .as_str()
            .and_then(OpType::parse)
            .ok_or_else(|| bad(&format!("nodes[{i}].op")))?;
        let a = &n["attrs"];
        let attrs = Attrs {
            kernel: u32_pair(&a["kernel"]).ok_or_else(|| bad(&format!("nodes[{i}].kernel")))?,
            stride: u32_pair(&a["stride"]).ok_or_else(|| bad(&format!("nodes[{i}].stride")))?,
            pad: u32_pair(&a["pad"]).ok_or_else(|| bad(&format!("nodes[{i}].pad")))?,
            dilation: u32_pair(&a["dilation"])
                .ok_or_else(|| bad(&format!("nodes[{i}].dilation")))?,
            groups: u32_field(&a["groups"]).ok_or_else(|| bad(&format!("nodes[{i}].groups")))?,
            out_channels: u32_field(&a["out_channels"])
                .ok_or_else(|| bad(&format!("nodes[{i}].out_channels")))?,
            axis: u32_field(&a["axis"]).ok_or_else(|| bad(&format!("nodes[{i}].axis")))?,
            clip_min: a["clip_min"].as_f64().ok_or_else(|| bad("clip_min"))? as f32,
            clip_max: a["clip_max"].as_f64().ok_or_else(|| bad("clip_max"))? as f32,
        };
        let inputs = n["inputs"]
            .as_array()
            .ok_or_else(|| bad(&format!("nodes[{i}].inputs")))?
            .iter()
            .map(|x| x.as_u64().map(|id| NodeId(id as u32)))
            .collect::<Option<Vec<NodeId>>>()
            .ok_or_else(|| bad(&format!("nodes[{i}].inputs")))?;
        let out_shape = Shape(
            shape_dims(&n["out_shape"]).ok_or_else(|| bad(&format!("nodes[{i}].out_shape")))?,
        );
        nodes.push(Node {
            op,
            attrs,
            inputs,
            out_shape,
        });
    }
    Ok(Graph {
        name,
        input_shape,
        nodes,
    })
}

fn shape_dims(v: &serde_json::Value) -> Option<Vec<usize>> {
    v.as_array()?
        .iter()
        .map(|d| d.as_u64().map(|d| d as usize))
        .collect()
}

fn u32_field(v: &serde_json::Value) -> Option<u32> {
    v.as_u64().map(|x| x as u32)
}

fn u32_pair(v: &serde_json::Value) -> Option<[u32; 2]> {
    let a = v.as_array()?;
    match a.as_slice() {
        [x, y] => Some([u32_field(x)?, u32_field(y)?]),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn sample() -> Graph {
        let mut b = GraphBuilder::new("sample-net", Shape::nchw(1, 3, 32, 32));
        let c1 = b.conv(None, 16, 3, 2, 1, 1).unwrap();
        let r1 = b.relu6(c1).unwrap();
        let d = b.dwconv(r1, 3, 1, 1).unwrap();
        let s = b.swish(d).unwrap();
        let c2 = b.conv(Some(s), 16, 1, 1, 0, 1).unwrap();
        let a = b.add(r1, c2).unwrap();
        let p = b.global_avgpool(a).unwrap();
        let f = b.flatten(p).unwrap();
        b.gemm(f, 10).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn binary_roundtrip_identity() {
        let g = sample();
        let bytes = encode(&g);
        let g2 = decode(bytes).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn json_roundtrip_identity() {
        let g = sample();
        let g2 = from_json(&to_json(&g)).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn storage_is_hundreds_of_bytes() {
        let g = sample();
        let n = storage_bytes(&g);
        // The paper: "Each model record uses the storage of hundreds of bytes".
        assert!(n > 100 && n < 2000, "storage {n} bytes");
    }

    #[test]
    fn bad_magic_rejected() {
        let g = sample();
        let mut raw = encode(&g).to_vec();
        raw[0] = b'X';
        assert!(matches!(decode(Bytes::from(raw)), Err(IrError::Decode(_))));
    }

    #[test]
    fn truncation_rejected_not_panic() {
        let g = sample();
        let raw = encode(&g);
        for cut in [0, 3, 5, 10, raw.len() / 2, raw.len() - 1] {
            let sliced = raw.slice(0..cut);
            assert!(decode(sliced).is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn corrupted_topology_fails_validation() {
        let g = sample();
        let mut raw = encode(&g).to_vec();
        // Flip a byte late in the stream until decode fails or validation
        // catches an inconsistency; decode must never panic.
        for i in (raw.len() - 20)..raw.len() {
            let mut r = raw.clone();
            r[i] ^= 0xFF;
            let _ = decode(Bytes::from(r)); // must not panic
        }
        raw[6] ^= 0xFF;
        let _ = decode(Bytes::from(raw));
    }
}
