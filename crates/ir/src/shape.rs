//! Tensor shapes and data types.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Numeric precision a platform executes a model in.
///
/// Mirrors Table 1 of the paper: GPUs run fp32/fp16/int8, the CPU runs fp32,
/// and the ASIC families run int16/int8 or fp16/int8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DType {
    F32,
    F16,
    I16,
    I8,
}

impl DType {
    /// Bytes per element.
    #[inline]
    pub fn bytes(self) -> usize {
        match self {
            DType::F32 => 4,
            DType::F16 | DType::I16 => 2,
            DType::I8 => 1,
        }
    }

    /// Stable short name used in platform identifiers ("fp32", "int8", ...).
    pub fn name(self) -> &'static str {
        match self {
            DType::F32 => "fp32",
            DType::F16 => "fp16",
            DType::I16 => "int16",
            DType::I8 => "int8",
        }
    }

    /// Parse the short name.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "fp32" => Some(DType::F32),
            "fp16" => Some(DType::F16),
            "int16" => Some(DType::I16),
            "int8" => Some(DType::I8),
            _ => None,
        }
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A tensor shape. Activations are NCHW (rank 4); fully-connected outputs
/// are rank 2 `(N, C)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape(pub Vec<usize>);

impl Shape {
    /// Rank-4 NCHW shape.
    pub fn nchw(n: usize, c: usize, h: usize, w: usize) -> Self {
        Shape(vec![n, c, h, w])
    }

    /// Rank-2 `(N, C)` shape.
    pub fn nc(n: usize, c: usize) -> Self {
        Shape(vec![n, c])
    }

    /// Number of dimensions.
    #[inline]
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements.
    #[inline]
    pub fn numel(&self) -> usize {
        self.0.iter().product()
    }

    /// Batch dimension (first axis); 1 for rank-0 shapes.
    #[inline]
    pub fn batch(&self) -> usize {
        self.0.first().copied().unwrap_or(1)
    }

    /// Channel dimension (second axis); 1 if absent.
    #[inline]
    pub fn channels(&self) -> usize {
        self.0.get(1).copied().unwrap_or(1)
    }

    /// Spatial height; 1 for rank-2 shapes.
    #[inline]
    pub fn height(&self) -> usize {
        self.0.get(2).copied().unwrap_or(1)
    }

    /// Spatial width; 1 for rank-2 shapes.
    #[inline]
    pub fn width(&self) -> usize {
        self.0.get(3).copied().unwrap_or(1)
    }

    /// Bytes occupied at a given precision.
    #[inline]
    pub fn bytes(&self, dt: DType) -> usize {
        self.numel() * dt.bytes()
    }

    /// A copy with the batch dimension replaced.
    pub fn with_batch(&self, n: usize) -> Shape {
        let mut d = self.0.clone();
        if !d.is_empty() {
            d[0] = n;
        }
        Shape(d)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtype_bytes() {
        assert_eq!(DType::F32.bytes(), 4);
        assert_eq!(DType::F16.bytes(), 2);
        assert_eq!(DType::I16.bytes(), 2);
        assert_eq!(DType::I8.bytes(), 1);
    }

    #[test]
    fn dtype_roundtrip_names() {
        for dt in [DType::F32, DType::F16, DType::I16, DType::I8] {
            assert_eq!(DType::parse(dt.name()), Some(dt));
        }
        assert_eq!(DType::parse("bf16"), None);
    }

    #[test]
    fn shape_accessors() {
        let s = Shape::nchw(2, 64, 56, 56);
        assert_eq!(s.rank(), 4);
        assert_eq!(s.batch(), 2);
        assert_eq!(s.channels(), 64);
        assert_eq!(s.height(), 56);
        assert_eq!(s.width(), 56);
        assert_eq!(s.numel(), 2 * 64 * 56 * 56);
        assert_eq!(s.bytes(DType::F16), s.numel() * 2);
    }

    #[test]
    fn shape_nc() {
        let s = Shape::nc(8, 1000);
        assert_eq!(s.rank(), 2);
        assert_eq!(s.numel(), 8000);
        assert_eq!(s.height(), 1);
        assert_eq!(s.width(), 1);
    }

    #[test]
    fn with_batch_replaces_first_dim() {
        let s = Shape::nchw(1, 3, 224, 224).with_batch(16);
        assert_eq!(s.batch(), 16);
        assert_eq!(s.channels(), 3);
    }

    #[test]
    fn display_format() {
        assert_eq!(Shape::nchw(1, 3, 224, 224).to_string(), "(1x3x224x224)");
    }
}
