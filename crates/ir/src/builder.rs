//! Fluent construction of model graphs.
//!
//! The builder appends nodes one at a time, inferring each output shape
//! immediately, so the resulting node vector is a topological order by
//! construction and shape errors surface at the faulty layer.

use crate::attrs::Attrs;
use crate::error::{IrError, IrResult};
use crate::graph::Graph;
use crate::infer::infer_shape;
use crate::node::{Node, NodeId};
use crate::op::OpType;
use crate::shape::Shape;

/// Incrementally builds a [`Graph`].
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    name: String,
    input_shape: Shape,
    nodes: Vec<Node>,
}

impl GraphBuilder {
    /// Start a new graph with the given input tensor shape.
    pub fn new(name: impl Into<String>, input_shape: Shape) -> Self {
        GraphBuilder {
            name: name.into(),
            input_shape,
            nodes: Vec::new(),
        }
    }

    /// Shape produced by an already-added node.
    pub fn out_shape(&self, id: NodeId) -> &Shape {
        &self.nodes[id.index()].out_shape
    }

    /// Channels produced by an already-added node.
    pub fn channels(&self, id: NodeId) -> usize {
        self.out_shape(id).channels()
    }

    /// Number of nodes added so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if no nodes have been added yet.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Append an arbitrary node. All convenience methods funnel here.
    pub fn push(&mut self, op: OpType, attrs: Attrs, inputs: &[NodeId]) -> IrResult<NodeId> {
        let id = NodeId(self.nodes.len() as u32);
        for &inp in inputs {
            if inp.index() >= self.nodes.len() {
                return Err(IrError::BadTopology {
                    node: id.0,
                    input: inp.0,
                });
            }
        }
        let in_shapes: Vec<&Shape> = inputs
            .iter()
            .map(|i| &self.nodes[i.index()].out_shape)
            .collect();
        let out_shape = infer_shape(id.0, op, &attrs, &in_shapes, &self.input_shape)?;
        self.nodes.push(Node {
            op,
            attrs,
            inputs: inputs.to_vec(),
            out_shape,
        });
        Ok(id)
    }

    /// Convolution. `input == None` reads the graph input tensor.
    pub fn conv(
        &mut self,
        input: Option<NodeId>,
        out_channels: u32,
        kernel: u32,
        stride: u32,
        pad: u32,
        groups: u32,
    ) -> IrResult<NodeId> {
        let attrs = Attrs::conv(out_channels, kernel, stride, pad, groups);
        match input {
            Some(i) => self.push(OpType::Conv, attrs, &[i]),
            None => self.push(OpType::Conv, attrs, &[]),
        }
    }

    /// Depthwise convolution: groups == channels of `input`.
    pub fn dwconv(
        &mut self,
        input: NodeId,
        kernel: u32,
        stride: u32,
        pad: u32,
    ) -> IrResult<NodeId> {
        let c = self.channels(input) as u32;
        self.conv(Some(input), c, kernel, stride, pad, c)
    }

    /// ReLU activation.
    pub fn relu(&mut self, input: NodeId) -> IrResult<NodeId> {
        self.push(OpType::Relu, Attrs::default(), &[input])
    }

    /// Clip (ReLU6 with the default bounds).
    pub fn relu6(&mut self, input: NodeId) -> IrResult<NodeId> {
        self.push(OpType::Clip, Attrs::clip(0.0, 6.0), &[input])
    }

    /// Sigmoid activation.
    pub fn sigmoid(&mut self, input: NodeId) -> IrResult<NodeId> {
        self.push(OpType::Sigmoid, Attrs::default(), &[input])
    }

    /// Swish activation: `x * sigmoid(x)` — two nodes that the fusion pass
    /// recognises as the Sigmoid+Mul kernel family.
    pub fn swish(&mut self, input: NodeId) -> IrResult<NodeId> {
        let s = self.sigmoid(input)?;
        self.mul(input, s)
    }

    /// Element-wise addition.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> IrResult<NodeId> {
        self.push(OpType::Add, Attrs::default(), &[a, b])
    }

    /// Element-wise multiplication (broadcasting NC11 gates).
    pub fn mul(&mut self, a: NodeId, b: NodeId) -> IrResult<NodeId> {
        self.push(OpType::Mul, Attrs::default(), &[a, b])
    }

    /// Channel concatenation.
    pub fn concat(&mut self, inputs: &[NodeId]) -> IrResult<NodeId> {
        self.push(OpType::Concat, Attrs::default(), inputs)
    }

    /// Max pooling.
    pub fn maxpool(
        &mut self,
        input: NodeId,
        kernel: u32,
        stride: u32,
        pad: u32,
    ) -> IrResult<NodeId> {
        self.push(OpType::MaxPool, Attrs::pool(kernel, stride, pad), &[input])
    }

    /// Average pooling.
    pub fn avgpool(
        &mut self,
        input: NodeId,
        kernel: u32,
        stride: u32,
        pad: u32,
    ) -> IrResult<NodeId> {
        self.push(
            OpType::AveragePool,
            Attrs::pool(kernel, stride, pad),
            &[input],
        )
    }

    /// Global average pooling.
    pub fn global_avgpool(&mut self, input: NodeId) -> IrResult<NodeId> {
        self.push(OpType::GlobalAveragePool, Attrs::default(), &[input])
    }

    /// Spatial mean with keepdims (squeeze-and-excite pooling).
    pub fn reduce_mean(&mut self, input: NodeId) -> IrResult<NodeId> {
        self.push(OpType::ReduceMean, Attrs::default(), &[input])
    }

    /// Fully-connected layer.
    pub fn gemm(&mut self, input: NodeId, out_features: u32) -> IrResult<NodeId> {
        self.push(OpType::Gemm, Attrs::gemm(out_features), &[input])
    }

    /// Flatten CHW to a single axis.
    pub fn flatten(&mut self, input: NodeId) -> IrResult<NodeId> {
        self.push(OpType::Flatten, Attrs::default(), &[input])
    }

    /// Squeeze-and-excite block: pool -> fc(reduce) -> relu -> fc(expand) ->
    /// sigmoid -> scale. Returns the scaled activation. `reduction` is the
    /// channel reduction ratio (e.g. 4).
    pub fn squeeze_excite(&mut self, input: NodeId, reduction: u32) -> IrResult<NodeId> {
        let c = self.channels(input) as u32;
        let hidden = (c / reduction).max(1);
        let pooled = self.reduce_mean(input)?;
        let fc1 = self.conv(Some(pooled), hidden, 1, 1, 0, 1)?;
        let a1 = self.relu(fc1)?;
        let fc2 = self.conv(Some(a1), c, 1, 1, 0, 1)?;
        let gate = self.sigmoid(fc2)?;
        self.mul(input, gate)
    }

    /// Finish the graph, validating it.
    pub fn finish(&self) -> IrResult<Graph> {
        let g = Graph {
            name: self.name.clone(),
            input_shape: self.input_shape.clone(),
            nodes: self.nodes.clone(),
        };
        crate::validate::validate(&g)?;
        Ok(g)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_chain_builds() {
        let mut b = GraphBuilder::new("chain", Shape::nchw(1, 3, 32, 32));
        let c = b.conv(None, 16, 3, 1, 1, 1).unwrap();
        let r = b.relu(c).unwrap();
        let p = b.maxpool(r, 2, 2, 0).unwrap();
        let g = b.global_avgpool(p).unwrap();
        let f = b.flatten(g).unwrap();
        let _out = b.gemm(f, 10).unwrap();
        let graph = b.finish().unwrap();
        assert_eq!(graph.len(), 6);
        assert_eq!(*graph.output_shape().unwrap(), Shape::nc(1, 10));
    }

    #[test]
    fn forward_reference_rejected() {
        let mut b = GraphBuilder::new("bad", Shape::nchw(1, 3, 8, 8));
        let err = b.relu(NodeId(5)).unwrap_err();
        assert!(matches!(err, IrError::BadTopology { .. }));
    }

    #[test]
    fn swish_emits_sigmoid_mul_pair() {
        let mut b = GraphBuilder::new("swish", Shape::nchw(1, 4, 4, 4));
        let c = b.conv(None, 4, 1, 1, 0, 1).unwrap();
        let s = b.swish(c).unwrap();
        let g = b.finish().unwrap();
        assert_eq!(g.node(s).op, OpType::Mul);
        assert_eq!(g.nodes[1].op, OpType::Sigmoid);
        assert_eq!(g.node(s).inputs, vec![c, NodeId(1)]);
    }

    #[test]
    fn squeeze_excite_shapes() {
        let mut b = GraphBuilder::new("se", Shape::nchw(1, 64, 14, 14));
        let c = b.conv(None, 64, 3, 1, 1, 1).unwrap();
        let se = b.squeeze_excite(c, 4).unwrap();
        let g = b.finish().unwrap();
        assert_eq!(g.node(se).out_shape, Shape::nchw(1, 64, 14, 14));
        // pool, fc1, relu, fc2, sigmoid, mul = 6 extra nodes
        assert_eq!(g.len(), 7);
    }

    #[test]
    fn dwconv_uses_group_count() {
        let mut b = GraphBuilder::new("dw", Shape::nchw(1, 3, 16, 16));
        let c = b.conv(None, 24, 1, 1, 0, 1).unwrap();
        let d = b.dwconv(c, 3, 2, 1).unwrap();
        let g = b.finish().unwrap();
        assert_eq!(g.node(d).attrs.groups, 24);
        assert_eq!(g.node(d).out_shape, Shape::nchw(1, 24, 8, 8));
    }

    #[test]
    fn shape_error_reports_layer() {
        let mut b = GraphBuilder::new("bad", Shape::nchw(1, 3, 4, 4));
        // 11x11 conv cannot fit a 4x4 input without padding.
        let err = b.conv(None, 8, 11, 4, 0, 1).unwrap_err();
        assert!(matches!(err, IrError::ShapeMismatch { .. }));
    }
}
