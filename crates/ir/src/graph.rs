//! The model graph: a DAG of operator nodes kept in topological order.

use crate::error::{IrError, IrResult};
use crate::infer;
use crate::node::{Node, NodeId};
use crate::shape::Shape;
use serde::{Deserialize, Serialize};

/// A neural network model, as the paper treats ONNX files: a directed
/// acyclic graph of operator nodes plus the shape of the single graph input.
///
/// Invariant: `nodes` is a topological order — every node's inputs have
/// smaller indices. [`crate::GraphBuilder`] maintains this by construction
/// and [`crate::validate::validate`] checks it for deserialized graphs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Graph {
    /// Human-readable model name (e.g. `"resnet18-v0042"`).
    pub name: String,
    /// Shape of the graph input tensor (NCHW).
    pub input_shape: Shape,
    /// Operator nodes in topological order.
    pub nodes: Vec<Node>,
}

impl Graph {
    /// Number of operator nodes.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the graph has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Borrow a node.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Iterate `(NodeId, &Node)` in topological order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// Successor lists: `succ[i]` holds the ids of nodes consuming node `i`.
    pub fn successors(&self) -> Vec<Vec<NodeId>> {
        let mut succ = vec![Vec::new(); self.nodes.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            for &inp in &n.inputs {
                succ[inp.index()].push(NodeId(i as u32));
            }
        }
        succ
    }

    /// Nodes with no predecessors (they read the graph input).
    pub fn sources(&self) -> Vec<NodeId> {
        self.iter()
            .filter(|(_, n)| n.inputs.is_empty())
            .map(|(id, _)| id)
            .collect()
    }

    /// Nodes whose output nobody consumes (the graph outputs).
    pub fn sinks(&self) -> Vec<NodeId> {
        let mut consumed = vec![false; self.nodes.len()];
        for n in &self.nodes {
            for &inp in &n.inputs {
                consumed[inp.index()] = true;
            }
        }
        consumed
            .iter()
            .enumerate()
            .filter(|(_, &c)| !c)
            .map(|(i, _)| NodeId(i as u32))
            .collect()
    }

    /// Number of edges in the DAG.
    pub fn num_edges(&self) -> usize {
        self.nodes.iter().map(|n| n.inputs.len()).sum()
    }

    /// Shape of the (single) model output — the out shape of the last sink.
    pub fn output_shape(&self) -> IrResult<&Shape> {
        let sinks = self.sinks();
        sinks
            .last()
            .map(|id| &self.node(*id).out_shape)
            .ok_or(IrError::Empty)
    }

    /// Produce an identical graph with a different batch size; all node
    /// output shapes are re-inferred.
    pub fn rebatch(&self, batch: usize) -> IrResult<Graph> {
        let input_shape = self.input_shape.with_batch(batch);
        let mut nodes: Vec<Node> = Vec::with_capacity(self.nodes.len());
        for (i, n) in self.nodes.iter().enumerate() {
            let in_shapes: Vec<&Shape> = n
                .inputs
                .iter()
                .map(|id| &nodes[id.index()].out_shape)
                .collect();
            let out_shape = infer::infer_shape(i as u32, n.op, &n.attrs, &in_shapes, &input_shape)?;
            let mut m = n.clone();
            m.out_shape = out_shape;
            nodes.push(m);
        }
        Ok(Graph {
            name: self.name.clone(),
            input_shape,
            nodes,
        })
    }

    /// Maximum depth (longest path, in nodes) of the DAG.
    pub fn depth(&self) -> usize {
        let mut depth = vec![0usize; self.nodes.len()];
        let mut max = 0;
        for (i, n) in self.nodes.iter().enumerate() {
            let d = n
                .inputs
                .iter()
                .map(|id| depth[id.index()])
                .max()
                .unwrap_or(0)
                + 1;
            depth[i] = d;
            max = max.max(d);
        }
        max
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn tiny() -> Graph {
        let mut b = GraphBuilder::new("tiny", Shape::nchw(1, 3, 8, 8));
        let c = b.conv(None, 8, 3, 1, 1, 1).unwrap();
        let r = b.relu(c).unwrap();
        let c2 = b.conv(Some(r), 8, 3, 1, 1, 1).unwrap();
        let a = b.add(r, c2).unwrap();
        b.finish().unwrap();
        let mut b2 = GraphBuilder::new("tiny", Shape::nchw(1, 3, 8, 8));
        let c = b2.conv(None, 8, 3, 1, 1, 1).unwrap();
        let r = b2.relu(c).unwrap();
        let c2 = b2.conv(Some(r), 8, 3, 1, 1, 1).unwrap();
        let _a2 = b2.add(r, c2).unwrap();
        let _ = a;
        b2.finish().unwrap()
    }

    #[test]
    fn topology_queries() {
        let g = tiny();
        assert_eq!(g.len(), 4);
        assert_eq!(g.sources(), vec![NodeId(0)]);
        assert_eq!(g.sinks(), vec![NodeId(3)]);
        assert_eq!(g.num_edges(), 4); // conv->relu, relu->conv2, relu->add, conv2->add
        assert_eq!(g.depth(), 4);
    }

    #[test]
    fn successors_consistent_with_inputs() {
        let g = tiny();
        let succ = g.successors();
        // relu (node 1) feeds conv2 and add.
        assert_eq!(succ[1], vec![NodeId(2), NodeId(3)]);
        assert!(succ[3].is_empty());
    }

    #[test]
    fn rebatch_scales_all_shapes() {
        let g = tiny();
        let g8 = g.rebatch(8).unwrap();
        assert_eq!(g8.input_shape.batch(), 8);
        for n in &g8.nodes {
            assert_eq!(n.out_shape.batch(), 8);
        }
        // Other dims untouched.
        assert_eq!(g8.nodes[0].out_shape.channels(), 8);
    }

    #[test]
    fn output_shape_is_last_sink() {
        let g = tiny();
        assert_eq!(*g.output_shape().unwrap(), Shape::nchw(1, 8, 8, 8));
    }
}
