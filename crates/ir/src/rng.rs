//! Deterministic pseudo-random number generation.
//!
//! Every stochastic component in the workspace (model variant sampling,
//! measurement jitter, weight initialization, data splits) draws from this
//! generator so that a single `u64` seed reproduces an entire experiment.
//! The implementation is xoshiro256++ seeded through SplitMix64 — the
//! standard, well-mixed combination — with convenience samplers layered on
//! top. We deliberately avoid the `rand` crate in library code: its stream
//! definitions are not guaranteed stable across versions, while this one is
//! frozen with the repository.

/// A small, fast, deterministic RNG (xoshiro256++).
#[derive(Debug, Clone)]
pub struct Rng64 {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng64 {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng64 { s }
    }

    /// Derive an independent child stream; used to give each worker thread
    /// or model family its own reproducible sequence.
    pub fn fork(&mut self, tag: u64) -> Rng64 {
        Rng64::new(self.next_u64() ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        // 53 high bits -> [0,1) with full double precision.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    #[inline]
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "Rng64::below(0)");
        // Multiply-shift rejection-free mapping; bias is < 2^-64 * n,
        // negligible for the sizes used here.
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Uniform integer in `[lo, hi)`.
    #[inline]
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(hi > lo, "Rng64::range empty");
        lo + self.below(hi - lo)
    }

    /// Bernoulli draw with probability `p` of `true`.
    #[inline]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Standard normal via Box–Muller.
    pub fn normal(&mut self, mean: f64, std: f64) -> f64 {
        // Avoid log(0).
        let u1 = (1.0 - self.uniform()).max(f64::MIN_POSITIVE);
        let u2 = self.uniform();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + std * z
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn choice<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len())]
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }

    /// Sample `k` distinct indices from `0..n` (k <= n), in random order.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "sample_indices k > n");
        let mut idx: Vec<usize> = (0..n).collect();
        // Partial Fisher–Yates: only the first k positions are needed.
        for i in 0..k {
            let j = self.range(i, n);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Rng64::new(42);
        let mut b = Rng64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng64::new(1);
        let mut b = Rng64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut r = Rng64::new(7);
        for _ in 0..10_000 {
            let x = r.uniform();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_mean_near_half() {
        let mut r = Rng64::new(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.uniform()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn below_bounds() {
        let mut r = Rng64::new(9);
        for _ in 0..10_000 {
            assert!(r.below(7) < 7);
        }
    }

    #[test]
    fn below_covers_all_values() {
        let mut r = Rng64::new(11);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            seen[r.below(5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn normal_moments() {
        let mut r = Rng64::new(5);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(2.0, 3.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean = {mean}");
        assert!((var - 9.0).abs() < 0.3, "var = {var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng64::new(13);
        let mut v: Vec<usize> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct() {
        let mut r = Rng64::new(17);
        let s = r.sample_indices(50, 20);
        assert_eq!(s.len(), 20);
        let mut d = s.clone();
        d.sort_unstable();
        d.dedup();
        assert_eq!(d.len(), 20);
        assert!(d.iter().all(|&i| i < 50));
    }

    #[test]
    fn fork_streams_independent() {
        let mut root = Rng64::new(21);
        let mut a = root.fork(1);
        let mut b = root.fork(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }
}
