//! Static cost accounting: FLOPs, parameters and memory access.
//!
//! These are the classic proxies the paper's baselines regress on (FLOPs,
//! FLOPs+MAC) and the four graph-level static features of Eq. 5
//! (batch size, FLOPs, params, memory access). Conventions:
//!
//! * one multiply-accumulate = 2 FLOPs,
//! * memory access = bytes read (inputs + weights) + bytes written (output)
//!   at the given precision,
//! * `Flatten` is a pure copy (no FLOPs), `Concat` moves its inputs.

use crate::graph::Graph;
use crate::node::NodeId;
use crate::op::OpType;
use crate::shape::{DType, Shape};
use serde::{Deserialize, Serialize};

/// Static cost of a single node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodeCost {
    /// Floating-point operations (MAC = 2).
    pub flops: f64,
    /// Learned parameter count.
    pub params: f64,
    /// Bytes read: all input tensors plus weights.
    pub read_bytes: f64,
    /// Bytes written: the output tensor.
    pub write_bytes: f64,
}

impl NodeCost {
    /// Total memory access (read + write).
    #[inline]
    pub fn mem_bytes(&self) -> f64 {
        self.read_bytes + self.write_bytes
    }

    const ZERO: NodeCost = NodeCost {
        flops: 0.0,
        params: 0.0,
        read_bytes: 0.0,
        write_bytes: 0.0,
    };
}

/// Aggregate cost of a whole graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphCost {
    /// Total FLOPs.
    pub flops: f64,
    /// Total parameters.
    pub params: f64,
    /// Total memory access in bytes.
    pub mem_bytes: f64,
    /// Per-node breakdown, indexed by node id.
    pub per_node: Vec<NodeCost>,
}

/// Parameter count of a node given its input channel/feature width.
fn params_of(op: OpType, attrs: &crate::attrs::Attrs, input: &Shape) -> f64 {
    match op {
        OpType::Conv => {
            let cin = input.channels() as f64;
            let cout = attrs.out_channels as f64;
            let g = attrs.groups as f64;
            let k = attrs.kernel[0] as f64 * attrs.kernel[1] as f64;
            cout * (cin / g) * k + cout // weights + bias
        }
        OpType::Gemm => {
            let fin = crate::infer::gemm_in_features(input) as f64;
            let fout = attrs.out_channels as f64;
            fin * fout + fout
        }
        _ => 0.0,
    }
}

/// Cost of node `id` of graph `g` at precision `dt`.
pub fn node_cost(g: &Graph, id: NodeId, dt: DType) -> NodeCost {
    let n = g.node(id);
    let input_shapes: Vec<&Shape> = if n.inputs.is_empty() {
        vec![&g.input_shape]
    } else {
        n.inputs.iter().map(|i| &g.node(*i).out_shape).collect()
    };
    let out = &n.out_shape;
    let out_elems = out.numel() as f64;
    let in_bytes: f64 = input_shapes.iter().map(|s| s.bytes(dt) as f64).sum();
    let out_bytes = out.bytes(dt) as f64;
    let params = params_of(n.op, &n.attrs, input_shapes[0]);
    let weight_bytes = params * dt.bytes() as f64;

    let flops = match n.op {
        OpType::Conv => {
            let cin = input_shapes[0].channels() as f64;
            let gpr = n.attrs.groups as f64;
            let k = n.attrs.kernel[0] as f64 * n.attrs.kernel[1] as f64;
            2.0 * out_elems * (cin / gpr) * k
        }
        OpType::Gemm => {
            let fin = crate::infer::gemm_in_features(input_shapes[0]) as f64;
            2.0 * out_elems * fin
        }
        OpType::Relu | OpType::Clip | OpType::Add | OpType::Mul => out_elems,
        OpType::Sigmoid => 4.0 * out_elems,
        OpType::MaxPool | OpType::AveragePool => {
            out_elems * n.attrs.kernel[0] as f64 * n.attrs.kernel[1] as f64
        }
        OpType::GlobalAveragePool | OpType::ReduceMean => input_shapes[0].numel() as f64,
        OpType::Concat | OpType::Flatten => 0.0,
    };

    NodeCost {
        flops,
        params,
        read_bytes: in_bytes + weight_bytes,
        write_bytes: out_bytes,
    }
}

/// Cost of every node plus totals.
pub fn graph_cost(g: &Graph, dt: DType) -> GraphCost {
    let mut per_node = Vec::with_capacity(g.len());
    let mut total = NodeCost::ZERO;
    for (id, _) in g.iter() {
        let c = node_cost(g, id, dt);
        total.flops += c.flops;
        total.params += c.params;
        total.read_bytes += c.read_bytes;
        total.write_bytes += c.write_bytes;
        per_node.push(c);
    }
    GraphCost {
        flops: total.flops,
        params: total.params,
        mem_bytes: total.mem_bytes(),
        per_node,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    #[test]
    fn conv_flops_match_formula() {
        let mut b = GraphBuilder::new("c", Shape::nchw(1, 16, 32, 32));
        b.conv(None, 32, 3, 1, 1, 1).unwrap();
        let g = b.finish().unwrap();
        let c = node_cost(&g, NodeId(0), DType::F32);
        // 2 * (1*32*32*32) * 16 * 9
        assert_eq!(c.flops, 2.0 * 32.0 * 32.0 * 32.0 * 16.0 * 9.0);
        assert_eq!(c.params, 32.0 * 16.0 * 9.0 + 32.0);
    }

    #[test]
    fn depthwise_divides_by_groups() {
        let mut b = GraphBuilder::new("dw", Shape::nchw(1, 32, 16, 16));
        let c0 = b.conv(None, 32, 1, 1, 0, 1).unwrap();
        b.dwconv(c0, 3, 1, 1).unwrap();
        let g = b.finish().unwrap();
        let dw = node_cost(&g, NodeId(1), DType::F32);
        // out elems * (32/32) * 9 * 2
        assert_eq!(dw.flops, 2.0 * (32.0 * 16.0 * 16.0) * 1.0 * 9.0);
        assert_eq!(dw.params, 32.0 * 1.0 * 9.0 + 32.0);
    }

    #[test]
    fn gemm_cost_real() {
        let mut b = GraphBuilder::new("g", Shape::nchw(2, 3, 28, 28));
        let c0 = b.conv(None, 512, 3, 1, 1, 1).unwrap();
        let p = b.global_avgpool(c0).unwrap();
        let f = b.flatten(p).unwrap();
        b.gemm(f, 1000).unwrap();
        let g = b.finish().unwrap();
        let c = node_cost(&g, NodeId(3), DType::F32);
        assert_eq!(c.flops, 2.0 * 2.0 * 1000.0 * 512.0);
        assert_eq!(c.params, 512.0 * 1000.0 + 1000.0);
    }

    #[test]
    fn dtype_scales_memory_not_flops() {
        let mut b = GraphBuilder::new("c", Shape::nchw(1, 8, 8, 8));
        b.conv(None, 8, 3, 1, 1, 1).unwrap();
        let g = b.finish().unwrap();
        let f32c = node_cost(&g, NodeId(0), DType::F32);
        let i8c = node_cost(&g, NodeId(0), DType::I8);
        assert_eq!(f32c.flops, i8c.flops);
        assert!((f32c.mem_bytes() / i8c.mem_bytes() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn graph_cost_totals_are_sums() {
        let mut b = GraphBuilder::new("net", Shape::nchw(1, 3, 32, 32));
        let c = b.conv(None, 16, 3, 1, 1, 1).unwrap();
        let r = b.relu(c).unwrap();
        let p = b.global_avgpool(r).unwrap();
        let f = b.flatten(p).unwrap();
        b.gemm(f, 10).unwrap();
        let g = b.finish().unwrap();
        let gc = graph_cost(&g, DType::F32);
        let sum_flops: f64 = gc.per_node.iter().map(|c| c.flops).sum();
        assert_eq!(gc.flops, sum_flops);
        assert_eq!(gc.per_node.len(), 5);
        assert!(gc.params > 0.0);
        assert!(gc.mem_bytes > 0.0);
    }

    #[test]
    fn flatten_has_no_flops_but_moves_bytes() {
        let mut b = GraphBuilder::new("f", Shape::nchw(1, 4, 4, 4));
        let c = b.conv(None, 4, 1, 1, 0, 1).unwrap();
        b.flatten(c).unwrap();
        let g = b.finish().unwrap();
        let f = node_cost(&g, NodeId(1), DType::F32);
        assert_eq!(f.flops, 0.0);
        assert_eq!(f.read_bytes, 4.0 * 64.0);
        assert_eq!(f.write_bytes, 4.0 * 64.0);
    }
}
