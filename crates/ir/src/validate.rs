//! Structural validation of deserialized or hand-built graphs.

use crate::error::{IrError, IrResult};
use crate::graph::Graph;
use crate::infer::infer_shape;
use crate::shape::Shape;

/// Check the graph invariants:
///
/// 1. non-empty,
/// 2. the node vector is a topological order (all inputs precede users),
/// 3. input arity matches the operator,
/// 4. every stored output shape matches re-run shape inference.
pub fn validate(g: &Graph) -> IrResult<()> {
    if g.nodes.is_empty() {
        return Err(IrError::Empty);
    }
    for (i, n) in g.nodes.iter().enumerate() {
        let id = i as u32;
        for &inp in &n.inputs {
            if inp.index() >= i {
                return Err(IrError::BadTopology {
                    node: id,
                    input: inp.0,
                });
            }
        }
        let (min, max) = n.op.arity();
        let got = n.inputs.len();
        // Zero inputs means the node reads the graph input — legal exactly
        // when the op's minimum arity is zero; otherwise at least one and
        // within the op's range.
        let arity_ok = if got == 0 {
            min == 0
        } else {
            got >= min.max(1) && got <= max
        };
        if !arity_ok {
            return Err(IrError::Arity {
                node: id,
                op: n.op.name(),
                expected: "per-op arity",
                got,
            });
        }
        let in_shapes: Vec<&Shape> = n
            .inputs
            .iter()
            .map(|x| &g.nodes[x.index()].out_shape)
            .collect();
        let expect = infer_shape(id, n.op, &n.attrs, &in_shapes, &g.input_shape)?;
        if expect != n.out_shape {
            return Err(IrError::ShapeMismatch {
                node: id,
                detail: format!("stored {} != inferred {}", n.out_shape, expect),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::Attrs;
    use crate::builder::GraphBuilder;
    use crate::node::{Node, NodeId};
    use crate::op::OpType;

    fn ok_graph() -> Graph {
        let mut b = GraphBuilder::new("g", Shape::nchw(1, 3, 8, 8));
        let c = b.conv(None, 8, 3, 1, 1, 1).unwrap();
        b.relu(c).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn valid_graph_passes() {
        assert!(validate(&ok_graph()).is_ok());
    }

    #[test]
    fn empty_graph_rejected() {
        let g = Graph {
            name: "e".into(),
            input_shape: Shape::nchw(1, 3, 8, 8),
            nodes: vec![],
        };
        assert_eq!(validate(&g), Err(IrError::Empty));
    }

    #[test]
    fn forward_edge_rejected() {
        let mut g = ok_graph();
        g.nodes[0].inputs = vec![NodeId(1)];
        assert!(matches!(validate(&g), Err(IrError::BadTopology { .. })));
    }

    #[test]
    fn self_loop_rejected() {
        let mut g = ok_graph();
        g.nodes[1].inputs = vec![NodeId(1)];
        assert!(matches!(validate(&g), Err(IrError::BadTopology { .. })));
    }

    #[test]
    fn tampered_shape_rejected() {
        let mut g = ok_graph();
        g.nodes[1].out_shape = Shape::nchw(1, 99, 8, 8);
        assert!(matches!(validate(&g), Err(IrError::ShapeMismatch { .. })));
    }

    #[test]
    fn bad_arity_rejected() {
        let mut g = ok_graph();
        g.nodes.push(Node {
            op: OpType::Add,
            attrs: Attrs::default(),
            inputs: vec![NodeId(1)],
            out_shape: Shape::nchw(1, 8, 8, 8),
        });
        assert!(validate(&g).is_err());
    }

    #[test]
    fn zero_input_unary_reads_graph_input() {
        // A 0-input unary op is legal: it consumes the graph input.
        let g = Graph {
            name: "u".into(),
            input_shape: Shape::nchw(1, 3, 8, 8),
            nodes: vec![Node {
                op: OpType::Relu,
                attrs: Attrs::default(),
                inputs: vec![],
                out_shape: Shape::nchw(1, 3, 8, 8),
            }],
        };
        assert!(validate(&g).is_ok());
    }

    #[test]
    fn zero_input_binary_rejected() {
        // Binary ops (min arity 2) may not fall back to the graph input.
        let g = Graph {
            name: "b".into(),
            input_shape: Shape::nchw(1, 3, 8, 8),
            nodes: vec![Node {
                op: OpType::Add,
                attrs: Attrs::default(),
                inputs: vec![],
                out_shape: Shape::nchw(1, 3, 8, 8),
            }],
        };
        assert!(matches!(
            validate(&g),
            Err(IrError::Arity {
                op: "Add",
                got: 0,
                ..
            })
        ));
    }

    #[test]
    fn unary_with_one_explicit_input_still_valid() {
        // The other leg of the 0-or-1 unary rule: one explicit input.
        assert!(validate(&ok_graph()).is_ok());
        let mut g = ok_graph();
        // Two inputs to a unary op is too many.
        g.nodes[1].inputs = vec![NodeId(0), NodeId(0)];
        assert!(matches!(validate(&g), Err(IrError::Arity { got: 2, .. })));
    }
}
