//! Property-based tests over randomly built graphs.

use nnlqp_ir::{cost, serialize, validate, DType, GraphBuilder, Rng64, Shape};
use proptest::prelude::*;

/// Build a random but always-valid graph from a seed: a chain of conv /
/// activation / pool stages with optional residual links, ending in a
/// classifier head.
fn random_graph(seed: u64) -> nnlqp_ir::Graph {
    let mut r = Rng64::new(seed);
    let sizes = [32usize, 56, 64, 96, 112, 128, 224];
    let hw = *r.choice(&sizes);
    let batch = [1usize, 2, 4, 8][r.below(4)];
    let mut b = GraphBuilder::new(format!("prop-{seed}"), Shape::nchw(batch, 3, hw, hw));
    let mut cur = b.conv(None, 8 + 8 * r.below(8) as u32, 3, 1, 1, 1).unwrap();
    let mut prev_same_shape = None;
    let stages = 2 + r.below(8);
    for _ in 0..stages {
        match r.below(6) {
            0 => {
                let c = b.channels(cur) as u32;
                cur = b.conv(Some(cur), c, 3, 1, 1, 1).unwrap();
            }
            1 => {
                let newc = 8 + 8 * r.below(16) as u32;
                cur = b.conv(Some(cur), newc, 1, 1, 0, 1).unwrap();
            }
            2 => {
                cur = b.relu(cur).unwrap();
            }
            3 => {
                cur = b.relu6(cur).unwrap();
            }
            4 => {
                if b.out_shape(cur).height() >= 2 {
                    cur = b.maxpool(cur, 2, 2, 0).unwrap();
                }
            }
            _ => {
                if let Some(p) = prev_same_shape {
                    if b.out_shape(p) == b.out_shape(cur) && p != cur {
                        cur = b.add(p, cur).unwrap();
                    }
                }
            }
        }
        prev_same_shape = Some(cur);
    }
    let g = b.global_avgpool(cur).unwrap();
    let f = b.flatten(g).unwrap();
    b.gemm(f, 10 + r.below(100) as u32).unwrap();
    b.finish().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn built_graphs_validate(seed in any::<u64>()) {
        let g = random_graph(seed);
        prop_assert!(validate::validate(&g).is_ok());
    }

    #[test]
    fn binary_roundtrip(seed in any::<u64>()) {
        let g = random_graph(seed);
        let g2 = serialize::decode(serialize::encode(&g)).unwrap();
        prop_assert_eq!(g, g2);
    }

    #[test]
    fn json_roundtrip(seed in any::<u64>()) {
        let g = random_graph(seed);
        let g2 = serialize::from_json(&serialize::to_json(&g)).unwrap();
        prop_assert_eq!(g, g2);
    }

    #[test]
    fn costs_are_finite_and_nonnegative(seed in any::<u64>()) {
        let g = random_graph(seed);
        let c = cost::graph_cost(&g, DType::F32);
        prop_assert!(c.flops.is_finite() && c.flops > 0.0);
        prop_assert!(c.params.is_finite() && c.params > 0.0);
        prop_assert!(c.mem_bytes.is_finite() && c.mem_bytes > 0.0);
        for nc in &c.per_node {
            prop_assert!(nc.flops >= 0.0 && nc.params >= 0.0);
            prop_assert!(nc.read_bytes > 0.0 && nc.write_bytes > 0.0);
        }
    }

    #[test]
    fn rebatch_preserves_structure_and_scales_flops(seed in any::<u64>()) {
        let g = random_graph(seed);
        let b0 = g.input_shape.batch() as f64;
        let g2 = g.rebatch(g.input_shape.batch() * 2).unwrap();
        prop_assert_eq!(g.len(), g2.len());
        let c1 = cost::graph_cost(&g, DType::F32);
        let c2 = cost::graph_cost(&g2, DType::F32);
        // FLOPs scale linearly with batch; params do not change.
        prop_assert!((c2.flops / c1.flops - (b0 * 2.0) / b0).abs() < 1e-9);
        prop_assert_eq!(c1.params, c2.params);
    }

    #[test]
    fn depth_le_len_and_topo_edges(seed in any::<u64>()) {
        let g = random_graph(seed);
        prop_assert!(g.depth() <= g.len());
        for (id, n) in g.iter() {
            for inp in &n.inputs {
                prop_assert!(inp.index() < id.index());
            }
        }
    }

    #[test]
    fn int8_memory_is_quarter_of_f32(seed in any::<u64>()) {
        let g = random_graph(seed);
        let a = cost::graph_cost(&g, DType::F32);
        let b = cost::graph_cost(&g, DType::I8);
        prop_assert!((a.mem_bytes / b.mem_bytes - 4.0).abs() < 1e-9);
    }
}
