//! An OFA-style supernet over MobileNet-like inverted-residual subnets
//! (Cai et al., 2020): elastic depth, kernel size and expansion ratio per
//! stage.

use nnlqp_ir::{Graph, GraphBuilder, IrResult, Rng64, Shape};

/// Number of elastic stages.
pub const NUM_STAGES: usize = 5;

/// Per-stage output channels (fixed, like OFA's base widths).
pub const STAGE_CHANNELS: [u32; NUM_STAGES] = [24, 40, 80, 112, 160];

/// Per-stage first-block stride.
pub const STAGE_STRIDES: [u32; NUM_STAGES] = [2, 2, 2, 1, 2];

/// Elastic choices.
pub const DEPTH_CHOICES: [u32; 3] = [2, 3, 4];
/// Kernel choices.
pub const KERNEL_CHOICES: [u32; 2] = [3, 5];
/// Expansion-ratio choices.
pub const EXPAND_CHOICES: [u32; 3] = [3, 4, 6];

/// One subnet: per-stage (depth, kernel, expand).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SubnetConfig {
    /// Stage settings.
    pub stages: [(u32, u32, u32); NUM_STAGES],
}

impl SubnetConfig {
    /// Uniformly sample a subnet.
    pub fn sample(r: &mut Rng64) -> SubnetConfig {
        SubnetConfig {
            stages: [(); NUM_STAGES].map(|_| {
                (
                    *r.choice(&DEPTH_CHOICES),
                    *r.choice(&KERNEL_CHOICES),
                    *r.choice(&EXPAND_CHOICES),
                )
            }),
        }
    }

    /// Stable 64-bit identity (drives the accuracy surrogate's noise).
    pub fn id(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for (d, k, e) in self.stages {
            for v in [d, k, e] {
                h ^= v as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    }
}

/// The supernet: fixed stem/head geometry around the elastic stages.
#[derive(Debug, Clone)]
pub struct Supernet {
    /// Input resolution.
    pub resolution: usize,
    /// Classifier classes.
    pub classes: u32,
}

impl Default for Supernet {
    fn default() -> Self {
        Supernet {
            resolution: 224,
            classes: 1000,
        }
    }
}

impl Supernet {
    /// Materialize a subnet as a full model graph.
    pub fn subnet_graph(&self, cfg: &SubnetConfig, name: &str) -> IrResult<Graph> {
        let mut b = GraphBuilder::new(name, Shape::nchw(1, 3, self.resolution, self.resolution));
        let stem = b.conv(None, 16, 3, 2, 1, 1)?;
        let mut cur = b.relu6(stem)?;
        for (si, &(depth, kernel, expand)) in cfg.stages.iter().enumerate() {
            for i in 0..depth {
                let stride = if i == 0 { STAGE_STRIDES[si] } else { 1 };
                cur = nnlqp_models::mobilenet_v2::inverted_residual(
                    &mut b,
                    cur,
                    STAGE_CHANNELS[si],
                    stride,
                    expand,
                    kernel,
                )?;
            }
        }
        let head = b.conv(Some(cur), 960, 1, 1, 0, 1)?;
        let hr = b.relu6(head)?;
        let gp = b.global_avgpool(hr)?;
        let fl = b.flatten(gp)?;
        b.gemm(fl, self.classes)?;
        b.finish()
    }

    /// Materialize ONE block of a stage in isolation (for the lookup-table
    /// latency estimator): the block sees the same input geometry it has
    /// inside the full network.
    pub fn block_graph(
        &self,
        stage: usize,
        block_idx: u32,
        kernel: u32,
        expand: u32,
        name: &str,
    ) -> IrResult<Graph> {
        // Input geometry entering `stage` at `block_idx`.
        let mut hw = self.resolution / 2; // after stem
        let mut c_in = 16u32;
        for s in 0..stage {
            hw /= STAGE_STRIDES[s] as usize;
            c_in = STAGE_CHANNELS[s];
        }
        let stride = if block_idx == 0 {
            STAGE_STRIDES[stage]
        } else {
            1
        };
        let (hw, c_in) = if block_idx == 0 {
            (hw, c_in)
        } else {
            (hw / STAGE_STRIDES[stage] as usize, STAGE_CHANNELS[stage])
        };
        // The isolated block body, as a profiling sweep would time it:
        // the expansion conv reads the input tensor directly, and the
        // residual add is *not* measurable in isolation — one of the
        // systematic context errors that make lookup tables drift from
        // in-network latency.
        let mut b = GraphBuilder::new(name, Shape::nchw(1, c_in as usize, hw, hw));
        let hidden = c_in * expand;
        let e = b.conv(None, hidden, 1, 1, 0, 1)?;
        let er = b.relu6(e)?;
        let dw = b.conv(Some(er), hidden, kernel, stride, (kernel - 1) / 2, hidden)?;
        let dr = b.relu6(dw)?;
        b.conv(Some(dr), STAGE_CHANNELS[stage], 1, 1, 0, 1)?;
        b.finish()
    }

    /// Stem+head fixed-cost graph (for the lookup table's constant term).
    pub fn fixed_graph(&self) -> IrResult<Graph> {
        let mut b = GraphBuilder::new(
            "ofa-fixed",
            Shape::nchw(1, 3, self.resolution, self.resolution),
        );
        let stem = b.conv(None, 16, 3, 2, 1, 1)?;
        let sr = b.relu6(stem)?;
        let proj = b.conv(Some(sr), 16, 1, 1, 0, 1)?;
        let gp = b.global_avgpool(proj)?;
        let fl = b.flatten(gp)?;
        b.gemm(fl, self.classes)?;
        b.finish()
    }
}

/// Helper kept out of `SubnetConfig` so builders stay in one place: the
/// total number of blocks of a subnet.
pub fn total_blocks(cfg: &SubnetConfig) -> u32 {
    cfg.stages.iter().map(|s| s.0).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnlqp_ir::validate::validate;

    #[test]
    fn sampled_subnets_build() {
        let sn = Supernet::default();
        let mut r = Rng64::new(1);
        for i in 0..20 {
            let cfg = SubnetConfig::sample(&mut r);
            let g = sn.subnet_graph(&cfg, &format!("sub{i}")).unwrap();
            assert!(validate(&g).is_ok());
        }
    }

    #[test]
    fn subnet_ids_distinguish_configs() {
        let mut r = Rng64::new(2);
        let a = SubnetConfig::sample(&mut r);
        let b = SubnetConfig::sample(&mut r);
        if a != b {
            assert_ne!(a.id(), b.id());
        }
        assert_eq!(a.id(), a.id());
    }

    #[test]
    fn deeper_subnet_has_more_flops() {
        let sn = Supernet::default();
        let small = SubnetConfig {
            stages: [(2, 3, 3); NUM_STAGES],
        };
        let big = SubnetConfig {
            stages: [(4, 5, 6); NUM_STAGES],
        };
        let gs = sn.subnet_graph(&small, "s").unwrap();
        let gb = sn.subnet_graph(&big, "b").unwrap();
        let fs = nnlqp_ir::cost::graph_cost(&gs, nnlqp_ir::DType::F32).flops;
        let fb = nnlqp_ir::cost::graph_cost(&gb, nnlqp_ir::DType::F32).flops;
        assert!(fb > 1.5 * fs);
    }

    #[test]
    fn block_graphs_have_in_situ_geometry() {
        let sn = Supernet::default();
        // Stage 2, non-first block: input 80 channels at 14x14.
        let g = sn.block_graph(2, 1, 3, 6, "blk").unwrap();
        assert_eq!(g.input_shape, Shape::nchw(1, 80, 14, 14));
        assert!(validate(&g).is_ok());
        // Stage 0 first block: input 16ch at 112.
        let g0 = sn.block_graph(0, 0, 5, 4, "blk0").unwrap();
        assert_eq!(g0.input_shape, Shape::nchw(1, 16, 112, 112));
    }

    #[test]
    fn total_blocks_sums_depths() {
        let cfg = SubnetConfig {
            stages: [(2, 3, 3), (3, 3, 3), (4, 3, 3), (2, 3, 3), (3, 3, 3)],
        };
        assert_eq!(total_blocks(&cfg), 14);
    }
}
