//! Pareto-front extraction over (latency, accuracy) points.

/// One evaluated subnet.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParetoPoint {
    /// Index into the candidate population.
    pub idx: usize,
    /// Latency estimate used for selection (ms).
    pub latency_ms: f64,
    /// Accuracy (percent).
    pub accuracy: f64,
}

/// Extract the Pareto front: points not dominated in
/// (lower latency, higher accuracy). Returned sorted by latency.
pub fn pareto_front(points: &[ParetoPoint]) -> Vec<ParetoPoint> {
    let mut sorted: Vec<ParetoPoint> = points.to_vec();
    sorted.sort_by(|a, b| {
        a.latency_ms
            .partial_cmp(&b.latency_ms)
            .expect("finite latency")
            .then(
                b.accuracy
                    .partial_cmp(&a.accuracy)
                    .expect("finite accuracy"),
            )
    });
    let mut front = Vec::new();
    let mut best_acc = f64::NEG_INFINITY;
    for p in sorted {
        if p.accuracy > best_acc {
            best_acc = p.accuracy;
            front.push(p);
        }
    }
    front
}

/// Best accuracy among points whose *true* latency is within `budget_ms`,
/// when candidates are ranked by `estimate`: pick the front of the
/// estimated metric, keep those whose estimate fits the budget, and report
/// the best true accuracy achieved. This is the "accuracy gain of the
/// pareto front models" comparison of Fig. 9.
pub fn best_accuracy_under_budget(
    estimates: &[f64],
    true_latency: &[f64],
    accuracy: &[f64],
    budget_ms: f64,
) -> Option<f64> {
    assert_eq!(estimates.len(), true_latency.len());
    assert_eq!(estimates.len(), accuracy.len());
    let points: Vec<ParetoPoint> = estimates
        .iter()
        .enumerate()
        .map(|(i, &e)| ParetoPoint {
            idx: i,
            latency_ms: e,
            accuracy: accuracy[i],
        })
        .collect();
    pareto_front(&points)
        .into_iter()
        .filter(|p| true_latency[p.idx] <= budget_ms)
        .map(|p| p.accuracy)
        .fold(None, |acc, a| Some(acc.map_or(a, |m: f64| m.max(a))))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(idx: usize, l: f64, a: f64) -> ParetoPoint {
        ParetoPoint {
            idx,
            latency_ms: l,
            accuracy: a,
        }
    }

    #[test]
    fn dominated_points_removed() {
        let pts = vec![
            p(0, 1.0, 70.0),
            p(1, 2.0, 69.0),
            p(2, 3.0, 75.0),
            p(3, 2.5, 72.0),
        ];
        let front = pareto_front(&pts);
        let ids: Vec<usize> = front.iter().map(|q| q.idx).collect();
        assert_eq!(ids, vec![0, 3, 2]);
    }

    #[test]
    fn single_point_is_its_own_front() {
        let front = pareto_front(&[p(0, 1.0, 50.0)]);
        assert_eq!(front.len(), 1);
    }

    #[test]
    fn equal_latency_keeps_best_accuracy() {
        let front = pareto_front(&[p(0, 1.0, 70.0), p(1, 1.0, 72.0)]);
        assert_eq!(front.len(), 1);
        assert_eq!(front[0].idx, 1);
    }

    #[test]
    fn budget_selection_uses_true_latency() {
        // Estimate says idx 1 is cheap, but its true latency busts the
        // budget; the achievable accuracy falls back to idx 0.
        let est = vec![1.0, 0.5];
        let true_lat = vec![1.0, 10.0];
        let acc = vec![70.0, 65.0];
        let best = best_accuracy_under_budget(&est, &true_lat, &acc, 2.0).unwrap();
        assert_eq!(best, 70.0);
    }

    #[test]
    fn empty_budget_returns_none() {
        let best = best_accuracy_under_budget(&[1.0], &[5.0], &[70.0], 2.0);
        assert_eq!(best, None);
    }
}
