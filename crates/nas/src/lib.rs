//! # nnlqp-nas
//!
//! The hardware-aware NAS verification harness (paper §8.7, Fig. 9,
//! Table 7): an OFA-style supernet to sample subnets from, a synthetic
//! accuracy surrogate, latency estimators of four kinds (FLOPs proxy,
//! per-block lookup table, NNLP prediction, true measurement), Pareto
//! front extraction and rank-correlation analysis.
//!
//! Substitution note: the paper samples 1,000 subnets from a trained
//! Once-for-All supernet and reads ImageNet accuracy from its predictor.
//! No trained supernet exists offline, so accuracy comes from a smooth
//! capacity-law surrogate (saturating in FLOPs, with depth/width/kernel
//! bonuses and seeded architecture noise). The latency side — the paper's
//! actual subject — is exercised unchanged.
//!
//! The crate also hosts the §7.3 "new task" study ([`accpredict`]): the
//! latency predictor's embed/head machinery, reached through the
//! `Predictor` trait, retargeted at NAS-Bench-201 cell-accuracy
//! regression with both encoder architectures.

pub mod accpredict;
pub mod accuracy;
pub mod cost;
pub mod lookup;
pub mod pareto;
pub mod supernet;

pub use accpredict::{accuracy_benchmark, cell_accuracy_surrogate, AccuracyEval};
pub use accuracy::accuracy_surrogate;
pub use cost::{table7_rows, CostRow};
pub use lookup::LookupTable;
pub use pareto::{pareto_front, ParetoPoint};
pub use supernet::{SubnetConfig, Supernet};
