//! Architecture-accuracy prediction through the shared [`Predictor`]
//! trait (paper §7.3, "new task" transfer).
//!
//! The paper's §7.3 experiment retargets the latency predictor at a
//! different regression task — predicting NAS-Bench-201 cell accuracy
//! from the same unified graph embedding — to show the representation is
//! task-agnostic. This module reproduces that study against both encoder
//! architectures behind the [`Predictor`] trait: the graph goes in, a
//! single "accuracy head" comes out, and nothing about the embed/head
//! machinery changes.
//!
//! Substitution note: no trained NAS-Bench-201 tables ship offline, so
//! ground truth comes from a deterministic capacity-law surrogate
//! ([`cell_accuracy_surrogate`]) in the same spirit as the OFA surrogate
//! in [`crate::accuracy`]: accuracy saturates in FLOPs, structure shifts
//! it beyond raw compute, and per-architecture seeded noise keeps equal-
//! FLOPs cells apart.

use nnlqp_hash::graph_hash;
use nnlqp_ir::cost::graph_cost;
use nnlqp_ir::{DType, Graph, Rng64};
use nnlqp_models::{generate_family, ModelFamily};
use nnlqp_predict::{
    acc_at, extract_features, mape, Dataset, NnlpConfig, NnlpModel, Predictor, PredictorKind,
    TrainConfig, TransformerConfig, TransformerModel,
};

/// CIFAR-10 top-1 accuracy (percent) surrogate for a NAS-Bench-201 cell
/// stack. Deterministic per graph: a saturating capacity law in FLOPs
/// spanning ~12% for the generator's smallest cells (degenerate stacks
/// barely above chance) to ~83% for its largest, a small depth bonus,
/// and seeded per-architecture noise keyed on the canonical graph hash.
/// The wide relative spread keeps the task discriminative: a constant
/// predictor is badly wrong somewhere, so beating it requires actually
/// reading the graph.
pub fn cell_accuracy_surrogate(graph: &Graph) -> f64 {
    let cost = graph_cost(graph, DType::F32);
    let gflops = cost.flops / 1e9;
    let base = 94.0 * (1.0 - (-gflops / 0.25).exp()).powf(0.8);
    // Deeper stacks squeeze a little extra out of equal compute.
    let depth_bonus = 0.02 * graph.nodes.len() as f64;
    let mut rng = Rng64::new(graph_hash(graph));
    let noise = rng.normal(0.0, 0.5);
    (base + depth_bonus + noise).clamp(10.0, 95.0)
}

/// Result of one accuracy-prediction run: the trait-driven model against
/// the mean-predictor baseline on a held-out cell set.
#[derive(Debug, Clone)]
pub struct AccuracyEval {
    /// Which encoder ran.
    pub arch: PredictorKind,
    /// Training / evaluation set sizes.
    pub train_cells: usize,
    /// Held-out cells scored.
    pub eval_cells: usize,
    /// Model MAPE on held-out cells (percent).
    pub mape_pct: f64,
    /// Model Acc(10%) on held-out cells (percent).
    pub acc10_pct: f64,
    /// Model Acc(5%) on held-out cells (percent).
    pub acc5_pct: f64,
    /// Mean-predictor baseline MAPE (percent).
    pub baseline_mape_pct: f64,
    /// Mean-predictor baseline Acc(10%) (percent).
    pub baseline_acc10_pct: f64,
}

/// Fresh single-head model of the requested architecture, sized like the
/// facade's quick-training profile (hidden 32, two backbone layers).
fn fresh_accuracy_model(
    arch: PredictorKind,
    norm: nnlqp_predict::Normalizer,
    seed: u64,
) -> Box<dyn Predictor> {
    let mut rng = Rng64::new(seed);
    match arch {
        PredictorKind::Sage => Box::new(NnlpModel::new(
            NnlpConfig {
                hidden: 32,
                head_hidden: 32,
                gnn_layers: 2,
                n_heads: 1,
                dropout: 0.05,
                ..Default::default()
            },
            norm,
            &mut rng,
        )),
        PredictorKind::Transformer => Box::new(TransformerModel::new(
            TransformerConfig {
                d_model: 32,
                layers: 2,
                attn_heads: 4,
                head_hidden: 32,
                n_heads: 1,
                dropout: 0.05,
                ..Default::default()
            },
            norm,
            &mut rng,
        )),
        other => unimplemented!("no accuracy-model constructor for architecture {other}"),
    }
}

/// Train an accuracy predictor of the given architecture on synthetic
/// NAS-Bench-201 cells and score it on a held-out set, next to a
/// mean-of-training-targets baseline. Fully deterministic in `seed`.
pub fn accuracy_benchmark(
    arch: PredictorKind,
    n_train: usize,
    n_eval: usize,
    epochs: usize,
    seed: u64,
) -> AccuracyEval {
    assert!(n_train > 0 && n_eval > 0, "empty cell sets");
    let cells = generate_family(ModelFamily::NasBench201, n_train + n_eval, seed);
    let labelled: Vec<(&Graph, f64)> = cells
        .iter()
        .map(|m| (&m.graph, cell_accuracy_surrogate(&m.graph)))
        .collect();
    let (train_set, eval_set) = labelled.split_at(n_train);

    // Accuracy percent rides the same ln(1+x) target transform latency
    // does; the head's expm1 maps predictions back to percent.
    let train_entries: Vec<(&Graph, f64, usize)> =
        train_set.iter().map(|&(g, a)| (g, a, 0)).collect();
    let ds = Dataset::build(&train_entries);

    let mut model = fresh_accuracy_model(arch, ds.norm.clone(), seed ^ 0xacc);
    // Accuracy targets sit much higher in ln(1+x) space (~4.5) than the
    // latencies the §8.1 default lr is tuned for; a hotter rate lets the
    // output bias cover that distance in a short run.
    model.train_in_place(
        &ds.samples,
        TrainConfig {
            epochs,
            lr: 1e-2,
            seed,
            ..Default::default()
        },
    );

    let preds: Vec<f64> = eval_set
        .iter()
        .map(|(g, _)| model.predict_ms(&extract_features(g), 0))
        .collect();
    let truths: Vec<f64> = eval_set.iter().map(|&(_, a)| a).collect();

    let mean_acc = train_set.iter().map(|&(_, a)| a).sum::<f64>() / n_train as f64;
    let baseline: Vec<f64> = vec![mean_acc; n_eval];

    AccuracyEval {
        arch,
        train_cells: n_train,
        eval_cells: n_eval,
        mape_pct: mape(&preds, &truths),
        acc10_pct: acc_at(&preds, &truths, 0.10),
        acc5_pct: acc_at(&preds, &truths, 0.05),
        baseline_mape_pct: mape(&baseline, &truths),
        baseline_acc10_pct: acc_at(&baseline, &truths, 0.10),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn surrogate_is_deterministic_and_bounded() {
        let cells = generate_family(ModelFamily::NasBench201, 8, 11);
        for m in &cells {
            let a = cell_accuracy_surrogate(&m.graph);
            assert_eq!(a, cell_accuracy_surrogate(&m.graph));
            assert!((10.0..=95.0).contains(&a), "{a}");
        }
    }

    #[test]
    fn surrogate_spreads_across_cells() {
        let cells = generate_family(ModelFamily::NasBench201, 16, 12);
        let accs: Vec<f64> = cells
            .iter()
            .map(|m| cell_accuracy_surrogate(&m.graph))
            .collect();
        let min = accs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = accs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        assert!(max - min > 5.0, "degenerate spread {min}..{max}");
    }

    #[test]
    fn both_encoders_beat_the_mean_baseline() {
        for &arch in PredictorKind::all() {
            let eval = accuracy_benchmark(arch, 48, 24, 100, 5);
            assert_eq!(eval.arch, arch);
            assert!(
                eval.mape_pct < eval.baseline_mape_pct,
                "{arch}: model MAPE {:.2}% !< baseline {:.2}%",
                eval.mape_pct,
                eval.baseline_mape_pct
            );
            assert!(
                eval.acc10_pct >= eval.baseline_acc10_pct,
                "{arch}: model Acc(10%) {:.1}% < baseline {:.1}%",
                eval.acc10_pct,
                eval.baseline_acc10_pct
            );
        }
    }

    #[test]
    fn benchmark_is_deterministic_in_seed() {
        let a = accuracy_benchmark(PredictorKind::Sage, 12, 6, 4, 9);
        let b = accuracy_benchmark(PredictorKind::Sage, 12, 6, 4, 9);
        assert_eq!(a.mape_pct, b.mape_pct);
        assert_eq!(a.acc10_pct, b.acc10_pct);
    }
}
