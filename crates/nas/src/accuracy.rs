//! Synthetic ImageNet-accuracy surrogate for OFA subnets.
//!
//! A saturating capacity law with per-architecture structure bonuses and
//! seeded noise: accuracy rises with FLOPs but with diminishing returns,
//! deeper/wider choices add a little beyond raw FLOPs, and two subnets of
//! equal FLOPs differ by noise — so the accuracy-latency Pareto front is
//! non-trivial, as with a real trained supernet.

use crate::supernet::SubnetConfig;
use nnlqp_ir::Rng64;

/// Top-1 accuracy (percent) of a subnet with `gflops` total compute.
pub fn accuracy_surrogate(cfg: &SubnetConfig, gflops: f64) -> f64 {
    // Saturating capacity law: ~63% at 0.1 GFLOPs, ~77% at 0.6 GFLOPs.
    let base = 78.5 * (1.0 - (-gflops / 0.22).exp()).powf(0.35);
    // Structure bonuses beyond FLOPs: kernel-5 stages see more context;
    // depth helps more than expansion at equal compute.
    let mut bonus = 0.0;
    for &(depth, kernel, expand) in &cfg.stages {
        if kernel == 5 {
            bonus += 0.08;
        }
        bonus += 0.05 * (depth as f64 - 2.0);
        bonus -= 0.02 * (expand as f64 - 3.0);
    }
    // Seeded architecture noise (training variance).
    let mut rng = Rng64::new(cfg.id());
    let noise = rng.normal(0.0, 0.15);
    (base + bonus + noise).clamp(40.0, 82.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::supernet::{SubnetConfig, NUM_STAGES};

    fn cfg(depth: u32, kernel: u32, expand: u32) -> SubnetConfig {
        SubnetConfig {
            stages: [(depth, kernel, expand); NUM_STAGES],
        }
    }

    #[test]
    fn monotone_in_flops_on_average() {
        let small = accuracy_surrogate(&cfg(2, 3, 3), 0.15);
        let big = accuracy_surrogate(&cfg(4, 5, 6), 0.60);
        assert!(big > small, "{big} !> {small}");
    }

    #[test]
    fn diminishing_returns() {
        let a = accuracy_surrogate(&cfg(2, 3, 3), 0.1);
        let b = accuracy_surrogate(&cfg(2, 3, 3), 0.2);
        let c = accuracy_surrogate(&cfg(2, 3, 3), 0.6);
        let d = accuracy_surrogate(&cfg(2, 3, 3), 0.7);
        assert!(
            (b - a) > (d - c),
            "early gain {} late gain {}",
            b - a,
            d - c
        );
    }

    #[test]
    fn deterministic_per_architecture() {
        let c = cfg(3, 5, 4);
        assert_eq!(accuracy_surrogate(&c, 0.3), accuracy_surrogate(&c, 0.3));
    }

    #[test]
    fn distinct_architectures_distinct_noise() {
        let a = accuracy_surrogate(&cfg(3, 3, 4), 0.3);
        let b = accuracy_surrogate(&cfg(3, 5, 4), 0.3);
        assert_ne!(a, b);
    }

    #[test]
    fn bounded() {
        for g in [0.01, 0.1, 1.0, 10.0] {
            let a = accuracy_surrogate(&cfg(4, 5, 6), g);
            assert!((40.0..=82.0).contains(&a));
        }
    }
}
