//! The lookup-table latency estimator most NAS methods use (§2): measure
//! each candidate block once in isolation, then estimate a subnet's
//! latency as `fixed + sum(block latencies)`. Fast, but blind to fusion
//! and overlap across block boundaries — which is why it loses to a
//! learned predictor at tight latency budgets (Fig. 9).

use crate::supernet::{SubnetConfig, Supernet, EXPAND_CHOICES, KERNEL_CHOICES, NUM_STAGES};
use nnlqp_sim::{measure, PlatformSpec};
use std::collections::HashMap;

/// Key: (stage, first_block?, kernel, expand).
type BlockKey = (usize, bool, u32, u32);

/// A populated per-block latency table.
#[derive(Debug, Clone)]
pub struct LookupTable {
    blocks: HashMap<BlockKey, f64>,
    fixed_ms: f64,
}

/// Timed runs per table entry. Real lookup tables are built from a quick
/// benchmarking sweep, so each entry carries measurement noise.
const ENTRY_REPS: usize = 5;

impl LookupTable {
    /// Measure every block choice once on `platform` (with measurement
    /// jitter, like a real profiling sweep).
    pub fn build(sn: &Supernet, platform: &PlatformSpec) -> LookupTable {
        Self::build_seeded(sn, platform, 0x10_07)
    }

    /// [`LookupTable::build`] with an explicit jitter seed.
    pub fn build_seeded(sn: &Supernet, platform: &PlatformSpec, seed: u64) -> LookupTable {
        let mut blocks = HashMap::new();
        let mut entry_seed = seed;
        for stage in 0..NUM_STAGES {
            for first in [true, false] {
                for &k in &KERNEL_CHOICES {
                    for &e in &EXPAND_CHOICES {
                        let idx = if first { 0 } else { 1 };
                        let g = sn
                            .block_graph(stage, idx, k, e, "lut-block")
                            .expect("block geometry is valid");
                        entry_seed = entry_seed.wrapping_add(0x9E37_79B9);
                        let entry = measure(&g, platform, ENTRY_REPS, entry_seed).mean_ms;
                        blocks.insert((stage, first, k, e), entry);
                    }
                }
            }
        }
        let fixed = sn.fixed_graph().expect("fixed graph builds");
        LookupTable {
            blocks,
            fixed_ms: measure(&fixed, platform, ENTRY_REPS, seed).mean_ms,
        }
    }

    /// Estimate a subnet's latency from the table.
    pub fn estimate_ms(&self, cfg: &SubnetConfig) -> f64 {
        let mut total = self.fixed_ms;
        for (stage, &(depth, kernel, expand)) in cfg.stages.iter().enumerate() {
            for i in 0..depth {
                let key = (stage, i == 0, kernel, expand);
                total += self.blocks[&key];
            }
        }
        total
    }

    /// Number of table entries.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True when no entries exist (never, after `build`).
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnlqp_ir::Rng64;

    #[test]
    fn table_covers_all_choices() {
        let sn = Supernet::default();
        let p = PlatformSpec::by_name("gpu-T4-trt7.1-fp32").unwrap();
        let lut = LookupTable::build(&sn, &p);
        assert_eq!(lut.len(), NUM_STAGES * 2 * 2 * 3);
        assert!(lut.fixed_ms > 0.0);
    }

    #[test]
    fn estimates_correlate_but_carry_systematic_context_bias() {
        let sn = Supernet::default();
        let p = PlatformSpec::by_name("gpu-T4-trt7.1-fp32").unwrap();
        let lut = LookupTable::build(&sn, &p);
        let mut r = Rng64::new(5);
        let mut est = Vec::new();
        let mut truth = Vec::new();
        for i in 0..20 {
            let cfg = SubnetConfig::sample(&mut r);
            let g = sn.subnet_graph(&cfg, &format!("s{i}")).unwrap();
            est.push(lut.estimate_ms(&cfg));
            truth.push(nnlqp_sim::exec::model_latency_ms(&g, &p));
        }
        // Strong rank correlation...
        let tau = nnlqp_predict::kendall_tau(&est, &truth);
        assert!(tau > 0.6, "tau {tau}");
        // ...but absolute estimates carry a systematic context bias
        // (isolated blocks miss residual adds and in-network reuse), so
        // nearly all errors share one sign and are non-trivial.
        let over = est.iter().zip(&truth).filter(|(e, t)| e > t).count();
        assert!(
            over >= 15 || over <= 5,
            "expected a systematic bias, got {over}/20 over-estimates"
        );
        let mean_abs_rel: f64 = est
            .iter()
            .zip(&truth)
            .map(|(e, t)| ((e - t) / t).abs())
            .sum::<f64>()
            / truth.len() as f64;
        // ~1% absolute bias is enough to scramble rankings inside a tight
        // latency band (Fig. 9's budget slice), while keeping the global
        // ordering strong.
        assert!(
            mean_abs_rel > 0.008,
            "lookup suspiciously exact: {mean_abs_rel}"
        );
    }
}
