//! The Table 7 cost model: total wall time to evaluate a NAS candidate
//! pool via pure measurement, prediction with a measurement-trained
//! predictor, or prediction with a transfer-learned predictor.
//!
//! The paper expresses everything in units of `T` (one prediction) with
//! one true measurement costing `1000 T`.

/// One row of Table 7.
#[derive(Debug, Clone, PartialEq)]
pub struct CostRow {
    /// Strategy label.
    pub label: &'static str,
    /// Models measured on hardware.
    pub measured: u64,
    /// Models evaluated by prediction.
    pub predicted: u64,
    /// Distinct candidate models assessed.
    pub test_models: u64,
    /// Total cost in units of T.
    pub cost_t: u64,
    /// Speedup relative to the first row.
    pub speedup: f64,
}

/// Cost of one true measurement, in prediction units (paper: 1000 T).
pub const MEASUREMENT_COST_T: u64 = 1000;

/// Build the three rows of Table 7: `measure_budget` models measured for
/// the baseline, `predict_pool` candidates scored by the predictor, and
/// `transfer_samples` measurements sufficing after transfer learning.
pub fn table7_rows(measure_budget: u64, predict_pool: u64, transfer_samples: u64) -> Vec<CostRow> {
    let base_cost = measure_budget * MEASUREMENT_COST_T;
    let rows = vec![
        CostRow {
            label: "latency measurement",
            measured: measure_budget,
            predicted: 0,
            test_models: measure_budget,
            cost_t: base_cost,
            speedup: 1.0,
        },
        CostRow {
            label: "latency prediction without transfer",
            measured: measure_budget,
            predicted: predict_pool,
            test_models: predict_pool,
            cost_t: base_cost + predict_pool,
            speedup: base_cost as f64 / (base_cost + predict_pool) as f64,
        },
        CostRow {
            label: "latency prediction with transfer",
            measured: transfer_samples,
            predicted: predict_pool,
            test_models: predict_pool,
            cost_t: transfer_samples * MEASUREMENT_COST_T + predict_pool,
            speedup: base_cost as f64
                / (transfer_samples * MEASUREMENT_COST_T + predict_pool) as f64,
        },
    ];
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configuration_matches_published_speedups() {
        // Paper: 1k measured baseline, 10k predicted pool, 50 transfer
        // samples -> speedups 1x, 0.99x, 16.7x.
        let rows = table7_rows(1_000, 10_000, 50);
        assert_eq!(rows[0].cost_t, 1_000_000);
        assert!(
            (rows[1].speedup - 0.99).abs() < 0.005,
            "{}",
            rows[1].speedup
        );
        assert!((rows[2].speedup - 16.7).abs() < 0.1, "{}", rows[2].speedup);
    }

    #[test]
    fn transfer_row_dominates_when_samples_shrink() {
        let rows = table7_rows(1_000, 10_000, 50);
        assert!(rows[2].speedup > rows[1].speedup);
        assert!(rows[2].speedup > rows[0].speedup);
    }

    #[test]
    fn test_model_counts() {
        let rows = table7_rows(1_000, 10_000, 50);
        assert_eq!(rows[0].test_models, 1_000);
        assert_eq!(rows[1].test_models, 10_000);
        assert_eq!(rows[2].test_models, 10_000);
    }
}
