//! Property-based tests of the graph hash: collision behaviour and
//! sensitivity over randomly generated model graphs.

use nnlqp_hash::{graph_hash, graph_hash_with, HashAlgo};
use nnlqp_ir::{GraphBuilder, Rng64, Shape};
use proptest::prelude::*;
use std::collections::HashSet;

/// Random chain-with-branches graph, parameterized enough that distinct
/// seeds almost surely give structurally distinct graphs.
fn random_graph(seed: u64) -> nnlqp_ir::Graph {
    let mut r = Rng64::new(seed);
    let hw = *r.choice(&[16usize, 32, 64]);
    let mut b = GraphBuilder::new("h", Shape::nchw(1, 3, hw, hw));
    let mut cur = b
        .conv(None, 8 + 2 * r.below(32) as u32, 3, 1, 1, 1)
        .unwrap();
    for _ in 0..(2 + r.below(10)) {
        cur = match r.below(4) {
            0 => {
                let c = 8 + 2 * r.below(32) as u32;
                b.conv(Some(cur), c, *r.choice(&[1u32, 3, 5]), 1, 1, 1)
                    .unwrap_or(cur)
            }
            1 => b.relu(cur).unwrap(),
            2 => b.sigmoid(cur).unwrap(),
            _ => {
                let c1 = b
                    .conv(Some(cur), b.channels(cur) as u32, 3, 1, 1, 1)
                    .unwrap();
                b.add(cur, c1).unwrap()
            }
        };
    }
    b.global_avgpool(cur).unwrap();
    b.finish().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Hashing is a pure function of the structure.
    #[test]
    fn hash_is_deterministic(seed in any::<u64>()) {
        let a = random_graph(seed);
        let b = random_graph(seed);
        prop_assert_eq!(graph_hash(&a), graph_hash(&b));
    }

    /// Both algorithms agree on equality structure (same graphs collide,
    /// and across a pair of different graphs they discriminate alike with
    /// overwhelming probability).
    #[test]
    fn algorithms_discriminate_alike(s1 in any::<u64>(), s2 in any::<u64>()) {
        let a = random_graph(s1);
        let b = random_graph(s2);
        let same_fnv = graph_hash_with(&a, HashAlgo::Fnv1a) == graph_hash_with(&b, HashAlgo::Fnv1a);
        let same_mix = graph_hash_with(&a, HashAlgo::Mix64) == graph_hash_with(&b, HashAlgo::Mix64);
        prop_assert_eq!(same_fnv, same_mix);
    }

    /// Appending one more node always changes the hash.
    #[test]
    fn extension_changes_hash(seed in any::<u64>()) {
        let g = random_graph(seed);
        let mut b = GraphBuilder::new("h", g.input_shape.clone());
        for n in &g.nodes {
            b.push(n.op, n.attrs.clone(), &n.inputs).unwrap();
        }
        let last = nnlqp_ir::NodeId(g.len() as u32 - 1);
        b.relu(last).unwrap();
        let extended = b.finish().unwrap();
        prop_assert_ne!(graph_hash(&g), graph_hash(&extended));
    }
}

/// Bulk collision check outside proptest: hash 2,000 random graphs and
/// require all structurally distinct ones to get distinct 64-bit keys.
#[test]
fn no_collisions_across_two_thousand_graphs() {
    let mut seen: HashSet<u64> = HashSet::new();
    let mut graphs = 0;
    for seed in 0..2000u64 {
        let g = random_graph(seed);
        seen.insert(graph_hash(&g));
        graphs += 1;
    }
    // Distinct seeds can occasionally produce identical structures; allow
    // a tiny number of *structural* duplicates but no more.
    assert!(
        seen.len() > graphs - 20,
        "{} hashes for {graphs} graphs — implausibly many collisions",
        seen.len()
    );
}
