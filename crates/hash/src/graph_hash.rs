//! The Merkle-style graph hash (Eqs. 1 and 2).

use crate::fnv::{HashAlgo, StreamHasher};
use nnlqp_ir::Graph;

/// Hash of one node's attribute set `A_v` (op code, attribute vector,
/// output shape), before successor hashes are folded in.
fn attr_hash(algo: HashAlgo, node: &nnlqp_ir::Node) -> u64 {
    let mut h = StreamHasher::new(algo);
    h.write_u64(node.op.code() as u64);
    // f_sort(A_v): the attribute vector has a canonical field order, which
    // is a fixed sort — identical semantics to sorting a keyed set.
    for v in node.attrs.to_vec() {
        h.write_f32(v);
    }
    h.write_u64(node.out_shape.rank() as u64);
    for &d in &node.out_shape.0 {
        h.write_u64(d as u64);
    }
    h.finish()
}

/// Per-node hash encodings `H_v`, computed in reverse topological order so
/// each node sees its successors' finished hashes (Eq. 1).
///
/// Equal values at two nodes (possibly of different graphs) mean the
/// descendant sub-graphs rooted there are identical in topology, attributes
/// and shapes.
pub fn node_hashes(g: &Graph, algo: HashAlgo) -> Vec<u64> {
    let n = g.len();
    // Successor lists in CSR form (two flat buffers) instead of one Vec
    // per node: counting pass, prefix sums, then a scatter pass.
    let mut offsets = vec![0u32; n + 1];
    for (_, node) in g.iter() {
        for &inp in &node.inputs {
            offsets[inp.index() + 1] += 1;
        }
    }
    for i in 0..n {
        offsets[i + 1] += offsets[i];
    }
    let mut succ = vec![0u32; offsets[n] as usize];
    let mut cursor = offsets.clone();
    for (id, node) in g.iter() {
        for &inp in &node.inputs {
            let c = &mut cursor[inp.index()];
            succ[*c as usize] = id.0;
            *c += 1;
        }
    }
    let mut hashes = vec![0u64; n];
    // One record buffer reused across nodes — the hot path of every query
    // and cache key allocates nothing per node.
    let mut record: Vec<u64> = Vec::new();
    // Nodes are stored in topological order; walk backwards.
    for i in (0..n).rev() {
        record.clear();
        record.extend(
            succ[offsets[i] as usize..offsets[i + 1] as usize]
                .iter()
                .map(|&s| hashes[s as usize]),
        );
        record.sort_unstable(); // f_sort over successor hashes
        let mut h = StreamHasher::new(algo);
        h.write_u64(attr_hash(algo, &g.nodes[i]));
        h.write_u64(record.len() as u64);
        h.write_all(&record);
        hashes[i] = h.finish();
    }
    hashes
}

/// Whole-graph hash `H_G` (Eq. 2): fold the sorted hashes of all source
/// nodes (`Pre(u) = ∅`), plus the graph input shape.
pub fn graph_hash_with(g: &Graph, algo: HashAlgo) -> u64 {
    let hashes = node_hashes(g, algo);
    let mut roots: Vec<u64> = g
        .sources()
        .into_iter()
        .map(|id| hashes[id.index()])
        .collect();
    roots.sort_unstable();
    let mut h = StreamHasher::new(algo);
    h.write_u64(g.input_shape.rank() as u64);
    for &d in &g.input_shape.0 {
        h.write_u64(d as u64);
    }
    h.write_u64(roots.len() as u64);
    h.write_all(&roots);
    h.finish()
}

/// Whole-graph hash with the default algorithm (FNV-1a).
pub fn graph_hash(g: &Graph) -> u64 {
    graph_hash_with(g, HashAlgo::Fnv1a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnlqp_ir::{GraphBuilder, Shape};

    fn diamond(order_swapped: bool) -> Graph {
        // conv -> {branch a: conv3x3, branch b: conv1x1} -> add
        let mut b = GraphBuilder::new("d", Shape::nchw(1, 8, 16, 16));
        let stem = b.conv(None, 8, 3, 1, 1, 1).unwrap();
        let (x, y) = if order_swapped {
            let b1 = b.conv(Some(stem), 8, 1, 1, 0, 1).unwrap();
            let b2 = b.conv(Some(stem), 8, 3, 1, 1, 1).unwrap();
            (b2, b1)
        } else {
            let b1 = b.conv(Some(stem), 8, 3, 1, 1, 1).unwrap();
            let b2 = b.conv(Some(stem), 8, 1, 1, 0, 1).unwrap();
            (b1, b2)
        };
        b.add(x, y).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn identical_graphs_hash_equal() {
        assert_eq!(graph_hash(&diamond(false)), graph_hash(&diamond(false)));
    }

    #[test]
    fn name_is_not_part_of_the_hash() {
        let mut a = diamond(false);
        a.name = "something-else".into();
        assert_eq!(graph_hash(&a), graph_hash(&diamond(false)));
    }

    #[test]
    fn branch_insertion_order_is_irrelevant() {
        // Same DAG built with sibling branches in swapped order must collide
        // (that is the point of sorting successor hashes).
        assert_eq!(graph_hash(&diamond(false)), graph_hash(&diamond(true)));
    }

    #[test]
    fn attribute_change_changes_hash() {
        let a = diamond(false);
        let mut b = diamond(false);
        b.nodes[1].attrs.stride = [2, 2];
        // (shape would change too in a rebuilt graph; mutate attrs only to
        // isolate the attribute contribution)
        assert_ne!(graph_hash(&a), graph_hash(&b));
    }

    #[test]
    fn input_resolution_changes_hash() {
        let mut b1 = GraphBuilder::new("r", Shape::nchw(1, 3, 32, 32));
        let c = b1.conv(None, 8, 3, 1, 1, 1).unwrap();
        b1.relu(c).unwrap();
        let g1 = b1.finish().unwrap();
        let mut b2 = GraphBuilder::new("r", Shape::nchw(1, 3, 64, 64));
        let c = b2.conv(None, 8, 3, 1, 1, 1).unwrap();
        b2.relu(c).unwrap();
        let g2 = b2.finish().unwrap();
        assert_ne!(graph_hash(&g1), graph_hash(&g2));
    }

    #[test]
    fn batch_change_changes_hash() {
        let g = diamond(false);
        let g2 = g.rebatch(4).unwrap();
        assert_ne!(graph_hash(&g), graph_hash(&g2));
    }

    #[test]
    fn equal_node_hash_means_equal_descendant_subgraph() {
        // Two different stems feeding identical tails: the tail node hashes
        // must match across graphs, the stem hashes must not.
        let build = |stem_kernel: u32| {
            let mut b = GraphBuilder::new("t", Shape::nchw(1, 8, 16, 16));
            let stem = b
                .conv(None, 8, stem_kernel, 1, (stem_kernel - 1) / 2, 1)
                .unwrap();
            let r = b.relu(stem).unwrap();
            let p = b.global_avgpool(r).unwrap();
            let f = b.flatten(p).unwrap();
            b.gemm(f, 10).unwrap();
            b.finish().unwrap()
        };
        let g1 = build(3);
        let g2 = build(5);
        let h1 = node_hashes(&g1, HashAlgo::Fnv1a);
        let h2 = node_hashes(&g2, HashAlgo::Fnv1a);
        // Tail (relu onward) identical.
        assert_eq!(h1[1..], h2[1..]);
        // Stems differ.
        assert_ne!(h1[0], h2[0]);
        // And therefore the whole graphs differ.
        assert_ne!(graph_hash(&g1), graph_hash(&g2));
    }

    #[test]
    fn both_algorithms_discriminate() {
        let a = diamond(false);
        let mut b = diamond(false);
        b.nodes[2].attrs.out_channels = 16;
        for algo in [HashAlgo::Fnv1a, HashAlgo::Mix64] {
            assert_ne!(graph_hash_with(&a, algo), graph_hash_with(&b, algo));
        }
    }
}
