//! Fast in-process graph fingerprint for cache keys.
//!
//! [`graph_fingerprint`] is NOT the paper's Merkle graph hash and is never
//! persisted: the database / retrieval contract stays on
//! [`crate::graph_hash`]. This exists for the embedding cache on the query
//! hot path, where the key is recomputed for every single prediction and
//! the Merkle walk (successor CSR, per-node sorts, one hasher restart per
//! node) costs more than the rest of feature extraction combined.
//!
//! Differences from the Merkle hash, all acceptable for an in-process key:
//!
//! * **Order-dependent.** Nodes are absorbed in stored (topological
//!   insertion) order, so two isomorphic graphs built with branches in a
//!   different order get distinct fingerprints. For a cache that is only a
//!   spurious miss, never a wrong hit.
//! * **Word-packed, four-lane.** Records are packed two 32-bit values per
//!   word and absorbed round-robin into four independent
//!   multiply-xor lanes, breaking the sequential multiply dependency chain
//!   that bounds a single-lane stream hash. Lanes are folded through the
//!   splitmix finalizer at the end.
//!
//! Collision odds stay at the 64-bit birthday bound of the stream hashes;
//! each lane's `s = (s ^ w) * odd` step is invertible, so no word is
//! silently dropped.

use crate::fnv::mix64;
use nnlqp_ir::Graph;

/// Distinct odd multipliers per lane (golden-ratio based, as in splitmix
/// and wyhash families).
const LANE_MUL: [u64; 4] = [
    0x9E37_79B9_7F4A_7C15,
    0xC2B2_AE3D_27D4_EB4F,
    0x1656_67B1_9E37_79F9,
    0xD6E8_FEB8_6659_FD93,
];

/// Four-lane absorber; see module docs.
struct Lanes {
    s: [u64; 4],
    i: usize,
}

impl Lanes {
    fn new() -> Lanes {
        Lanes {
            s: [
                0x243F_6A88_85A3_08D3,
                0x1319_8A2E_0370_7344,
                0xA409_3822_299F_31D0,
                0x082E_FA98_EC4E_6C89,
            ],
            i: 0,
        }
    }

    #[inline]
    fn put(&mut self, w: u64) {
        let k = self.i & 3;
        self.s[k] = (self.s[k] ^ w).wrapping_mul(LANE_MUL[k]);
        self.i += 1;
    }

    /// Pack two 32-bit halves into one absorbed word.
    #[inline]
    fn put_pair(&mut self, hi: u32, lo: u32) {
        self.put(((hi as u64) << 32) | lo as u64);
    }

    fn finish(self) -> u64 {
        let mut h = mix64(self.s[0] ^ self.i as u64);
        h = mix64(h ^ self.s[1]);
        h = mix64(h ^ self.s[2]);
        mix64(h ^ self.s[3])
    }
}

/// Absorb a shape as `rank` then dimension pairs (odd tail zero-padded;
/// the rank word disambiguates).
#[inline]
fn put_shape(l: &mut Lanes, dims: &[usize]) {
    for pair in dims.chunks(2) {
        let hi = pair[0] as u32;
        let lo = pair.get(1).copied().unwrap_or(0) as u32;
        l.put_pair(hi, lo);
    }
}

/// Order-dependent fingerprint of a graph's stored representation:
/// input shape, then per node the op code, attribute vector, output shape
/// and input edges. Suitable only as an in-process cache key.
pub fn graph_fingerprint(g: &Graph) -> u64 {
    let mut l = Lanes::new();
    l.put(g.input_shape.0.len() as u64);
    put_shape(&mut l, &g.input_shape.0);
    l.put(g.len() as u64);
    for (_, node) in g.iter() {
        // op code | input count | rank, all small, in one word.
        l.put(
            ((node.op.code() as u64) << 32)
                | ((node.inputs.len() as u64) << 16)
                | node.out_shape.rank() as u64,
        );
        let attrs = node.attrs.to_vec();
        for pair in attrs.chunks(2) {
            let hi = pair[0].to_bits();
            let lo = pair.get(1).map(|v| v.to_bits()).unwrap_or(0);
            l.put_pair(hi, lo);
        }
        put_shape(&mut l, &node.out_shape.0);
        for pair in node.inputs.chunks(2) {
            let hi = pair[0].0;
            let lo = pair.get(1).map(|id| id.0).unwrap_or(u32::MAX);
            l.put_pair(hi, lo);
        }
    }
    l.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnlqp_ir::{GraphBuilder, Shape};

    fn chain(channels: u32, res: u32) -> Graph {
        let mut b = GraphBuilder::new("c", Shape::nchw(1, 3, res as usize, res as usize));
        let c = b.conv(None, channels, 3, 1, 1, 1).unwrap();
        let r = b.relu(c).unwrap();
        let c2 = b.conv(Some(r), channels, 3, 1, 1, 1).unwrap();
        b.add(r, c2).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            graph_fingerprint(&chain(8, 16)),
            graph_fingerprint(&chain(8, 16))
        );
    }

    #[test]
    fn sensitive_to_attrs_and_input_shape() {
        let base = graph_fingerprint(&chain(8, 16));
        assert_ne!(base, graph_fingerprint(&chain(16, 16)), "channel change");
        assert_ne!(base, graph_fingerprint(&chain(8, 32)), "resolution change");
    }

    #[test]
    fn sensitive_to_topology() {
        let mut b = GraphBuilder::new("t", Shape::nchw(1, 3, 16, 16));
        let c = b.conv(None, 8, 3, 1, 1, 1).unwrap();
        let r = b.relu(c).unwrap();
        let c2 = b.conv(Some(r), 8, 3, 1, 1, 1).unwrap();
        // add(c, c2) instead of add(r, c2): same node set, one edge moved.
        b.add(c, c2).unwrap();
        let rewired = b.finish().unwrap();
        assert_ne!(
            graph_fingerprint(&chain(8, 16)),
            graph_fingerprint(&rewired)
        );
    }

    #[test]
    fn distinct_from_merkle_hash() {
        let g = chain(8, 16);
        // Not a hard requirement, but catches accidentally delegating to
        // the persisted hash.
        assert_ne!(graph_fingerprint(&g), crate::graph_hash(&g));
    }
}
