//! # nnlqp-hash
//!
//! Graph hash encoding for fast model retrieval (paper §5.2, Eqs. 1–2).
//!
//! Each node's hash is computed from its attribute values and the *sorted*
//! hashes of its successors, walking the DAG in reverse topological order:
//!
//! ```text
//! H_v = f_hash( f_sort(A_v) ⊕ f_sort({H_u | u ∈ Suc(v)}) )      (Eq. 1)
//! H_G = f_hash( f_sort({H_u | Pre(u) = ∅}) )                    (Eq. 2)
//! ```
//!
//! The whole-graph key is a single `u64` — the paper's "graph hash key is
//! always stored with 8 bytes" — and because successor hashes are sorted,
//! two models that differ only in the insertion order of parallel branches
//! hash identically. Equal node hashes imply equal descendant sub-graphs,
//! which is what makes the database cache sound.
//!
//! Implementation notes (documented deviations):
//! * `A_v` includes the operator code, the fixed-length attribute vector and
//!   the node's output shape; the graph input shape is folded into `H_G`.
//!   Output shapes must participate: two models that differ only in input
//!   resolution have different latencies and must be distinct cache keys.
//! * Two `f_hash` choices are provided for the ablation bench: FNV-1a
//!   (default) and a multiply-xor mixer.

pub mod fingerprint;
pub mod fnv;
pub mod graph_hash;

pub use fingerprint::graph_fingerprint;
pub use fnv::{HashAlgo, StreamHasher};
pub use graph_hash::{graph_hash, graph_hash_with, node_hashes};
