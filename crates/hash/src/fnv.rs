//! 64-bit streaming hash cores.
//!
//! Two interchangeable `f_hash` implementations back the graph hash; the
//! ablation bench (`bench/hash`) compares their throughput and collision
//! behaviour over the model corpus.

/// Which mixing function `f_hash` uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HashAlgo {
    /// FNV-1a, byte-at-a-time. Simple, fast for the short records hashed
    /// here, and the default.
    #[default]
    Fnv1a,
    /// A stronger multiply-xor finalizer (splitmix-style avalanche) applied
    /// per 8-byte word.
    Mix64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental hasher over little-endian words.
#[derive(Debug, Clone)]
pub struct StreamHasher {
    algo: HashAlgo,
    state: u64,
}

#[inline]
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl StreamHasher {
    /// Fresh hasher for the chosen algorithm.
    pub fn new(algo: HashAlgo) -> Self {
        StreamHasher {
            algo,
            state: match algo {
                HashAlgo::Fnv1a => FNV_OFFSET,
                HashAlgo::Mix64 => 0x9E37_79B9_7F4A_7C15,
            },
        }
    }

    /// Absorb one 64-bit word.
    #[inline]
    pub fn write_u64(&mut self, w: u64) {
        match self.algo {
            HashAlgo::Fnv1a => {
                for b in w.to_le_bytes() {
                    self.state ^= b as u64;
                    self.state = self.state.wrapping_mul(FNV_PRIME);
                }
            }
            HashAlgo::Mix64 => {
                self.state = mix64(self.state ^ w).wrapping_mul(0xff51_afd7_ed55_8ccd);
            }
        }
    }

    /// Absorb an `f32` by its bit pattern (NaN-free inputs by construction).
    #[inline]
    pub fn write_f32(&mut self, x: f32) {
        self.write_u64(x.to_bits() as u64);
    }

    /// Absorb a slice of words.
    pub fn write_all(&mut self, ws: &[u64]) {
        for &w in ws {
            self.write_u64(w);
        }
    }

    /// Final 64-bit digest.
    #[inline]
    pub fn finish(&self) -> u64 {
        match self.algo {
            HashAlgo::Fnv1a => self.state,
            HashAlgo::Mix64 => mix64(self.state),
        }
    }
}

/// One-shot hash of a word sequence.
pub fn hash_words(algo: HashAlgo, ws: &[u64]) -> u64 {
    let mut h = StreamHasher::new(algo);
    h.write_all(ws);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        for algo in [HashAlgo::Fnv1a, HashAlgo::Mix64] {
            assert_eq!(hash_words(algo, &[1, 2, 3]), hash_words(algo, &[1, 2, 3]));
        }
    }

    #[test]
    fn order_sensitive() {
        for algo in [HashAlgo::Fnv1a, HashAlgo::Mix64] {
            assert_ne!(hash_words(algo, &[1, 2]), hash_words(algo, &[2, 1]));
        }
    }

    #[test]
    fn algos_differ() {
        assert_ne!(
            hash_words(HashAlgo::Fnv1a, &[42]),
            hash_words(HashAlgo::Mix64, &[42])
        );
    }

    #[test]
    fn no_trivial_collisions_in_small_domain() {
        use std::collections::HashSet;
        for algo in [HashAlgo::Fnv1a, HashAlgo::Mix64] {
            let mut seen = HashSet::new();
            for a in 0u64..64 {
                for b in 0u64..64 {
                    assert!(seen.insert(hash_words(algo, &[a, b])), "collision {a},{b}");
                }
            }
        }
    }

    #[test]
    fn f32_bit_pattern_hashing() {
        let mut a = StreamHasher::new(HashAlgo::Fnv1a);
        a.write_f32(1.5);
        let mut b = StreamHasher::new(HashAlgo::Fnv1a);
        b.write_f32(1.5000001);
        assert_ne!(a.finish(), b.finish());
    }
}
