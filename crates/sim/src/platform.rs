//! Platform descriptors — the simulator's stand-in for Table 1.
//!
//! Each spec captures the first-order determinants of inference latency on
//! a device class: peak arithmetic throughput at the executed precision,
//! memory bandwidth, kernel launch overhead, stream parallelism and the
//! non-linear utilization knobs (alignment quantum, occupancy saturation,
//! depthwise / Winograd factors). Values are order-of-magnitude realistic
//! for the named silicon but are *not* claimed to match it — the
//! experiments compare predictors against this simulator's ground truth.

use crate::farm::{DeviceFarm, FarmError};
use nnlqp_ir::{DType, OpType};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// Grouped-convolution fallback multiplier by precision: the fast
/// quantized/half kernels of vendor runtimes do not support grouping, so
/// grouped layers drop to generic kernels and lose most of the dtype's
/// throughput advantage.
pub fn dtype_group_penalty(dt: DType) -> f64 {
    match dt {
        DType::F32 => 0.75,
        DType::F16 | DType::I16 | DType::I8 => 0.40,
    }
}

/// Broad hardware category (Table 1's "Type" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HardwareClass {
    Gpu,
    Cpu,
    Asic,
}

/// Simulated wall-clock costs of the deployment pipeline stages (§5.1),
/// in seconds. These drive Table 2; the measurement itself adds
/// `reps * model_latency` on top.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeployCosts {
    /// Step 1: ONNX -> platform graph conversion.
    pub transform_s: f64,
    /// Step 1: compilation by the inference toolkit (TensorRT build etc.).
    pub compile_s: f64,
    /// Step 3: upload of executable + dependencies to the board.
    pub upload_s: f64,
    /// Fixed harness overhead around the timed runs.
    pub harness_s: f64,
}

impl DeployCosts {
    /// Total fixed pipeline cost excluding the timed runs.
    pub fn fixed_total_s(&self) -> f64 {
        self.transform_s + self.compile_s + self.upload_s + self.harness_s
    }
}

/// A target platform: hardware + inference software + data type.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformSpec {
    /// Canonical identifier, e.g. `"gpu-T4-trt7.1-fp32"`.
    pub name: String,
    /// Hardware name (Table 1 column 2).
    pub hardware: String,
    /// Inference library (Table 1 column 3).
    pub software: String,
    /// Executed precision.
    pub dtype: DType,
    /// Hardware category.
    pub class: HardwareClass,
    /// Peak arithmetic throughput at `dtype`, in GFLOP/s.
    pub peak_gflops: f64,
    /// Memory bandwidth in GB/s.
    pub mem_bw_gbps: f64,
    /// Kernel launch overhead in microseconds.
    pub launch_us: f64,
    /// Concurrent execution streams (1 = strictly sequential kernels).
    pub streams: usize,
    /// Channel alignment quantum for full throughput (tensor cores /
    /// vector lanes); misaligned widths pay `misalign_penalty`.
    pub align: u32,
    /// Peak efficiency loss at worst-case misalignment, 0..1.
    pub misalign_penalty: f64,
    /// Output-element count at which a kernel reaches half of peak
    /// utilization (occupancy saturation scale).
    pub sat_elems: f64,
    /// Relative efficiency of depthwise/grouped convolutions.
    pub dw_efficiency: f64,
    /// Throughput multiplier for 3x3 dense convolutions (Winograd et al.).
    pub winograd_boost: f64,
    /// Fraction of producer-to-consumer bytes served from cache when a
    /// kernel runs inside a model (vs. cold from DRAM when isolated).
    pub cache_overlap: f64,
    /// Bandwidth multiplier for cache-resident bytes.
    pub cache_speedup: f64,
    /// Fraction of the launch overhead hidden by pipelining when the
    /// stream is busy (back-to-back enqueue).
    pub launch_pipelining: f64,
    /// Device memory available to a single inference session, in bytes
    /// (Table 1's memory column, order-of-magnitude). The analyzer's
    /// memory-feasibility pass rejects graphs whose static footprint
    /// (weights + peak live activations) cannot fit. `0` means unknown
    /// and disables the check.
    pub mem_capacity_bytes: u64,
    /// Deployment-stage costs for the query pipeline.
    pub deploy: DeployCosts,
    /// Operators this platform's toolchain cannot compile (§9: "which
    /// operators are not suitable — for example, hard swish is not
    /// supported on openppl and therefore should be avoided"). The
    /// advisory [`PlatformSpec::unsupported_in`] check surfaces these at
    /// design time.
    pub unsupported: Vec<OpType>,
}

impl PlatformSpec {
    /// Best-case utilization ceiling used by the cost model.
    pub const BASE_EFFICIENCY: f64 = 0.62;

    #[allow(clippy::too_many_arguments)] // positional registry table rows
    fn mk(
        hardware: &str,
        software: &str,
        dtype: DType,
        class: HardwareClass,
        peak_gflops: f64,
        mem_bw_gbps: f64,
        launch_us: f64,
        streams: usize,
        align: u32,
        deploy_fixed: f64,
    ) -> PlatformSpec {
        let prefix = match class {
            HardwareClass::Gpu => "gpu-",
            HardwareClass::Cpu => "",
            HardwareClass::Asic => "",
        };
        let (dw, wino, cache, misalign) = match class {
            HardwareClass::Gpu => (0.35, 1.45, 0.60, 0.30),
            HardwareClass::Cpu => (0.60, 1.15, 0.75, 0.15),
            HardwareClass::Asic => (0.50, 1.00, 0.45, 0.40),
        };
        PlatformSpec {
            name: format!("{prefix}{hardware}-{software}-{}", dtype.name()),
            hardware: hardware.to_string(),
            software: software.to_string(),
            dtype,
            class,
            peak_gflops,
            mem_bw_gbps,
            launch_us,
            streams,
            align,
            misalign_penalty: misalign,
            sat_elems: match class {
                HardwareClass::Gpu => 2.0e5,
                HardwareClass::Cpu => 2.0e4,
                HardwareClass::Asic => 8.0e4,
            },
            dw_efficiency: dw,
            winograd_boost: wino,
            cache_overlap: cache,
            cache_speedup: 4.0,
            launch_pipelining: match class {
                HardwareClass::Gpu => 0.85,
                HardwareClass::Cpu => 0.45,
                HardwareClass::Asic => 0.65,
            },
            mem_capacity_bytes: {
                const GIB: u64 = 1 << 30;
                const MIB: u64 = 1 << 20;
                match hardware {
                    "cpu" => 64 * GIB,
                    "T4" => 16 * GIB,
                    "P4" => 8 * GIB,
                    "gtx1660" => 6 * GIB,
                    "atlas300" => 32 * GIB,
                    "mlu270" => 16 * GIB,
                    "hi3559A" => 2 * GIB,
                    "hi3519A" => GIB,
                    "rv1109" => 128 * MIB,
                    _ => 4 * GIB,
                }
            },
            deploy: DeployCosts {
                transform_s: 0.08 * deploy_fixed,
                compile_s: 0.72 * deploy_fixed,
                upload_s: 0.08 * deploy_fixed,
                harness_s: 0.12 * deploy_fixed,
            },
            unsupported: match (hardware, software) {
                // NNIE NPUs route smooth sigmoids to the host CPU.
                ("hi3559A", _) | ("hi3519A", _) => vec![OpType::Sigmoid],
                // The rknn toolchain has no keepdims spatial mean.
                ("rv1109", _) => vec![OpType::ReduceMean],
                _ => Vec::new(),
            },
        }
    }

    /// Operators of `g` this platform cannot compile (advisory design-time
    /// check; the simulator still prices them, as vendor stacks fall back
    /// to slow host kernels).
    pub fn unsupported_in(&self, g: &nnlqp_ir::Graph) -> Vec<OpType> {
        let mut found: Vec<OpType> = g
            .nodes
            .iter()
            .map(|n| n.op)
            .filter(|op| self.unsupported.contains(op))
            .collect();
        found.sort_unstable_by_key(|op| op.code());
        found.dedup();
        found
    }

    /// All platforms the simulated NNLQ supports (superset of Table 1).
    pub fn registry() -> Vec<PlatformSpec> {
        use DType::*;
        use HardwareClass::*;
        vec![
            // CPU
            Self::mk("cpu", "openppl", F32, Cpu, 1100.0, 95.0, 0.8, 1, 16, 150.0),
            // Datacenter GPUs
            Self::mk("T4", "trt7.1", F32, Gpu, 8100.0, 320.0, 10.0, 2, 8, 80.0),
            Self::mk("T4", "trt7.1", F16, Gpu, 21000.0, 320.0, 10.0, 2, 8, 82.0),
            Self::mk("T4", "trt7.1", I8, Gpu, 26000.0, 320.0, 10.0, 2, 16, 78.0),
            Self::mk("P4", "trt7.1", F32, Gpu, 5500.0, 192.0, 12.0, 2, 8, 85.0),
            Self::mk("P4", "trt7.1", I8, Gpu, 12000.0, 192.0, 12.0, 2, 16, 86.0),
            Self::mk("T4", "trt5.0", F32, Gpu, 7700.0, 320.0, 12.0, 2, 8, 84.0),
            Self::mk("P4", "trt5.0", F32, Gpu, 5200.0, 192.0, 14.0, 2, 8, 88.0),
            Self::mk(
                "gtx1660", "trt7.1", F32, Gpu, 5000.0, 192.0, 10.0, 2, 8, 76.0,
            ),
            // ASICs
            Self::mk(
                "hi3559A", "nnie11", I8, Asic, 2000.0, 25.0, 40.0, 1, 16, 88.0,
            ),
            Self::mk(
                "hi3559A", "nnie11", I16, Asic, 1000.0, 25.0, 40.0, 1, 8, 88.0,
            ),
            Self::mk(
                "hi3519A", "nnie12", I8, Asic, 1200.0, 18.0, 50.0, 1, 16, 86.0,
            ),
            Self::mk(
                "hi3519A", "nnie12", I16, Asic, 600.0, 18.0, 50.0, 1, 8, 86.0,
            ),
            Self::mk(
                "atlas300", "acl", F16, Asic, 8000.0, 204.0, 22.0, 2, 16, 112.0,
            ),
            Self::mk(
                "atlas300", "acl", I8, Asic, 16000.0, 204.0, 22.0, 2, 32, 112.0,
            ),
            Self::mk(
                "mlu270", "neuware", I8, Asic, 12000.0, 102.0, 26.0, 4, 32, 106.0,
            ),
            Self::mk(
                "mlu270", "neuware", I16, Asic, 6000.0, 102.0, 26.0, 4, 16, 106.0,
            ),
            Self::mk("rv1109", "rknn", I8, Asic, 800.0, 8.5, 60.0, 1, 8, 92.0),
            Self::mk("rv1109", "rknn", I16, Asic, 400.0, 8.5, 60.0, 1, 4, 92.0),
        ]
    }

    /// Look up a platform by its canonical name.
    pub fn by_name(name: &str) -> Option<PlatformSpec> {
        // Accept the paper's occasional aliases.
        let canonical = match name {
            "cpu-ppl2-fp32" => "cpu-openppl-fp32",
            "mul270-neuware-int8" => "mlu270-neuware-int8",
            other => other,
        };
        Self::registry().into_iter().find(|p| p.name == canonical)
    }

    /// The nine platforms of the Table 2 / Table 6 experiments, in row
    /// order.
    pub fn table2_platforms() -> Vec<PlatformSpec> {
        [
            "cpu-openppl-fp32",
            "hi3559A-nnie11-int8",
            "gpu-T4-trt7.1-fp32",
            "gpu-T4-trt7.1-int8",
            "gpu-P4-trt7.1-fp32",
            "gpu-P4-trt7.1-int8",
            "hi3519A-nnie12-int8",
            "atlas300-acl-fp16",
            "mlu270-neuware-int8",
        ]
        .iter()
        .map(|n| Self::by_name(n).expect("registry platform"))
        .collect()
    }
}

/// A validated platform handle: proof that a requested name resolved to a
/// spec some farm (or the registry) actually serves. APIs that previously
/// took stringly platform names take this instead, moving the
/// unknown-platform failure to construction time. Cheap to clone (the
/// spec is shared behind an `Arc`); equality and hashing go by canonical
/// name.
#[derive(Debug, Clone)]
pub struct Platform {
    spec: Arc<PlatformSpec>,
}

impl Platform {
    /// Resolve a canonical registry name or paper alias.
    pub fn by_name(name: &str) -> Option<Platform> {
        PlatformSpec::by_name(name).map(Platform::from)
    }

    /// Resolve a user-supplied platform string against a farm.
    ///
    /// Resolution order:
    /// 1. canonical name or paper alias, if the farm serves it (this also
    ///    finds custom non-registry specs the farm was built with);
    /// 2. otherwise a case-insensitive abbreviation match over the farm's
    ///    platforms: every `-`-separated token of the query must appear,
    ///    in order, among the candidate's tokens (substring per token) —
    ///    so `"atlas"` finds `atlas300-acl-fp16` and `"T4-fp32"` finds
    ///    `gpu-T4-trt7.1-fp32` on a Table 2 farm. Unique hits resolve;
    ///    multiple hits are [`FarmError::AmbiguousPlatform`] listing the
    ///    candidates.
    pub fn parse(farm: &DeviceFarm, query: &str) -> Result<Platform, FarmError> {
        if let Some(spec) = PlatformSpec::by_name(query) {
            if let Some(served) = farm.spec_of(&spec.name) {
                return Ok(Platform::from(served));
            }
        }
        if let Some(spec) = farm.spec_of(query) {
            return Ok(Platform::from(spec));
        }
        let needle = query.to_ascii_lowercase();
        let hits: Vec<String> = farm
            .platforms()
            .into_iter()
            .filter(|p| abbreviates(&needle, &p.to_ascii_lowercase()))
            .collect();
        match hits.as_slice() {
            [] => Err(FarmError::UnknownPlatform(query.to_string())),
            [only] => Ok(Platform::from(
                farm.spec_of(only).expect("listed platform has a pool"),
            )),
            many => Err(FarmError::AmbiguousPlatform(format!(
                "\"{query}\" matches {}",
                many.join(", ")
            ))),
        }
    }

    /// Canonical platform name, e.g. `"gpu-T4-trt7.1-fp32"`.
    pub fn name(&self) -> &str {
        &self.spec.name
    }

    /// The underlying spec.
    pub fn spec(&self) -> &PlatformSpec {
        &self.spec
    }
}

/// Does lowercase `query` abbreviate lowercase `name`? Each `-`-separated
/// query token must substring-match a distinct `name` token, in order.
fn abbreviates(query: &str, name: &str) -> bool {
    let mut name_tokens = name.split('-');
    query.split('-').all(|q| name_tokens.any(|n| n.contains(q)))
}

impl From<PlatformSpec> for Platform {
    fn from(spec: PlatformSpec) -> Self {
        Platform {
            spec: Arc::new(spec),
        }
    }
}

impl fmt::Display for Platform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl PartialEq for Platform {
    fn eq(&self, other: &Self) -> bool {
        self.spec.name == other.spec.name
    }
}

impl Eq for Platform {}

impl Hash for Platform {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.spec.name.hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_table1_coverage() {
        let reg = PlatformSpec::registry();
        assert!(reg.len() >= 12);
        for needed in [
            "cpu-openppl-fp32",
            "gpu-T4-trt7.1-fp32",
            "gpu-T4-trt7.1-int8",
            "gpu-P4-trt7.1-fp32",
            "hi3559A-nnie11-int8",
            "hi3519A-nnie12-int8",
            "atlas300-acl-fp16",
            "mlu270-neuware-int8",
            "rv1109-rknn-int8",
            "gpu-gtx1660-trt7.1-fp32",
        ] {
            assert!(
                PlatformSpec::by_name(needed).is_some(),
                "missing platform {needed}"
            );
        }
    }

    #[test]
    fn names_are_unique() {
        let reg = PlatformSpec::registry();
        let mut names: Vec<&str> = reg.iter().map(|p| p.name.as_str()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(before, names.len());
    }

    #[test]
    fn aliases_resolve() {
        assert_eq!(
            PlatformSpec::by_name("cpu-ppl2-fp32").unwrap().name,
            "cpu-openppl-fp32"
        );
        assert_eq!(
            PlatformSpec::by_name("mul270-neuware-int8").unwrap().name,
            "mlu270-neuware-int8"
        );
    }

    #[test]
    fn table2_has_nine_rows() {
        assert_eq!(PlatformSpec::table2_platforms().len(), 9);
    }

    #[test]
    fn deploy_costs_total_matches_scale() {
        let p = PlatformSpec::by_name("cpu-openppl-fp32").unwrap();
        let t = p.deploy.fixed_total_s();
        assert!((140.0..160.0).contains(&t), "cpu fixed deploy {t}");
    }

    #[test]
    fn memory_capacities_track_device_scale() {
        let t4 = PlatformSpec::by_name("gpu-T4-trt7.1-fp32").unwrap();
        let rv = PlatformSpec::by_name("rv1109-rknn-int8").unwrap();
        assert_eq!(t4.mem_capacity_bytes, 16 << 30);
        assert_eq!(rv.mem_capacity_bytes, 128 << 20);
        assert!(rv.mem_capacity_bytes < t4.mem_capacity_bytes);
        for p in PlatformSpec::registry() {
            assert!(p.mem_capacity_bytes > 0, "{} has no capacity", p.name);
        }
    }

    #[test]
    fn unknown_platform_is_none() {
        assert!(PlatformSpec::by_name("tpu-v4-bf16").is_none());
    }

    #[test]
    fn platform_handle_by_name_and_alias() {
        let p = Platform::by_name("cpu-ppl2-fp32").unwrap();
        assert_eq!(p.name(), "cpu-openppl-fp32");
        assert_eq!(p.to_string(), "cpu-openppl-fp32");
        assert_eq!(p, Platform::by_name("cpu-openppl-fp32").unwrap());
        assert!(Platform::by_name("tpu-v4-bf16").is_none());
    }

    #[test]
    fn platform_parse_exact_alias_and_substring() {
        let farm = DeviceFarm::new(&PlatformSpec::table2_platforms(), 1);
        // Exact and alias hits.
        assert_eq!(
            Platform::parse(&farm, "gpu-T4-trt7.1-fp32").unwrap().name(),
            "gpu-T4-trt7.1-fp32"
        );
        assert_eq!(
            Platform::parse(&farm, "cpu-ppl2-fp32").unwrap().name(),
            "cpu-openppl-fp32"
        );
        // Unique case-insensitive abbreviations: single token and
        // hyphenated token subsequence.
        assert_eq!(
            Platform::parse(&farm, "ATLAS").unwrap().name(),
            "atlas300-acl-fp16"
        );
        assert_eq!(
            Platform::parse(&farm, "T4-fp32").unwrap().name(),
            "gpu-T4-trt7.1-fp32"
        );
        // Multiple hits name the candidates; misses are unknown.
        match Platform::parse(&farm, "T4").unwrap_err() {
            FarmError::AmbiguousPlatform(msg) => {
                assert!(msg.contains("gpu-T4-trt7.1-fp32"), "{msg}");
                assert!(msg.contains("gpu-T4-trt7.1-int8"), "{msg}");
            }
            other => panic!("expected ambiguous, got {other:?}"),
        }
        assert_eq!(
            Platform::parse(&farm, "tpu-v9").unwrap_err(),
            FarmError::UnknownPlatform("tpu-v9".into())
        );
    }

    #[test]
    fn platform_parse_sees_custom_farm_specs() {
        let mut spec = PlatformSpec::by_name("gpu-T4-trt7.1-fp32").unwrap();
        spec.name = "lab-fpga-fp32".to_string();
        let farm = DeviceFarm::new(&[spec], 1);
        assert_eq!(
            Platform::parse(&farm, "lab-fpga-fp32").unwrap().name(),
            "lab-fpga-fp32"
        );
        assert_eq!(
            Platform::parse(&farm, "fpga").unwrap().name(),
            "lab-fpga-fp32"
        );
    }

    #[test]
    fn unsupported_op_check() {
        use nnlqp_ir::{GraphBuilder, Shape};
        let mut b = GraphBuilder::new("se", Shape::nchw(1, 16, 8, 8));
        let c = b.conv(None, 16, 3, 1, 1, 1).unwrap();
        b.squeeze_excite(c, 4).unwrap();
        let g = b.finish().unwrap();
        let nnie = PlatformSpec::by_name("hi3559A-nnie11-int8").unwrap();
        assert_eq!(nnie.unsupported_in(&g), vec![nnlqp_ir::OpType::Sigmoid]);
        let rknn = PlatformSpec::by_name("rv1109-rknn-int8").unwrap();
        assert_eq!(rknn.unsupported_in(&g), vec![nnlqp_ir::OpType::ReduceMean]);
        let gpu = PlatformSpec::by_name("gpu-T4-trt7.1-fp32").unwrap();
        assert!(gpu.unsupported_in(&g).is_empty());
    }
}
