//! Whole-model execution: multi-stream list scheduling of the kernel DAG.
//!
//! Inside a model, kernels are cheaper than in isolation for three
//! mechanistic reasons (§3.2 of the paper):
//!
//! 1. **launch pipelining** — back-to-back enqueues hide most of the
//!    dispatch overhead behind the previous kernel's execution;
//! 2. **cache reuse** — a consumer reads its producer's output from cache,
//!    not DRAM;
//! 3. **stream parallelism** — independent branches (inception modules,
//!    squeeze-excite gates) overlap on multi-stream hardware.
//!
//! The resulting makespan is the model latency; summing the isolated
//! kernel latencies instead over-estimates it by a family-dependent factor,
//! reproducing Fig. 2.

use crate::fusion::{self, Kernel, KernelDesc};
use crate::kernel_cost;
use crate::platform::PlatformSpec;
use nnlqp_ir::Graph;
use nnlqp_obs::{Recorder, Span, Track};

/// Per-kernel scheduling record, for inspection and tests.
#[derive(Debug, Clone)]
pub struct ScheduledKernel {
    /// Kernel description.
    pub desc: KernelDesc,
    /// Stream the kernel executed on.
    pub stream: usize,
    /// Start time (ms since model start).
    pub start_ms: f64,
    /// Finish time (ms).
    pub finish_ms: f64,
    /// Launch-phase share of the interval: dispatch overhead actually
    /// paid (after pipelining hid what it could).
    pub launch_ms: f64,
    /// Compute-side roofline time of the execution phase.
    pub compute_ms: f64,
    /// Memory-IO-side roofline time of the execution phase (the phase
    /// itself lasts `max(compute_ms, memory_ms)`).
    pub memory_ms: f64,
}

/// Full execution trace of one model on one platform.
#[derive(Debug, Clone)]
pub struct ExecutionTrace {
    /// Scheduled kernels in issue order.
    pub kernels: Vec<ScheduledKernel>,
    /// Model latency: the makespan.
    pub latency_ms: f64,
}

impl ExecutionTrace {
    /// Fraction of the makespan each stream spent busy. Values near 1.0
    /// on stream 0 with low other-stream utilization indicate a mostly
    /// sequential model; branchy models spread the load.
    pub fn stream_utilization(&self, streams: usize) -> Vec<f64> {
        let mut busy = vec![0.0f64; streams.max(1)];
        for k in &self.kernels {
            if k.stream < busy.len() {
                busy[k.stream] += k.finish_ms - k.start_ms;
            }
        }
        busy.iter()
            .map(|b| {
                if self.latency_ms > 0.0 {
                    b / self.latency_ms
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// Total busy time summed over kernels (ms).
    pub fn total_busy_ms(&self) -> f64 {
        self.kernels.iter().map(|k| k.finish_ms - k.start_ms).sum()
    }
}

/// Execute a graph on a platform and return the full trace.
pub fn execute(g: &Graph, p: &PlatformSpec) -> ExecutionTrace {
    let kernels: Vec<Kernel> = fusion::fuse(g);
    let deps = fusion::kernel_deps(g, &kernels);
    let descs: Vec<KernelDesc> = kernels
        .iter()
        .map(|k| fusion::describe(g, k, p.dtype))
        .collect();

    let mut stream_free = vec![0.0f64; p.streams.max(1)];
    // Execution time of the kernel that last ran on each stream: a launch
    // can only hide behind it if it was long enough.
    let mut stream_last_exec = vec![0.0f64; p.streams.max(1)];
    let mut finish = vec![0.0f64; kernels.len()];
    let mut records: Vec<Option<ScheduledKernel>> = vec![None; kernels.len()];

    // Fusion can produce a kernel whose skip-branch producer was created
    // later; schedule in kernel-DAG topological order.
    for i in fusion::topo_order(&deps) {
        // Ready when all producers are done.
        let ready = deps[i].iter().map(|&d| finish[d]).fold(0.0f64, f64::max);
        // Pick the stream that lets us start earliest; among ties prefer
        // the stream with the *latest* free time (smallest idle gap) —
        // real runtimes keep a dependent chain on its producer's stream,
        // which is what makes back-to-back launch pipelining possible.
        let (stream, free) = stream_free
            .iter()
            .copied()
            .enumerate()
            .min_by(|a, b| {
                let start_a = ready.max(a.1);
                let start_b = ready.max(b.1);
                start_a
                    .partial_cmp(&start_b)
                    .expect("finite times")
                    .then(b.1.partial_cmp(&a.1).expect("finite times"))
            })
            .expect("at least one stream");
        let start = ready.max(free);

        // Launch cost: if the stream is busy right up to our start, the
        // enqueue was pipelined behind the previous kernel — but a launch
        // can only hide behind as much execution as actually preceded it,
        // so chains of tiny kernels keep paying their dispatch overhead
        // (the dominant cost of narrow-group architectures).
        let pipelined = start <= free + f64::EPSILON && free > 0.0;
        let full_launch = p.launch_us * 1.0e-3;
        let launch_ms = if pipelined {
            let coverage = (stream_last_exec[stream] / full_launch).min(1.0);
            full_launch * (1.0 - p.launch_pipelining * coverage)
        } else {
            full_launch
        };

        // Cache reuse: inputs coming from producer kernels are warm. The
        // fraction of read bytes that are producer outputs (vs weights or
        // the graph input) is approximated by the external-input share.
        let cached_frac = if deps[i].is_empty() {
            0.0
        } else {
            p.cache_overlap
        };
        let compute = kernel_cost::compute_ms(&descs[i], p);
        let memory = kernel_cost::memory_ms(&descs[i], p, cached_frac);
        let exec = compute.max(memory);

        let end = start + launch_ms + exec;
        stream_free[stream] = end;
        stream_last_exec[stream] = exec;
        finish[i] = end;
        records[i] = Some(ScheduledKernel {
            desc: descs[i].clone(),
            stream,
            start_ms: start,
            finish_ms: end,
            launch_ms,
            compute_ms: compute,
            memory_ms: memory,
        });
    }

    let latency_ms = finish.iter().copied().fold(0.0f64, f64::max);
    ExecutionTrace {
        kernels: records
            .into_iter()
            .map(|r| r.expect("every kernel scheduled"))
            .collect(),
        latency_ms,
    }
}

/// Track group used for kernel spans (`stream N` lanes under it).
pub const KERNEL_TRACK_GROUP: &str = "device";

impl ExecutionTrace {
    /// Publish the schedule into a recorder: one `kernel`-category span
    /// per formed kernel, on the `device` track group with one lane per
    /// stream, shifted by `base_ms` (the position of this model run on
    /// the caller's timeline). Each span carries the fusion family and
    /// its launch / compute / memory-IO phase split as args.
    pub fn record_into(&self, rec: &Recorder, base_ms: f64) {
        if !rec.is_enabled() {
            return;
        }
        for k in &self.kernels {
            rec.record(
                Span::new(
                    k.desc.family.name(),
                    "kernel",
                    Track::new(KERNEL_TRACK_GROUP, k.stream as u32),
                    base_ms + k.start_ms,
                    k.finish_ms - k.start_ms,
                )
                .arg("stream", k.stream)
                .arg("fusion_group", k.desc.family.name())
                .arg("launch_ms", k.launch_ms)
                .arg("compute_ms", k.compute_ms)
                .arg("memory_io_ms", k.memory_ms)
                .arg("flops", k.desc.flops),
            );
        }
    }
}

/// Execute a graph and publish the kernel timeline into `rec` at offset
/// `base_ms` — the tracing entry point behind `nnlqp trace`.
pub fn execute_recorded(
    g: &Graph,
    p: &PlatformSpec,
    rec: &Recorder,
    base_ms: f64,
) -> ExecutionTrace {
    let trace = execute(g, p);
    trace.record_into(rec, base_ms);
    trace
}

/// Noise-free model latency in milliseconds.
pub fn model_latency_ms(g: &Graph, p: &PlatformSpec) -> f64 {
    execute(g, p).latency_ms
}

/// Sum of the *isolated* latencies of the model's kernels — the quantity
/// kernel-additive predictors estimate (Fig. 2's y-axis).
pub fn sum_kernel_latencies_ms(g: &Graph, p: &PlatformSpec) -> f64 {
    fusion::fuse(g)
        .iter()
        .map(|k| {
            let d = fusion::describe(g, k, p.dtype);
            kernel_cost::kernel_latency_isolated_ms(&d, p)
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnlqp_ir::{GraphBuilder, Shape};
    use nnlqp_models::family::CORPUS_FAMILIES;

    fn t4() -> PlatformSpec {
        PlatformSpec::by_name("gpu-T4-trt7.1-fp32").unwrap()
    }

    #[test]
    fn latency_positive_and_finite_for_all_canonicals() {
        let p = t4();
        for f in CORPUS_FAMILIES {
            let g = f.canonical().unwrap();
            let lat = model_latency_ms(&g, &p);
            assert!(lat.is_finite() && lat > 0.0, "{f}: {lat}");
            assert!(lat < 1000.0, "{f}: implausible {lat} ms");
        }
    }

    #[test]
    fn additivity_violation_sum_exceeds_model() {
        // Fig. 2: every tested model lies above y = x.
        let p = t4();
        for f in CORPUS_FAMILIES {
            let g = f.canonical().unwrap();
            let model = model_latency_ms(&g, &p);
            let sum = sum_kernel_latencies_ms(&g, &p);
            assert!(sum > model, "{f}: sum {sum} !> model {model}");
        }
    }

    #[test]
    fn additivity_gap_is_family_dependent() {
        let p = t4();
        let ratio = |f: nnlqp_models::ModelFamily| {
            let g = f.canonical().unwrap();
            sum_kernel_latencies_ms(&g, &p) / model_latency_ms(&g, &p)
        };
        // Branchy / many-small-kernel families overlap more than chunky
        // sequential ones.
        let vgg = ratio(nnlqp_models::ModelFamily::Vgg);
        let mbv3 = ratio(nnlqp_models::ModelFamily::MobileNetV3);
        assert!(
            mbv3 > vgg,
            "expected MobileNetV3 ratio {mbv3} > VGG ratio {vgg}"
        );
    }

    #[test]
    fn parallel_branches_faster_on_multi_stream() {
        // A wide graph with independent branches should speed up with
        // streams; build one by hand.
        let mut b = GraphBuilder::new("wide", Shape::nchw(1, 64, 56, 56));
        let stem = b.conv(None, 64, 1, 1, 0, 1).unwrap();
        let mut outs = Vec::new();
        for _ in 0..4 {
            let c = b.conv(Some(stem), 64, 3, 1, 1, 1).unwrap();
            outs.push(b.relu(c).unwrap());
        }
        b.concat(&outs).unwrap();
        let g = b.finish().unwrap();

        let mut p1 = t4();
        p1.streams = 1;
        let mut p2 = t4();
        p2.streams = 2;
        let l1 = model_latency_ms(&g, &p1);
        let l2 = model_latency_ms(&g, &p2);
        assert!(l2 < l1 * 0.85, "streams=2 {l2} vs streams=1 {l1}");
    }

    #[test]
    fn schedule_respects_dependencies() {
        let g = nnlqp_models::ModelFamily::ResNet.canonical().unwrap();
        let p = t4();
        let trace = execute(&g, &p);
        let kernels = fusion::fuse(&g);
        let deps = fusion::kernel_deps(&g, &kernels);
        for (i, d) in deps.iter().enumerate() {
            for &producer in d {
                assert!(
                    trace.kernels[producer].finish_ms <= trace.kernels[i].start_ms + 1e-12,
                    "kernel {i} started before producer {producer} finished"
                );
            }
        }
    }

    #[test]
    fn stream_utilization_reflects_topology() {
        let p = t4();
        // Sequential VGG: almost everything on stream 0.
        let vgg = nnlqp_models::ModelFamily::Vgg.canonical().unwrap();
        let tv = execute(&vgg, &p);
        let uv = tv.stream_utilization(p.streams);
        assert!(uv[0] > 0.8, "vgg stream0 {uv:?}");
        assert!(uv[1] < 0.2, "vgg stream1 {uv:?}");
        // Branchy GoogleNet: real work lands on the second stream.
        let goog = nnlqp_models::ModelFamily::GoogleNet.canonical().unwrap();
        let tg = execute(&goog, &p);
        let ug = tg.stream_utilization(p.streams);
        assert!(ug[1] > uv[1], "googlenet {ug:?} vs vgg {uv:?}");
        // Busy time never exceeds streams * makespan.
        assert!(tg.total_busy_ms() <= p.streams as f64 * tg.latency_ms + 1e-9);
    }

    #[test]
    fn batch_scaling_is_sublinear_then_linear() {
        let p = t4();
        let g1 = nnlqp_models::ModelFamily::ResNet.canonical().unwrap();
        let g8 = g1.rebatch(8).unwrap();
        let l1 = model_latency_ms(&g1, &p);
        let l8 = model_latency_ms(&g8, &p);
        // Larger batch amortizes launch overhead and fills the machine:
        // latency grows, but by less than 8x.
        assert!(l8 > l1, "batch 8 {l8} vs batch 1 {l1}");
        assert!(l8 < 8.0 * l1, "batch 8 should be sublinear: {l8} vs {l1}");
    }

    #[test]
    fn mobilenet_flops_latency_mismatch() {
        // MobileNetV2 has ~4x fewer FLOPs than ResNet18 but nowhere near 4x
        // lower latency on GPU — the core motivation for latency predictors.
        let p = t4();
        let rn = nnlqp_models::ModelFamily::ResNet.canonical().unwrap();
        let mb = nnlqp_models::ModelFamily::MobileNetV2.canonical().unwrap();
        let (fr, fm) = (
            nnlqp_ir::cost::graph_cost(&rn, p.dtype).flops,
            nnlqp_ir::cost::graph_cost(&mb, p.dtype).flops,
        );
        let (lr, lm) = (model_latency_ms(&rn, &p), model_latency_ms(&mb, &p));
        let flop_ratio = fr / fm;
        let lat_ratio = lr / lm;
        assert!(
            lat_ratio < flop_ratio * 0.7,
            "latency ratio {lat_ratio} should lag flop ratio {flop_ratio}"
        );
    }

    #[test]
    fn different_platforms_rank_models_differently_sometimes() {
        // Latency is platform-dependent beyond a scale factor: correlation
        // of per-model latencies across two very different platforms is
        // positive but not perfect.
        let gpu = t4();
        let asic = PlatformSpec::by_name("rv1109-rknn-int8").unwrap();
        let mut ratios = Vec::new();
        for f in CORPUS_FAMILIES {
            let g = f.canonical().unwrap();
            ratios.push(model_latency_ms(&g, &asic) / model_latency_ms(&g, &gpu));
        }
        let min = ratios.iter().copied().fold(f64::INFINITY, f64::min);
        let max = ratios.iter().copied().fold(0.0f64, f64::max);
        assert!(max / min > 1.5, "ratios too uniform: {min}..{max}");
    }
}
