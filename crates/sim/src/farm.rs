//! The device farm: concurrent, lease-based latency measurement.
//!
//! Reproduces §5.1's three-step query pipeline against simulated devices:
//!
//! 1. *model transformation* — charged on the simulated clock per platform;
//! 2. *device acquisition* — a bounded pool of device leases per platform,
//!    handed out through a channel (the RPC stand-in); callers block until
//!    a device is idle, exactly like the real farm;
//! 3. *latency measurement* — the run itself plus release of the lease.
//!
//! Real threads contend for real leases; only the *deployment wall-clock*
//! (compile/upload times that would take minutes on real toolchains) is
//! simulated.

use crate::measure::{measure, Measurement};
use crate::platform::PlatformSpec;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender, TryRecvError};
use nnlqp_ir::{Graph, Rng64};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A measurement request. The graph is shared, not owned: callers on the
/// query hot path hand the farm the same `Arc` they hash and store, so a
/// miss never deep-copies the model.
#[derive(Debug, Clone)]
pub struct QueryJob {
    /// Model to measure (shared with the caller; never deep-copied).
    pub graph: Arc<Graph>,
    /// Target platform name (registry canonical or paper alias).
    pub platform: String,
    /// Timed repetitions (paper default 50).
    pub reps: usize,
    /// Seed for measurement jitter and deployment-cost jitter.
    pub seed: u64,
}

/// Per-stage wall-clock split of one fulfilled deployment pipeline (§5.1),
/// in simulated seconds, jitter included. [`FarmResult::pipeline_cost_s`]
/// is exactly [`PipelineBreakdown::total_s`], so stage spans derived from
/// this struct tile the pipeline interval with no gap or overlap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineBreakdown {
    /// Step 1: ONNX -> platform graph conversion.
    pub transform_s: f64,
    /// Step 1: compilation by the inference toolkit.
    pub compile_s: f64,
    /// Step 3: upload of executable + dependencies to the board.
    pub upload_s: f64,
    /// Fixed harness overhead around the timed runs.
    pub harness_s: f64,
    /// The timed repetitions themselves.
    pub runs_s: f64,
}

impl PipelineBreakdown {
    /// Total pipeline wall-clock, the sum of all five stages.
    pub fn total_s(&self) -> f64 {
        self.transform_s + self.compile_s + self.upload_s + self.harness_s + self.runs_s
    }

    /// Stage `(name, seconds)` pairs in pipeline order, for span export.
    pub fn stages(&self) -> [(&'static str, f64); 5] {
        [
            ("transform", self.transform_s),
            ("compile", self.compile_s),
            ("upload", self.upload_s),
            ("harness", self.harness_s),
            ("runs", self.runs_s),
        ]
    }
}

/// Outcome of a fulfilled query.
#[derive(Debug, Clone)]
pub struct FarmResult {
    /// Canonical platform name.
    pub platform: String,
    /// The measurement session (mean is the ground-truth latency).
    pub measurement: Measurement,
    /// Simulated wall-clock cost of the full pipeline, in seconds:
    /// transform + compile + upload + harness + timed runs. Always equal
    /// to `breakdown.total_s()`.
    pub pipeline_cost_s: f64,
    /// Per-stage split of `pipeline_cost_s`.
    pub breakdown: PipelineBreakdown,
    /// Device that served the job.
    pub device_id: usize,
}

/// Farm errors.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FarmError {
    /// The requested platform is not in the registry.
    UnknownPlatform(String),
    /// The requested platform abbreviation matches several platforms; the
    /// payload lists the candidates.
    AmbiguousPlatform(String),
    /// All devices for the platform are leased and the caller declined to
    /// wait (non-blocking/timeout acquisition).
    Busy(String),
    /// The pool's lease channel is closed — the farm is shutting down.
    Closed(String),
}

impl fmt::Display for FarmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FarmError::UnknownPlatform(p) => write!(f, "unknown platform: {p}"),
            FarmError::AmbiguousPlatform(p) => write!(f, "ambiguous platform: {p}"),
            FarmError::Busy(p) => write!(f, "all devices busy for platform: {p}"),
            FarmError::Closed(p) => write!(f, "device pool closed for platform: {p}"),
        }
    }
}

impl std::error::Error for FarmError {}

struct DevicePool {
    spec: PlatformSpec,
    // Idle device ids; recv blocks while all devices are leased.
    idle_rx: Receiver<usize>,
    idle_tx: Sender<usize>,
}

/// A farm of simulated devices grouped by platform.
pub struct DeviceFarm {
    pools: HashMap<String, Arc<DevicePool>>,
    /// Total measurements performed over the farm's lifetime (all
    /// platforms). Serving layers use this to prove coalescing: the farm,
    /// not the caller, is the authority on how often hardware actually ran.
    measurements: AtomicU64,
}

impl DeviceFarm {
    /// Build a farm with `devices_per_platform` boards for each platform.
    pub fn new(platforms: &[PlatformSpec], devices_per_platform: usize) -> Self {
        let mut pools = HashMap::new();
        for spec in platforms {
            let n = devices_per_platform.max(1);
            let (tx, rx) = bounded(n);
            for id in 0..n {
                tx.send(id).expect("fresh channel has capacity");
            }
            pools.insert(
                spec.name.clone(),
                Arc::new(DevicePool {
                    spec: spec.clone(),
                    idle_rx: rx,
                    idle_tx: tx,
                }),
            );
        }
        DeviceFarm {
            pools,
            measurements: AtomicU64::new(0),
        }
    }

    /// Farm over the full registry, one device per platform.
    pub fn full_registry() -> Self {
        Self::new(&PlatformSpec::registry(), 1)
    }

    /// Platforms this farm serves.
    pub fn platforms(&self) -> Vec<String> {
        let mut v: Vec<String> = self.pools.keys().cloned().collect();
        v.sort();
        v
    }

    /// Number of currently idle devices for a platform.
    pub fn idle_devices(&self, platform: &str) -> usize {
        self.pools.get(platform).map_or(0, |p| p.idle_rx.len())
    }

    /// Spec of a platform this farm serves, by canonical name. Unlike
    /// [`PlatformSpec::by_name`] this also sees custom (non-registry)
    /// specs the farm was built with.
    pub fn spec_of(&self, canonical: &str) -> Option<PlatformSpec> {
        self.pools.get(canonical).map(|p| p.spec.clone())
    }

    fn resolve(&self, name: &str) -> Result<Arc<DevicePool>, FarmError> {
        // Accept aliases by canonicalizing through the registry.
        if let Some(pool) = self.pools.get(name) {
            return Ok(pool.clone());
        }
        let spec = PlatformSpec::by_name(name)
            .ok_or_else(|| FarmError::UnknownPlatform(name.to_string()))?;
        self.pools
            .get(&spec.name)
            .cloned()
            .ok_or(FarmError::UnknownPlatform(name.to_string()))
    }

    /// Lifetime count of measurements this farm has performed.
    pub fn measurements_performed(&self) -> u64 {
        self.measurements.load(Ordering::Relaxed)
    }

    /// Execute one query, blocking until a device for the platform is
    /// idle. This is the farm's RPC entry point.
    pub fn measure_blocking(&self, job: &QueryJob) -> Result<FarmResult, FarmError> {
        let pool = self.resolve(&job.platform)?;
        // Step 2: device acquisition (blocks while all boards are leased).
        let device_id = pool
            .idle_rx
            .recv()
            .map_err(|_| FarmError::Closed(pool.spec.name.clone()))?;
        Ok(self.run_leased(&pool, job, device_id))
    }

    /// Non-blocking acquisition: measure only if a device is idle right
    /// now, otherwise return [`FarmError::Busy`] without queueing.
    pub fn try_measure(&self, job: &QueryJob) -> Result<FarmResult, FarmError> {
        let pool = self.resolve(&job.platform)?;
        let device_id = match pool.idle_rx.try_recv() {
            Ok(id) => id,
            Err(TryRecvError::Empty) => return Err(FarmError::Busy(pool.spec.name.clone())),
            Err(TryRecvError::Disconnected) => {
                return Err(FarmError::Closed(pool.spec.name.clone()))
            }
        };
        Ok(self.run_leased(&pool, job, device_id))
    }

    /// Bounded-wait acquisition: block up to `timeout` for an idle device,
    /// then return [`FarmError::Busy`].
    pub fn measure_timeout(
        &self,
        job: &QueryJob,
        timeout: Duration,
    ) -> Result<FarmResult, FarmError> {
        let pool = self.resolve(&job.platform)?;
        let device_id = match pool.idle_rx.recv_timeout(timeout) {
            Ok(id) => id,
            Err(RecvTimeoutError::Timeout) => return Err(FarmError::Busy(pool.spec.name.clone())),
            Err(RecvTimeoutError::Disconnected) => {
                return Err(FarmError::Closed(pool.spec.name.clone()))
            }
        };
        Ok(self.run_leased(&pool, job, device_id))
    }

    fn run_leased(&self, pool: &DevicePool, job: &QueryJob, device_id: usize) -> FarmResult {
        // Steps 1 & 3 on the simulated clock.
        let result = Self::run_on_device(&pool.spec, job, device_id);
        self.measurements.fetch_add(1, Ordering::Relaxed);
        // Release the lease; a closed channel means the farm is being torn
        // down, in which case the lease is moot.
        let _ = pool.idle_tx.send(device_id);
        result
    }

    fn run_on_device(spec: &PlatformSpec, job: &QueryJob, device_id: usize) -> FarmResult {
        let measurement = measure(&job.graph, spec, job.reps, job.seed);
        // Deployment stages vary run to run (compiler caches, board load).
        let mut r = Rng64::new(job.seed ^ 0x00DE_B10F_u64);
        let jitter = 0.9 + 0.2 * r.uniform();
        let runs_s = measurement.runs.iter().sum::<f64>() / 1.0e3 + job.reps as f64 * 0.01;
        let breakdown = PipelineBreakdown {
            transform_s: spec.deploy.transform_s * jitter,
            compile_s: spec.deploy.compile_s * jitter,
            upload_s: spec.deploy.upload_s * jitter,
            harness_s: spec.deploy.harness_s * jitter,
            runs_s,
        };
        FarmResult {
            platform: spec.name.clone(),
            measurement,
            pipeline_cost_s: breakdown.total_s(),
            breakdown,
            device_id,
        }
    }

    /// Process a batch of jobs concurrently (one OS thread per job wave,
    /// bounded by device availability through the lease channels). Results
    /// come back in job order.
    pub fn submit_many(&self, jobs: &[QueryJob]) -> Vec<Result<FarmResult, FarmError>> {
        std::thread::scope(|s| {
            let handles: Vec<_> = jobs
                .iter()
                .map(|job| s.spawn(move || self.measure_blocking(job)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("no panics"))
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnlqp_models::ModelFamily;

    fn job(platform: &str, seed: u64) -> QueryJob {
        QueryJob {
            graph: Arc::new(ModelFamily::SqueezeNet.canonical().unwrap()),
            platform: platform.to_string(),
            reps: 10,
            seed,
        }
    }

    #[test]
    fn basic_measurement_roundtrip() {
        let farm = DeviceFarm::new(&PlatformSpec::table2_platforms(), 1);
        let r = farm
            .measure_blocking(&job("gpu-T4-trt7.1-fp32", 1))
            .unwrap();
        assert!(r.measurement.mean_ms > 0.0);
        assert!(r.pipeline_cost_s > 10.0, "pipeline {}", r.pipeline_cost_s);
    }

    #[test]
    fn unknown_platform_rejected() {
        let farm = DeviceFarm::new(&PlatformSpec::table2_platforms(), 1);
        let err = farm.measure_blocking(&job("tpu-v9", 1)).unwrap_err();
        assert_eq!(err, FarmError::UnknownPlatform("tpu-v9".into()));
    }

    #[test]
    fn aliases_route_to_canonical_pool() {
        let farm = DeviceFarm::new(&PlatformSpec::table2_platforms(), 1);
        let r = farm.measure_blocking(&job("cpu-ppl2-fp32", 1)).unwrap();
        assert_eq!(r.platform, "cpu-openppl-fp32");
    }

    #[test]
    fn leases_are_returned() {
        let farm = DeviceFarm::new(&PlatformSpec::table2_platforms(), 2);
        assert_eq!(farm.idle_devices("gpu-T4-trt7.1-fp32"), 2);
        let _ = farm
            .measure_blocking(&job("gpu-T4-trt7.1-fp32", 1))
            .unwrap();
        assert_eq!(farm.idle_devices("gpu-T4-trt7.1-fp32"), 2);
    }

    #[test]
    fn concurrent_jobs_share_devices_without_deadlock() {
        let farm = DeviceFarm::new(&PlatformSpec::table2_platforms(), 2);
        let jobs: Vec<QueryJob> = (0..8).map(|i| job("gpu-T4-trt7.1-fp32", i)).collect();
        let results = farm.submit_many(&jobs);
        assert_eq!(results.len(), 8);
        for r in results {
            let r = r.unwrap();
            assert!(r.device_id < 2);
            assert!(r.measurement.mean_ms > 0.0);
        }
    }

    #[test]
    fn mixed_platform_batch() {
        let farm = DeviceFarm::new(&PlatformSpec::table2_platforms(), 1);
        let jobs: Vec<QueryJob> = ["cpu-openppl-fp32", "gpu-T4-trt7.1-fp32", "rv1109-rknn-int8"]
            .iter()
            .enumerate()
            .filter(|(_, p)| PlatformSpec::by_name(p).is_some())
            .map(|(i, p)| job(p, i as u64))
            .collect();
        // rv1109 is not in the table2 farm; expect one error.
        let results = farm.submit_many(&jobs);
        let ok = results.iter().filter(|r| r.is_ok()).count();
        let err = results.iter().filter(|r| r.is_err()).count();
        assert_eq!((ok, err), (2, 1));
    }

    #[test]
    fn try_measure_busy_when_all_leased() {
        let farm = DeviceFarm::new(&PlatformSpec::table2_platforms(), 1);
        let pool = farm.resolve("gpu-T4-trt7.1-fp32").unwrap();
        // Drain the only lease by hand, then try_measure must refuse.
        let id = pool.idle_rx.try_recv().unwrap();
        let err = farm.try_measure(&job("gpu-T4-trt7.1-fp32", 1)).unwrap_err();
        assert_eq!(err, FarmError::Busy("gpu-T4-trt7.1-fp32".into()));
        let err = farm
            .measure_timeout(&job("gpu-T4-trt7.1-fp32", 1), Duration::from_millis(5))
            .unwrap_err();
        assert_eq!(err, FarmError::Busy("gpu-T4-trt7.1-fp32".into()));
        // Return the lease: the non-blocking path now succeeds.
        pool.idle_tx.send(id).unwrap();
        assert!(farm.try_measure(&job("gpu-T4-trt7.1-fp32", 1)).is_ok());
    }

    #[test]
    fn measurement_counter_tracks_runs() {
        let farm = DeviceFarm::new(&PlatformSpec::table2_platforms(), 2);
        assert_eq!(farm.measurements_performed(), 0);
        farm.measure_blocking(&job("gpu-T4-trt7.1-fp32", 1))
            .unwrap();
        farm.try_measure(&job("cpu-openppl-fp32", 2)).unwrap();
        farm.measure_timeout(&job("gpu-T4-trt7.1-fp32", 3), Duration::from_secs(1))
            .unwrap();
        assert_eq!(farm.measurements_performed(), 3);
        // Failed acquisitions don't count.
        let _ = farm.try_measure(&job("tpu-v9", 4));
        assert_eq!(farm.measurements_performed(), 3);
    }

    #[test]
    fn deterministic_given_seed() {
        let farm = DeviceFarm::new(&PlatformSpec::table2_platforms(), 1);
        let a = farm
            .measure_blocking(&job("gpu-T4-trt7.1-fp32", 5))
            .unwrap();
        let b = farm
            .measure_blocking(&job("gpu-T4-trt7.1-fp32", 5))
            .unwrap();
        assert_eq!(a.measurement.mean_ms, b.measurement.mean_ms);
        assert_eq!(a.pipeline_cost_s, b.pipeline_cost_s);
    }
}
