//! The device farm: concurrent, lease-based latency measurement.
//!
//! Reproduces §5.1's three-step query pipeline against simulated devices:
//!
//! 1. *model transformation* — charged on the simulated clock per platform;
//! 2. *device acquisition* — a bounded pool of device leases per platform,
//!    handed out through a channel (the RPC stand-in); callers block until
//!    a device is idle, exactly like the real farm;
//! 3. *latency measurement* — the run itself plus release of the lease.
//!
//! Real threads contend for real leases; only the *deployment wall-clock*
//! (compile/upload times that would take minutes on real toolchains) is
//! simulated.

use crate::measure::{measure, Measurement};
use crate::platform::PlatformSpec;
use crossbeam::channel::{bounded, Receiver, Sender};
use nnlqp_ir::{Graph, Rng64};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A measurement request.
#[derive(Debug, Clone)]
pub struct QueryJob {
    /// Model to measure.
    pub graph: Graph,
    /// Target platform name (registry canonical or paper alias).
    pub platform: String,
    /// Timed repetitions (paper default 50).
    pub reps: usize,
    /// Seed for measurement jitter and deployment-cost jitter.
    pub seed: u64,
}

/// Outcome of a fulfilled query.
#[derive(Debug, Clone)]
pub struct FarmResult {
    /// Canonical platform name.
    pub platform: String,
    /// The measurement session (mean is the ground-truth latency).
    pub measurement: Measurement,
    /// Simulated wall-clock cost of the full pipeline, in seconds:
    /// transform + compile + upload + harness + timed runs.
    pub pipeline_cost_s: f64,
    /// Device that served the job.
    pub device_id: usize,
}

/// Farm errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FarmError {
    /// The requested platform is not in the registry.
    UnknownPlatform(String),
}

impl fmt::Display for FarmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FarmError::UnknownPlatform(p) => write!(f, "unknown platform: {p}"),
        }
    }
}

impl std::error::Error for FarmError {}

struct DevicePool {
    spec: PlatformSpec,
    // Idle device ids; recv blocks while all devices are leased.
    idle_rx: Receiver<usize>,
    idle_tx: Sender<usize>,
}

/// A farm of simulated devices grouped by platform.
pub struct DeviceFarm {
    pools: HashMap<String, Arc<DevicePool>>,
}

impl DeviceFarm {
    /// Build a farm with `devices_per_platform` boards for each platform.
    pub fn new(platforms: &[PlatformSpec], devices_per_platform: usize) -> Self {
        let mut pools = HashMap::new();
        for spec in platforms {
            let n = devices_per_platform.max(1);
            let (tx, rx) = bounded(n);
            for id in 0..n {
                tx.send(id).expect("fresh channel has capacity");
            }
            pools.insert(
                spec.name.clone(),
                Arc::new(DevicePool {
                    spec: spec.clone(),
                    idle_rx: rx,
                    idle_tx: tx,
                }),
            );
        }
        DeviceFarm { pools }
    }

    /// Farm over the full registry, one device per platform.
    pub fn full_registry() -> Self {
        Self::new(&PlatformSpec::registry(), 1)
    }

    /// Platforms this farm serves.
    pub fn platforms(&self) -> Vec<String> {
        let mut v: Vec<String> = self.pools.keys().cloned().collect();
        v.sort();
        v
    }

    /// Number of currently idle devices for a platform.
    pub fn idle_devices(&self, platform: &str) -> usize {
        self.pools.get(platform).map_or(0, |p| p.idle_rx.len())
    }

    fn resolve(&self, name: &str) -> Result<Arc<DevicePool>, FarmError> {
        // Accept aliases by canonicalizing through the registry.
        if let Some(pool) = self.pools.get(name) {
            return Ok(pool.clone());
        }
        let spec = PlatformSpec::by_name(name)
            .ok_or_else(|| FarmError::UnknownPlatform(name.to_string()))?;
        self.pools
            .get(&spec.name)
            .cloned()
            .ok_or(FarmError::UnknownPlatform(name.to_string()))
    }

    /// Execute one query, blocking until a device for the platform is
    /// idle. This is the farm's RPC entry point.
    pub fn measure_blocking(&self, job: &QueryJob) -> Result<FarmResult, FarmError> {
        let pool = self.resolve(&job.platform)?;
        // Step 2: device acquisition (blocks while all boards are leased).
        let device_id = pool.idle_rx.recv().expect("pool never closes");
        // Steps 1 & 3 on the simulated clock.
        let result = Self::run_on_device(&pool.spec, job, device_id);
        // Release the lease.
        pool.idle_tx.send(device_id).expect("pool never closes");
        Ok(result)
    }

    fn run_on_device(spec: &PlatformSpec, job: &QueryJob, device_id: usize) -> FarmResult {
        let measurement = measure(&job.graph, spec, job.reps, job.seed);
        // Deployment stages vary run to run (compiler caches, board load).
        let mut r = Rng64::new(job.seed ^ 0x00DE_B10F_u64);
        let jitter = 0.9 + 0.2 * r.uniform();
        let fixed = spec.deploy.fixed_total_s() * jitter;
        let runs_s = measurement.runs.iter().sum::<f64>() / 1.0e3 + job.reps as f64 * 0.01;
        FarmResult {
            platform: spec.name.clone(),
            measurement,
            pipeline_cost_s: fixed + runs_s,
            device_id,
        }
    }

    /// Process a batch of jobs concurrently (one OS thread per job wave,
    /// bounded by device availability through the lease channels). Results
    /// come back in job order.
    pub fn submit_many(&self, jobs: &[QueryJob]) -> Vec<Result<FarmResult, FarmError>> {
        std::thread::scope(|s| {
            let handles: Vec<_> = jobs
                .iter()
                .map(|job| s.spawn(move || self.measure_blocking(job)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("no panics"))
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnlqp_models::ModelFamily;

    fn job(platform: &str, seed: u64) -> QueryJob {
        QueryJob {
            graph: ModelFamily::SqueezeNet.canonical().unwrap(),
            platform: platform.to_string(),
            reps: 10,
            seed,
        }
    }

    #[test]
    fn basic_measurement_roundtrip() {
        let farm = DeviceFarm::new(&PlatformSpec::table2_platforms(), 1);
        let r = farm
            .measure_blocking(&job("gpu-T4-trt7.1-fp32", 1))
            .unwrap();
        assert!(r.measurement.mean_ms > 0.0);
        assert!(r.pipeline_cost_s > 10.0, "pipeline {}", r.pipeline_cost_s);
    }

    #[test]
    fn unknown_platform_rejected() {
        let farm = DeviceFarm::new(&PlatformSpec::table2_platforms(), 1);
        let err = farm.measure_blocking(&job("tpu-v9", 1)).unwrap_err();
        assert_eq!(err, FarmError::UnknownPlatform("tpu-v9".into()));
    }

    #[test]
    fn aliases_route_to_canonical_pool() {
        let farm = DeviceFarm::new(&PlatformSpec::table2_platforms(), 1);
        let r = farm.measure_blocking(&job("cpu-ppl2-fp32", 1)).unwrap();
        assert_eq!(r.platform, "cpu-openppl-fp32");
    }

    #[test]
    fn leases_are_returned() {
        let farm = DeviceFarm::new(&PlatformSpec::table2_platforms(), 2);
        assert_eq!(farm.idle_devices("gpu-T4-trt7.1-fp32"), 2);
        let _ = farm
            .measure_blocking(&job("gpu-T4-trt7.1-fp32", 1))
            .unwrap();
        assert_eq!(farm.idle_devices("gpu-T4-trt7.1-fp32"), 2);
    }

    #[test]
    fn concurrent_jobs_share_devices_without_deadlock() {
        let farm = DeviceFarm::new(&PlatformSpec::table2_platforms(), 2);
        let jobs: Vec<QueryJob> = (0..8).map(|i| job("gpu-T4-trt7.1-fp32", i)).collect();
        let results = farm.submit_many(&jobs);
        assert_eq!(results.len(), 8);
        for r in results {
            let r = r.unwrap();
            assert!(r.device_id < 2);
            assert!(r.measurement.mean_ms > 0.0);
        }
    }

    #[test]
    fn mixed_platform_batch() {
        let farm = DeviceFarm::new(&PlatformSpec::table2_platforms(), 1);
        let jobs: Vec<QueryJob> = ["cpu-openppl-fp32", "gpu-T4-trt7.1-fp32", "rv1109-rknn-int8"]
            .iter()
            .enumerate()
            .filter(|(_, p)| PlatformSpec::by_name(p).is_some())
            .map(|(i, p)| job(p, i as u64))
            .collect();
        // rv1109 is not in the table2 farm; expect one error.
        let results = farm.submit_many(&jobs);
        let ok = results.iter().filter(|r| r.is_ok()).count();
        let err = results.iter().filter(|r| r.is_err()).count();
        assert_eq!((ok, err), (2, 1));
    }

    #[test]
    fn deterministic_given_seed() {
        let farm = DeviceFarm::new(&PlatformSpec::table2_platforms(), 1);
        let a = farm
            .measure_blocking(&job("gpu-T4-trt7.1-fp32", 5))
            .unwrap();
        let b = farm
            .measure_blocking(&job("gpu-T4-trt7.1-fp32", 5))
            .unwrap();
        assert_eq!(a.measurement.mean_ms, b.measurement.mean_ms);
        assert_eq!(a.pipeline_cost_s, b.pipeline_cost_s);
    }
}
