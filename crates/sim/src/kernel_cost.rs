//! Roofline kernel cost model with non-linear platform utilization.
//!
//! A kernel's execution time is `max(compute, memory) + launch`:
//!
//! * `compute = flops / (peak * utilization)` where utilization folds in
//!   occupancy saturation, channel alignment, depthwise/grouped penalties
//!   and dense-3x3 (Winograd) boosts;
//! * `memory = bytes / bandwidth`, with a cache discount applied only when
//!   the kernel runs *inside* a model (handled by the scheduler);
//! * `launch` is the per-kernel dispatch overhead.
//!
//! The deliberate non-linearities are what make FLOPs-only latency proxies
//! fail on the mobile families (Table 3) while remaining learnable from
//! graph structure — mirroring real accelerators.

use crate::fusion::{KernelDesc, KernelFamily};
use crate::platform::PlatformSpec;

/// Utilization (0..~1.5 of `BASE_EFFICIENCY`) for a kernel on a platform.
pub fn utilization(desc: &KernelDesc, p: &PlatformSpec) -> f64 {
    let mut eff = PlatformSpec::BASE_EFFICIENCY;

    // Occupancy: small outputs cannot fill the machine. Saturating curve
    // x / (x + sat) rescaled so eff -> 1 as the kernel grows.
    let x = desc.out_elems.max(1.0);
    let occupancy = x / (x + p.sat_elems);
    // Keep a floor so tiny kernels are slow but not absurd.
    eff *= 0.06 + 0.94 * occupancy;

    // Channel alignment: vector lanes / tensor cores want multiples of
    // `align`; the tail fraction runs at reduced rate.
    let align = p.align.max(1);
    let rem = desc.out_channels % align;
    if rem != 0 && desc.out_channels > 0 {
        let tail_frac = 1.0 - (rem as f64 / align as f64);
        eff *= 1.0 - p.misalign_penalty * tail_frac;
    }

    // Family- and shape-specific factors.
    match desc.family {
        KernelFamily::Conv
        | KernelFamily::ConvRelu
        | KernelFamily::ConvAdd
        | KernelFamily::ConvAddRelu
        | KernelFamily::ConvClip => {
            if desc.groups > 1 {
                // Grouped convolutions underutilize MAC arrays, the more
                // so the narrower the group: each group is an independent
                // tiny GEMM, and below the hardware tile width most lanes
                // idle. On quantized / tensor-core paths the fast kernels
                // do not support grouping at all and the runtime falls
                // back to generic ones — the reason RegNetX-200M measures
                // *slower* than ResNet18 on P4 int8 despite ~7x fewer
                // FLOPs (paper §9). Depthwise (1 channel/group) is the
                // worst case.
                let cpg = (desc.out_channels.max(1) / desc.groups.max(1)).max(1) as f64;
                let tile = p.align.max(8) as f64 * 2.0;
                let width_factor = (cpg / tile).sqrt().clamp(0.15, 1.0);
                let fallback = crate::platform::dtype_group_penalty(p.dtype);
                eff *= p.dw_efficiency * width_factor * fallback;
            } else if desc.kernel_hw == 3 && desc.stride == 1 {
                // Winograd fast path for dense 3x3 stride-1.
                eff *= p.winograd_boost;
            } else if desc.kernel_hw >= 5 {
                // Large kernels fall off the fast path.
                eff *= 0.85;
            } else if desc.kernel_hw == 1 {
                // 1x1 convs are GEMM-shaped: good but not Winograd-good.
                eff *= 0.95;
            }
        }
        KernelFamily::Gemm => {
            // Batch-1 GEMV is memory-bound and low-utilization.
            eff *= if desc.batch <= 1 { 0.55 } else { 0.9 };
        }
        _ => {
            // Element-wise / pooling / data-movement kernels: throughput is
            // bandwidth-dominated; compute efficiency hardly matters.
        }
    }

    eff.clamp(0.005, 1.0)
}

/// Compute-side time in milliseconds.
pub fn compute_ms(desc: &KernelDesc, p: &PlatformSpec) -> f64 {
    if desc.flops <= 0.0 {
        return 0.0;
    }
    let eff = utilization(desc, p);
    desc.flops / (p.peak_gflops * 1.0e9 * eff) * 1.0e3
}

/// Memory-side time in milliseconds; `cached_read_frac` of the read bytes
/// are served at cache bandwidth (the scheduler passes > 0 inside models).
pub fn memory_ms(desc: &KernelDesc, p: &PlatformSpec, cached_read_frac: f64) -> f64 {
    let bw = p.mem_bw_gbps * 1.0e9;
    let cached = desc.read_bytes * cached_read_frac;
    let cold = desc.read_bytes - cached;
    let t = (cold + desc.write_bytes) / bw + cached / (bw * p.cache_speedup);
    t * 1.0e3
}

/// Execution time (no launch) with a given cache fraction.
pub fn exec_ms(desc: &KernelDesc, p: &PlatformSpec, cached_read_frac: f64) -> f64 {
    compute_ms(desc, p).max(memory_ms(desc, p, cached_read_frac))
}

/// Latency of a kernel measured in isolation: cold memory, full launch
/// overhead. This is what a kernel-level benchmark (nn-Meter-style kernel
/// dataset) observes.
pub fn kernel_latency_isolated_ms(desc: &KernelDesc, p: &PlatformSpec) -> f64 {
    p.launch_us * 1.0e-3 + exec_ms(desc, p, 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnlqp_ir::DType;

    fn gpu() -> PlatformSpec {
        PlatformSpec::by_name("gpu-T4-trt7.1-fp32").unwrap()
    }

    fn conv_desc(out_channels: u32, out_elems: f64, k: u32, groups: u32) -> KernelDesc {
        KernelDesc {
            family: KernelFamily::ConvRelu,
            flops: 2.0 * out_elems * 64.0 * (k * k) as f64 / groups as f64,
            read_bytes: out_elems * 4.0,
            write_bytes: out_elems * 4.0,
            out_elems,
            out_channels,
            out_h: 28,
            kernel_hw: k,
            groups,
            stride: 1,
            batch: 1,
        }
    }

    #[test]
    fn aligned_channels_beat_misaligned() {
        let p = gpu();
        let aligned = conv_desc(64, 1.0e6, 3, 1);
        let misaligned = conv_desc(61, 1.0e6, 3, 1);
        assert!(utilization(&aligned, &p) > utilization(&misaligned, &p));
    }

    #[test]
    fn depthwise_is_less_efficient() {
        let p = gpu();
        let dense = conv_desc(64, 1.0e6, 3, 1);
        let dw = conv_desc(64, 1.0e6, 3, 64);
        assert!(utilization(&dw, &p) < utilization(&dense, &p) * 0.5);
    }

    #[test]
    fn small_kernels_underutilize() {
        let p = gpu();
        let small = conv_desc(64, 1.0e3, 3, 1);
        let big = conv_desc(64, 1.0e7, 3, 1);
        assert!(utilization(&small, &p) < utilization(&big, &p) * 0.6);
    }

    #[test]
    fn isolated_latency_includes_launch() {
        let p = gpu();
        let tiny = KernelDesc {
            family: KernelFamily::Relu,
            flops: 10.0,
            read_bytes: 40.0,
            write_bytes: 40.0,
            out_elems: 10.0,
            out_channels: 10,
            out_h: 1,
            kernel_hw: 0,
            groups: 1,
            stride: 1,
            batch: 1,
        };
        let lat = kernel_latency_isolated_ms(&tiny, &p);
        // Dominated by launch overhead.
        let launch = p.launch_us * 1.0e-3;
        assert!((lat - launch).abs() / launch < 0.1, "latency {lat}");
    }

    #[test]
    fn cache_discount_reduces_memory_time() {
        let p = gpu();
        let d = conv_desc(64, 1.0e6, 3, 1);
        assert!(memory_ms(&d, &p, 0.5) < memory_ms(&d, &p, 0.0));
    }

    #[test]
    fn roofline_picks_max_side() {
        let p = gpu();
        // Memory-heavy: relu on a huge tensor.
        let mem_bound = KernelDesc {
            family: KernelFamily::Relu,
            flops: 1.0e6,
            read_bytes: 4.0e8,
            write_bytes: 4.0e8,
            out_elems: 1.0e8,
            out_channels: 64,
            out_h: 1000,
            kernel_hw: 0,
            groups: 1,
            stride: 1,
            batch: 1,
        };
        let e = exec_ms(&mem_bound, &p, 0.0);
        assert!((e - memory_ms(&mem_bound, &p, 0.0)).abs() < 1e-12);
        assert!(e > compute_ms(&mem_bound, &p));
    }

    #[test]
    fn int8_platform_is_faster_than_fp32_on_compute_bound() {
        let f32p = PlatformSpec::by_name("gpu-T4-trt7.1-fp32").unwrap();
        let i8p = PlatformSpec::by_name("gpu-T4-trt7.1-int8").unwrap();
        let mut d = conv_desc(64, 1.0e6, 3, 1);
        d.flops = 1.0e10;
        // int8 descriptor carries 1/4 of the bytes.
        let mut d8 = d.clone();
        d8.read_bytes /= 4.0;
        d8.write_bytes /= 4.0;
        assert!(kernel_latency_isolated_ms(&d8, &i8p) < kernel_latency_isolated_ms(&d, &f32p));
    }

    #[test]
    fn realistic_resnet_conv_is_sub_millisecond_on_t4() {
        // 2nd-stage ResNet conv: 64ch 56x56, 3x3 from 64ch.
        let out_elems = 64.0 * 56.0 * 56.0;
        let d = KernelDesc {
            family: KernelFamily::ConvRelu,
            flops: 2.0 * out_elems * 64.0 * 9.0,
            read_bytes: (64.0 * 56.0 * 56.0 + 64.0 * 64.0 * 9.0) * 4.0,
            write_bytes: out_elems * 4.0,
            out_elems,
            out_channels: 64,
            out_h: 56,
            kernel_hw: 3,
            groups: 1,
            stride: 1,
            batch: 1,
        };
        let lat = kernel_latency_isolated_ms(&d, &gpu());
        assert!(lat > 0.01 && lat < 1.0, "conv latency {lat} ms");
    }

    #[test]
    fn utilization_uses_dtype_agnostic_flops() {
        // DType enters through bytes, not the utilization itself.
        let d = conv_desc(64, 1.0e6, 3, 1);
        let _ = DType::F32;
        let p = gpu();
        assert!(utilization(&d, &p) > 0.0 && utilization(&d, &p) <= 1.0);
    }
}
