//! Operator fusion: grouping graph nodes into execution kernels.
//!
//! Mirrors the rule set behind Appendix D: convolutions absorb a following
//! residual `Add` and/or activation when they are the sole consumer, and
//! `Sigmoid+Mul` pairs fuse into the Swish kernel. Every other node runs as
//! a single-op kernel. Fusing an element-wise epilogue means its
//! intermediate tensor is never materialized — the kernel's external memory
//! traffic shrinks, which is one of the reasons kernel-latency additivity
//! fails (§3.2).

use nnlqp_ir::{cost, DType, Graph, NodeId, OpType};
use std::collections::BTreeMap;
use std::fmt;

/// Kernel families (Appendix D, Table 8) plus standalone element-wise
/// leftovers that the greedy rules could not fuse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum KernelFamily {
    AveragePool,
    Concat,
    ConvAddRelu,
    ConvAdd,
    ConvClip,
    ConvRelu,
    Conv,
    Flatten,
    Gemm,
    GlobalAveragePool,
    MaxPool,
    ReduceMean,
    Relu,
    SigmoidMul,
    /// Residual adds whose producer is not a fusable convolution.
    Add,
    /// Unfused element-wise leftovers.
    Clip,
    Sigmoid,
    Mul,
}

impl KernelFamily {
    /// Paper-style display name.
    pub fn name(self) -> &'static str {
        match self {
            KernelFamily::AveragePool => "AveragePool",
            KernelFamily::Concat => "Concat",
            KernelFamily::ConvAddRelu => "Conv+Add+Relu",
            KernelFamily::ConvAdd => "Conv+Add",
            KernelFamily::ConvClip => "Conv+Clip",
            KernelFamily::ConvRelu => "Conv+Relu",
            KernelFamily::Conv => "Conv",
            KernelFamily::Flatten => "Flatten",
            KernelFamily::Gemm => "Gemm",
            KernelFamily::GlobalAveragePool => "GlobalAveragePool",
            KernelFamily::MaxPool => "MaxPool",
            KernelFamily::ReduceMean => "ReduceMean",
            KernelFamily::Relu => "Relu",
            KernelFamily::SigmoidMul => "Sigmoid+Mul",
            KernelFamily::Add => "Add",
            KernelFamily::Clip => "Clip",
            KernelFamily::Sigmoid => "Sigmoid",
            KernelFamily::Mul => "Mul",
        }
    }

    /// The 14 families of Table 8, in its row order.
    pub const TABLE8: [KernelFamily; 14] = [
        KernelFamily::AveragePool,
        KernelFamily::Concat,
        KernelFamily::ConvAddRelu,
        KernelFamily::ConvAdd,
        KernelFamily::ConvClip,
        KernelFamily::ConvRelu,
        KernelFamily::Conv,
        KernelFamily::Flatten,
        KernelFamily::Gemm,
        KernelFamily::GlobalAveragePool,
        KernelFamily::MaxPool,
        KernelFamily::ReduceMean,
        KernelFamily::Relu,
        KernelFamily::SigmoidMul,
    ];

    fn single(op: OpType) -> KernelFamily {
        match op {
            OpType::Conv => KernelFamily::Conv,
            OpType::Relu => KernelFamily::Relu,
            OpType::Clip => KernelFamily::Clip,
            OpType::Sigmoid => KernelFamily::Sigmoid,
            OpType::Mul => KernelFamily::Mul,
            OpType::Add => KernelFamily::Add,
            OpType::Concat => KernelFamily::Concat,
            OpType::MaxPool => KernelFamily::MaxPool,
            OpType::AveragePool => KernelFamily::AveragePool,
            OpType::GlobalAveragePool => KernelFamily::GlobalAveragePool,
            OpType::Gemm => KernelFamily::Gemm,
            OpType::Flatten => KernelFamily::Flatten,
            OpType::ReduceMean => KernelFamily::ReduceMean,
        }
    }
}

impl fmt::Display for KernelFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One fused kernel: an ordered list of node ids from the parent graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Kernel {
    /// Family after fusion.
    pub family: KernelFamily,
    /// Member nodes in topological order; the last node produces the
    /// kernel output.
    pub nodes: Vec<NodeId>,
}

/// Numeric description of a kernel — everything the cost model (and the
/// kernel-feature baselines) need.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelDesc {
    /// Family after fusion.
    pub family: KernelFamily,
    /// Total FLOPs of all member nodes.
    pub flops: f64,
    /// External bytes read (kernel inputs + weights; fused intermediates
    /// excluded).
    pub read_bytes: f64,
    /// Bytes written (final output only).
    pub write_bytes: f64,
    /// Elements of the output tensor.
    pub out_elems: f64,
    /// Channels of the output tensor.
    pub out_channels: u32,
    /// Spatial height of the output.
    pub out_h: u32,
    /// Conv/pool kernel size (0 when not applicable).
    pub kernel_hw: u32,
    /// Conv groups (1 when not applicable).
    pub groups: u32,
    /// Stride of the conv/pool member (1 otherwise).
    pub stride: u32,
    /// Batch size.
    pub batch: u32,
}

/// Fuse a graph into kernels (greedy, deterministic).
pub fn fuse(g: &Graph) -> Vec<Kernel> {
    let succ = g.successors();
    let mut assigned = vec![false; g.len()];
    let mut kernels = Vec::new();

    let sole_consumer = |id: NodeId| -> Option<NodeId> {
        let s = &succ[id.index()];
        if s.len() == 1 {
            Some(s[0])
        } else {
            None
        }
    };

    for (id, n) in g.iter() {
        if assigned[id.index()] {
            continue;
        }
        let mut nodes = vec![id];
        let mut family = KernelFamily::single(n.op);
        // A consumer may already belong to an earlier kernel (e.g. the
        // main-path conv of a projection residual absorbed the Add before
        // the shortcut conv is visited); such consumers must not be fused
        // twice.
        match n.op {
            OpType::Conv => {
                if let Some(next) = sole_consumer(id).filter(|c| !assigned[c.index()]) {
                    match g.node(next).op {
                        OpType::Relu => {
                            nodes.push(next);
                            family = KernelFamily::ConvRelu;
                        }
                        OpType::Clip => {
                            nodes.push(next);
                            family = KernelFamily::ConvClip;
                        }
                        OpType::Add => {
                            nodes.push(next);
                            family = KernelFamily::ConvAdd;
                            if let Some(after) =
                                sole_consumer(next).filter(|c| !assigned[c.index()])
                            {
                                if g.node(after).op == OpType::Relu {
                                    nodes.push(after);
                                    family = KernelFamily::ConvAddRelu;
                                }
                            }
                        }
                        _ => {}
                    }
                }
            }
            OpType::Sigmoid => {
                if let Some(next) = sole_consumer(id).filter(|c| !assigned[c.index()]) {
                    if g.node(next).op == OpType::Mul {
                        nodes.push(next);
                        family = KernelFamily::SigmoidMul;
                    }
                }
            }
            _ => {}
        }
        for m in &nodes {
            assigned[m.index()] = true;
        }
        kernels.push(Kernel { family, nodes });
    }
    kernels
}

/// Describe a kernel numerically at a given precision.
pub fn describe(g: &Graph, k: &Kernel, dt: DType) -> KernelDesc {
    let member = |id: NodeId| k.nodes.contains(&id);
    let mut flops = 0.0;
    let mut read = 0.0;
    let mut kernel_hw = 0u32;
    let mut groups = 1u32;
    let mut stride = 1u32;
    for &id in &k.nodes {
        let n = g.node(id);
        let c = cost::node_cost(g, id, dt);
        flops += c.flops;
        // External reads: inputs produced outside the kernel, plus weights.
        let weight_bytes = c.params * dt.bytes() as f64;
        let ext_input_bytes: f64 = if n.inputs.is_empty() {
            g.input_shape.bytes(dt) as f64
        } else {
            n.inputs
                .iter()
                .filter(|i| !member(**i))
                .map(|i| g.node(*i).out_shape.bytes(dt) as f64)
                .sum()
        };
        read += ext_input_bytes + weight_bytes;
        if matches!(n.op, OpType::Conv | OpType::MaxPool | OpType::AveragePool) {
            kernel_hw = kernel_hw.max(n.attrs.kernel[0]);
            stride = stride.max(n.attrs.stride[0]);
        }
        if n.op == OpType::Conv {
            groups = groups.max(n.attrs.groups);
        }
    }
    let last = g.node(*k.nodes.last().expect("kernel has nodes"));
    let out = &last.out_shape;
    KernelDesc {
        family: k.family,
        flops,
        read_bytes: read,
        write_bytes: out.bytes(dt) as f64,
        out_elems: out.numel() as f64,
        out_channels: out.channels() as u32,
        out_h: out.height() as u32,
        kernel_hw,
        groups,
        stride,
        batch: out.batch() as u32,
    }
}

/// Kernel-count statistics over a corpus (Table 8).
pub fn fusion_stats<'a>(
    graphs: impl IntoIterator<Item = &'a Graph>,
) -> BTreeMap<KernelFamily, usize> {
    let mut stats = BTreeMap::new();
    for g in graphs {
        for k in fuse(g) {
            *stats.entry(k.family).or_insert(0) += 1;
        }
    }
    stats
}

/// Dependency lists between kernels: `deps[i]` holds indices of kernels
/// that must finish before kernel `i` starts.
pub fn kernel_deps(g: &Graph, kernels: &[Kernel]) -> Vec<Vec<usize>> {
    // Map node -> kernel index.
    let mut owner = vec![usize::MAX; g.len()];
    for (ki, k) in kernels.iter().enumerate() {
        for &n in &k.nodes {
            owner[n.index()] = ki;
        }
    }
    let mut deps: Vec<Vec<usize>> = vec![Vec::new(); kernels.len()];
    for (ki, k) in kernels.iter().enumerate() {
        for &nid in &k.nodes {
            for &inp in &g.node(nid).inputs {
                let producer = owner[inp.index()];
                if producer != ki && !deps[ki].contains(&producer) {
                    deps[ki].push(producer);
                }
            }
        }
        deps[ki].sort_unstable();
    }
    deps
}

/// Topological order of the kernel DAG (Kahn's algorithm). Needed because
/// fusion can create a kernel (e.g. `Conv+Add`) whose skip-branch producer
/// appears later in creation order.
pub fn topo_order(deps: &[Vec<usize>]) -> Vec<usize> {
    let n = deps.len();
    let mut indegree = vec![0usize; n];
    let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (i, d) in deps.iter().enumerate() {
        indegree[i] = d.len();
        for &p in d {
            consumers[p].push(i);
        }
    }
    // Min-index-first queue keeps the order deterministic and close to
    // creation order.
    let mut ready: std::collections::BinaryHeap<std::cmp::Reverse<usize>> = indegree
        .iter()
        .enumerate()
        .filter(|(_, &d)| d == 0)
        .map(|(i, _)| std::cmp::Reverse(i))
        .collect();
    let mut order = Vec::with_capacity(n);
    while let Some(std::cmp::Reverse(i)) = ready.pop() {
        order.push(i);
        for &c in &consumers[i] {
            indegree[c] -= 1;
            if indegree[c] == 0 {
                ready.push(std::cmp::Reverse(c));
            }
        }
    }
    debug_assert_eq!(order.len(), n, "kernel DAG has a cycle");
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnlqp_ir::{GraphBuilder, Shape};

    fn residual_block() -> Graph {
        // conv -> relu -> conv -> add(skip) -> relu
        let mut b = GraphBuilder::new("rb", Shape::nchw(1, 16, 16, 16));
        let c1 = b.conv(None, 16, 3, 1, 1, 1).unwrap();
        let r1 = b.relu(c1).unwrap();
        let c2 = b.conv(Some(r1), 16, 3, 1, 1, 1).unwrap();
        let a = b.add(c2, r1).unwrap();
        b.relu(a).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn residual_block_fuses_to_two_kernels() {
        let g = residual_block();
        let ks = fuse(&g);
        // conv+relu is NOT fusable for c1 (relu output feeds both c2 and
        // add -> c1's relu has 2 consumers, but fusion looks at c1's sole
        // consumer which IS the relu). Check actual families:
        let fams: Vec<KernelFamily> = ks.iter().map(|k| k.family).collect();
        assert_eq!(
            fams,
            vec![KernelFamily::ConvRelu, KernelFamily::ConvAddRelu]
        );
        assert_eq!(ks[1].nodes.len(), 3);
    }

    #[test]
    fn swish_fuses() {
        let mut b = GraphBuilder::new("s", Shape::nchw(1, 8, 8, 8));
        let c = b.conv(None, 8, 1, 1, 0, 1).unwrap();
        b.swish(c).unwrap();
        let g = b.finish().unwrap();
        let ks = fuse(&g);
        // conv cannot fuse: its output feeds both sigmoid and mul.
        assert_eq!(ks.len(), 2);
        assert_eq!(ks[0].family, KernelFamily::Conv);
        assert_eq!(ks[1].family, KernelFamily::SigmoidMul);
    }

    #[test]
    fn multi_consumer_conv_stays_unfused() {
        // conv output feeding two branches must not absorb either.
        let mut b = GraphBuilder::new("mc", Shape::nchw(1, 8, 8, 8));
        let c = b.conv(None, 8, 3, 1, 1, 1).unwrap();
        let r1 = b.relu(c).unwrap();
        let r2 = b.sigmoid(c).unwrap();
        b.add(r1, r2).unwrap();
        let g = b.finish().unwrap();
        let ks = fuse(&g);
        assert_eq!(ks[0].family, KernelFamily::Conv);
        assert_eq!(ks[0].nodes.len(), 1);
    }

    #[test]
    fn every_node_in_exactly_one_kernel() {
        let g = residual_block();
        let ks = fuse(&g);
        let mut seen = vec![0; g.len()];
        for k in &ks {
            for n in &k.nodes {
                seen[n.index()] += 1;
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
    }

    #[test]
    fn fused_kernel_hides_intermediate_traffic() {
        let g = residual_block();
        let ks = fuse(&g);
        let fused = describe(&g, &ks[1], DType::F32);
        // The fused conv+add+relu reads: relu output (conv input), relu
        // output again (skip), weights. It does NOT read/write the
        // intermediate conv output or add output.
        let tensor = 16.0 * 16.0 * 16.0 * 4.0;
        let weights = (16.0 * 16.0 * 9.0 + 16.0) * 4.0;
        assert_eq!(fused.read_bytes, 2.0 * tensor + weights);
        assert_eq!(fused.write_bytes, tensor);
    }

    #[test]
    fn deps_follow_data_flow() {
        let g = residual_block();
        let ks = fuse(&g);
        let deps = kernel_deps(&g, &ks);
        assert!(deps[0].is_empty());
        assert_eq!(deps[1], vec![0]);
    }

    #[test]
    fn stats_cover_corpus() {
        let g = residual_block();
        let stats = fusion_stats([&g]);
        assert_eq!(stats[&KernelFamily::ConvRelu], 1);
        assert_eq!(stats[&KernelFamily::ConvAddRelu], 1);
    }

    #[test]
    fn mobilenet_produces_conv_clip_kernels() {
        let g = nnlqp_models::mobilenet_v2::build(
            "m",
            &nnlqp_models::mobilenet_v2::MobileNetV2Config::default(),
        )
        .unwrap();
        let stats = fusion_stats([&g]);
        assert!(stats.get(&KernelFamily::ConvClip).copied().unwrap_or(0) > 10);
    }

    #[test]
    fn table8_families_emerge_from_real_corpus() {
        use nnlqp_models::ModelFamily;
        let graphs: Vec<Graph> = nnlqp_models::family::CORPUS_FAMILIES
            .iter()
            .map(|f| f.canonical().unwrap())
            .collect();
        let _ = ModelFamily::ResNet;
        let stats = fusion_stats(graphs.iter());
        for fam in [
            KernelFamily::ConvRelu,
            KernelFamily::Conv,
            KernelFamily::ConvAddRelu,
            KernelFamily::ConvClip,
            KernelFamily::Concat,
            KernelFamily::Gemm,
            KernelFamily::MaxPool,
            KernelFamily::GlobalAveragePool,
            KernelFamily::Flatten,
            KernelFamily::SigmoidMul,
            KernelFamily::ReduceMean,
        ] {
            assert!(
                stats.get(&fam).copied().unwrap_or(0) > 0,
                "family {fam} missing from corpus"
            );
        }
    }
}
