//! The measurement harness: repeated timed runs with realistic jitter.
//!
//! NNLQ "runs each model 50 times on the target platform and takes the
//! average result as the latency ground truth" (§8.1). The simulator adds
//! multiplicative run-to-run noise plus occasional contention spikes, then
//! averages — so ground-truth labels carry measurement error exactly as
//! the paper's do.

use crate::exec::model_latency_ms;
use crate::platform::PlatformSpec;
use nnlqp_ir::{Graph, Rng64};

/// Paper-default repetition count.
pub const DEFAULT_REPS: usize = 50;

/// Result of a measurement session.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Mean latency over all runs (the ground-truth label).
    pub mean_ms: f64,
    /// Sample standard deviation.
    pub std_ms: f64,
    /// Individual timed runs.
    pub runs: Vec<f64>,
}

/// Relative run-to-run jitter (sigma of the multiplicative noise).
const JITTER_SIGMA: f64 = 0.012;
/// Probability of a contention spike on any given run.
const SPIKE_PROB: f64 = 0.03;
/// Relative magnitude of a spike.
const SPIKE_FRAC: f64 = 0.08;

/// Measure a model `reps` times. The seed controls the jitter stream, so a
/// measurement is reproducible for a given `(model, platform, seed)`.
pub fn measure(g: &Graph, p: &PlatformSpec, reps: usize, seed: u64) -> Measurement {
    let true_lat = model_latency_ms(g, p);
    let mut r = Rng64::new(seed ^ 0xACC0_FFEE_u64);
    let runs: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let mut lat = true_lat * (1.0 + r.normal(0.0, JITTER_SIGMA));
            if r.bernoulli(SPIKE_PROB) {
                lat += true_lat * SPIKE_FRAC * r.uniform();
            }
            lat.max(true_lat * 0.5)
        })
        .collect();
    let mean = runs.iter().sum::<f64>() / runs.len() as f64;
    let var = runs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (runs.len().max(2) - 1) as f64;
    Measurement {
        mean_ms: mean,
        std_ms: var.sqrt(),
        runs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnlqp_models::ModelFamily;

    fn setup() -> (Graph, PlatformSpec) {
        (
            ModelFamily::ResNet.canonical().unwrap(),
            PlatformSpec::by_name("gpu-T4-trt7.1-fp32").unwrap(),
        )
    }

    #[test]
    fn mean_close_to_true_latency() {
        let (g, p) = setup();
        let truth = model_latency_ms(&g, &p);
        let m = measure(&g, &p, 50, 7);
        assert!(
            (m.mean_ms - truth).abs() / truth < 0.02,
            "mean {} vs truth {truth}",
            m.mean_ms
        );
    }

    #[test]
    fn measurement_is_reproducible_per_seed() {
        let (g, p) = setup();
        let a = measure(&g, &p, 20, 42);
        let b = measure(&g, &p, 20, 42);
        assert_eq!(a.runs, b.runs);
        let c = measure(&g, &p, 20, 43);
        assert_ne!(a.runs, c.runs);
    }

    #[test]
    fn jitter_present_but_bounded() {
        let (g, p) = setup();
        let m = measure(&g, &p, 50, 3);
        assert!(m.std_ms > 0.0);
        assert!(m.std_ms / m.mean_ms < 0.05, "cv = {}", m.std_ms / m.mean_ms);
    }

    #[test]
    fn single_rep_supported() {
        let (g, p) = setup();
        let m = measure(&g, &p, 1, 9);
        assert_eq!(m.runs.len(), 1);
        assert!(m.mean_ms > 0.0);
    }
}
