//! # nnlqp-sim
//!
//! A multi-platform neural-network latency simulator — the substrate that
//! replaces the paper's physical device farm (T4/P4 GPUs, a Xeon CPU and
//! six ASIC families behind vendor inference stacks).
//!
//! The simulator is mechanistic, not a lookup table:
//!
//! * an **operator-fusion pass** ([`fusion`]) groups graph nodes into the
//!   same 14 kernel families the paper's fusion rules produce (Appendix D);
//! * a **roofline kernel cost model** ([`kernel_cost`]) prices each kernel
//!   as `launch + max(compute, memory)` with platform-specific non-linear
//!   utilization (channel alignment, occupancy saturation, depthwise and
//!   Winograd factors, dtype throughput);
//! * a **multi-stream list scheduler** ([`exec`]) executes the kernel DAG
//!   the way real runtimes do — pipelined launches, producer-to-consumer
//!   cache reuse and parallel branches — which makes the sum of isolated
//!   kernel latencies *exceed* the whole-model latency exactly as the
//!   paper observes (Fig. 2);
//! * a **measurement harness** ([`measure`]) adds run-to-run jitter and
//!   averages repetitions like the real NNLQ does (50 runs);
//! * a **device farm** ([`farm`]) reproduces the query pipeline of §5.1
//!   (model transformation → device acquisition → latency measurement)
//!   with worker threads, device leases and a simulated wall clock for the
//!   deployment stages.

pub mod exec;
pub mod farm;
pub mod fusion;
pub mod kernel_cost;
pub mod measure;
pub mod platform;

pub use exec::{
    execute_recorded, model_latency_ms, sum_kernel_latencies_ms, ExecutionTrace, KERNEL_TRACK_GROUP,
};
pub use farm::{DeviceFarm, FarmError, FarmResult, PipelineBreakdown, QueryJob};
pub use fusion::{fuse, fusion_stats, Kernel, KernelDesc, KernelFamily};
pub use kernel_cost::kernel_latency_isolated_ms;
pub use measure::{measure, Measurement, DEFAULT_REPS};
pub use platform::{DeployCosts, HardwareClass, Platform, PlatformSpec};
