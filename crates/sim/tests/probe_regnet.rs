//! Integration: the §9 RegNet-vs-ResNet phenomenon — grouped convolutions
//! with narrow groups squander a large FLOPs advantage on quantized GPUs.

use nnlqp_sim::{exec, PlatformSpec};

#[test]
fn regnet_flops_advantage_does_not_translate_to_latency() {
    let p = PlatformSpec::by_name("gpu-P4-trt7.1-int8").unwrap();
    let regnet = nnlqp_models::regnet::build("r", &Default::default()).unwrap();
    let resnet = nnlqp_models::resnet::build("r", &Default::default()).unwrap();
    let fr = nnlqp_ir::cost::graph_cost(&regnet, p.dtype).flops;
    let fs = nnlqp_ir::cost::graph_cost(&resnet, p.dtype).flops;
    let lr = exec::model_latency_ms(&regnet, &p);
    let ls = exec::model_latency_ms(&resnet, &p);
    // ~7x fewer FLOPs...
    assert!(fs / fr > 5.0, "flops ratio {}", fs / fr);
    // ...but latency within ~25% of ResNet18 (the paper measures RegNet
    // *slower*; the simulator reproduces the collapse of the advantage).
    assert!(
        lr > 0.6 * ls,
        "regnet {lr} ms vs resnet {ls} ms — grouped-conv penalty too weak"
    );
    let flops_ratio = fs / fr;
    let latency_ratio = ls / lr;
    assert!(
        latency_ratio < flops_ratio / 3.0,
        "latency ratio {latency_ratio} should collapse well below flops ratio {flops_ratio}"
    );
}
