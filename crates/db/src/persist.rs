//! Snapshot persistence: the database serializes to a single binary blob
//! (and to JSON for inspection) and reloads with all indices rebuilt.

use crate::database::Database;
use crate::records::*;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::io;
use std::path::Path;

const MAGIC: &[u8; 4] = b"NQDB";
const VERSION: u8 = 1;

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes) -> io::Result<String> {
    if buf.remaining() < 4 {
        return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "string len"));
    }
    let n = buf.get_u32_le() as usize;
    if buf.remaining() < n {
        return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "string body"));
    }
    String::from_utf8(buf.copy_to_bytes(n).to_vec())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "utf8"))
}

/// Serialize the whole database to a binary snapshot.
pub fn to_bytes(db: &Database) -> Bytes {
    let inner = db.read_inner();
    let mut buf = BytesMut::with_capacity(1024);
    buf.put_slice(MAGIC);
    buf.put_u8(VERSION);
    buf.put_u64_le(inner.seq);

    buf.put_u32_le(inner.models.len() as u32);
    for m in &inner.models {
        buf.put_u64_le(m.graph_hash);
        put_str(&mut buf, &m.name);
        buf.put_u32_le(m.graph_bytes.len() as u32);
        buf.put_slice(&m.graph_bytes);
        buf.put_u64_le(m.created_seq);
    }

    buf.put_u32_le(inner.platforms.len() as u32);
    for p in &inner.platforms {
        put_str(&mut buf, &p.hardware);
        put_str(&mut buf, &p.software);
        put_str(&mut buf, &p.data_type);
    }

    buf.put_u32_le(inner.latencies.len() as u32);
    for l in &inner.latencies {
        buf.put_u32_le(l.model_id.0);
        buf.put_u32_le(l.platform_id.0);
        buf.put_u32_le(l.batch_size);
        buf.put_f64_le(l.cost_ms);
        buf.put_f64_le(l.mem_access);
        buf.put_u64_le(l.host_mem);
        buf.put_u64_le(l.device_mem);
        buf.put_u64_le(l.created_seq);
    }
    buf.freeze()
}

/// Rebuild a database (and all its indices) from a snapshot.
pub fn from_bytes(mut buf: Bytes) -> io::Result<Database> {
    let bad = |what: &str| io::Error::new(io::ErrorKind::InvalidData, what.to_string());
    if buf.remaining() < 13 {
        return Err(bad("truncated header"));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(bad("bad magic"));
    }
    if buf.get_u8() != VERSION {
        return Err(bad("unsupported version"));
    }
    let seq = buf.get_u64_le();

    let db = Database::new();
    {
        let mut inner = db.write_inner();
        inner.seq = seq;

        let n_models = buf.get_u32_le() as usize;
        for i in 0..n_models {
            if buf.remaining() < 8 {
                return Err(bad("truncated model"));
            }
            let graph_hash = buf.get_u64_le();
            let name = get_str(&mut buf)?;
            if buf.remaining() < 4 {
                return Err(bad("truncated graph len"));
            }
            let blen = buf.get_u32_le() as usize;
            if buf.remaining() < blen + 8 {
                return Err(bad("truncated graph bytes"));
            }
            let graph_bytes = buf.copy_to_bytes(blen).to_vec();
            let created_seq = buf.get_u64_le();
            let id = ModelId(i as u32);
            inner.by_hash.insert(graph_hash, id);
            inner.models.push(ModelRecord {
                id,
                graph_hash,
                name,
                graph_bytes,
                created_seq,
            });
        }

        if buf.remaining() < 4 {
            return Err(bad("truncated platform count"));
        }
        let n_platforms = buf.get_u32_le() as usize;
        for i in 0..n_platforms {
            let hardware = get_str(&mut buf)?;
            let software = get_str(&mut buf)?;
            let data_type = get_str(&mut buf)?;
            let id = PlatformId(i as u32);
            inner
                .by_platform_key
                .insert((hardware.clone(), software.clone(), data_type.clone()), id);
            inner.platforms.push(PlatformRecord {
                id,
                hardware,
                software,
                data_type,
            });
        }

        if buf.remaining() < 4 {
            return Err(bad("truncated latency count"));
        }
        let n_lat = buf.get_u32_le() as usize;
        for i in 0..n_lat {
            if buf.remaining() < 4 * 3 + 8 * 5 {
                return Err(bad("truncated latency row"));
            }
            let model_id = ModelId(buf.get_u32_le());
            let platform_id = PlatformId(buf.get_u32_le());
            let batch_size = buf.get_u32_le();
            let rec = LatencyRecord {
                id: LatencyId(i as u32),
                model_id,
                platform_id,
                batch_size,
                cost_ms: buf.get_f64_le(),
                mem_access: buf.get_f64_le(),
                host_mem: buf.get_u64_le(),
                device_mem: buf.get_u64_le(),
                created_seq: buf.get_u64_le(),
            };
            if model_id.0 as usize >= inner.models.len()
                || platform_id.0 as usize >= inner.platforms.len()
            {
                return Err(bad("dangling foreign key"));
            }
            inner
                .by_query
                .insert((model_id, platform_id, batch_size), rec.id);
            inner.latencies.push(rec);
        }
    }
    Ok(db)
}

/// Human-readable JSON export of the whole database (graphs decoded back
/// to their JSON form). Intended for inspection and external tooling, not
/// as the storage format.
pub fn export_json(db: &Database) -> serde_json::Value {
    let inner = db.read_inner();
    serde_json::json!({
        "models": inner.models.iter().map(|m| serde_json::json!({
            "id": m.id.0,
            "graph_hash": format!("{:016x}", m.graph_hash),
            "name": m.name,
            "bytes": m.graph_bytes.len(),
        })).collect::<Vec<_>>(),
        "platforms": inner.platforms.iter().map(|p| serde_json::json!({
            "id": p.id.0,
            "hardware": p.hardware,
            "software": p.software,
            "data_type": p.data_type,
        })).collect::<Vec<_>>(),
        "latencies": inner.latencies.iter().map(|l| serde_json::json!({
            "id": l.id.0,
            "model_id": l.model_id.0,
            "platform_id": l.platform_id.0,
            "batch_size": l.batch_size,
            "cost_ms": l.cost_ms,
        })).collect::<Vec<_>>(),
    })
}

/// Save a snapshot to disk atomically: bytes go to a temporary file in
/// the same directory (so the rename cannot cross filesystems), are
/// flushed, and the temp file is renamed over `path`. A crash mid-write
/// leaves any existing snapshot at `path` untouched.
pub fn save(db: &Database, path: &Path) -> io::Result<()> {
    use std::io::Write;
    let bytes = to_bytes(db);
    let file_name = path
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("snapshot");
    let tmp = match path.parent() {
        Some(dir) if !dir.as_os_str().is_empty() => dir.to_path_buf(),
        _ => std::path::PathBuf::from("."),
    }
    .join(format!(".{file_name}.tmp-{}", std::process::id()));
    let write_tmp = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()
    })();
    let result = write_tmp.and_then(|()| std::fs::rename(&tmp, path));
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Load a snapshot from disk.
pub fn load(path: &Path) -> io::Result<Database> {
    from_bytes(Bytes::from(std::fs::read(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnlqp_hash::graph_hash;
    use nnlqp_ir::{Graph, GraphBuilder, Shape};

    fn graph(c: u32) -> Graph {
        let mut b = GraphBuilder::new(format!("g{c}"), Shape::nchw(1, 3, 16, 16));
        let conv = b.conv(None, c, 3, 1, 1, 1).unwrap();
        b.relu(conv).unwrap();
        b.finish().unwrap()
    }

    fn populated() -> Database {
        let db = Database::new();
        let pid = db.get_or_create_platform("T4", "trt7.1", "fp32");
        let pid2 = db.get_or_create_platform("cpu", "openppl", "fp32");
        for c in [8u32, 16, 32] {
            let (mid, _) = db.insert_model(&graph(c));
            db.insert_latency(mid, pid, 1, c as f64, 1e5, 10, 20)
                .unwrap();
            db.insert_latency(mid, pid2, 4, c as f64 * 3.0, 1e5, 10, 20)
                .unwrap();
        }
        db
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let db = populated();
        let db2 = from_bytes(to_bytes(&db)).unwrap();
        assert_eq!(db.stats(), db2.stats());
        // Indices rebuilt: cache hits still work.
        let hash = graph_hash(&graph(16));
        let pid = db2.get_or_create_platform("T4", "trt7.1", "fp32");
        assert_eq!(db2.lookup_latency(hash, pid, 1).unwrap().cost_ms, 16.0);
        // Graphs decode.
        let m = db2.model_by_hash(hash).unwrap();
        assert_eq!(db2.load_graph(m.id).unwrap(), graph(16));
    }

    #[test]
    fn disk_roundtrip() {
        let db = populated();
        let dir = std::env::temp_dir().join("nnlqp-db-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snapshot.nqdb");
        save(&db, &path).unwrap();
        let db2 = load(&path).unwrap();
        assert_eq!(db.stats(), db2.stats());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_leaves_no_temp_files_and_overwrites_atomically() {
        let db = populated();
        let dir = std::env::temp_dir().join("nnlqp-db-atomic-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snapshot.nqdb");
        save(&db, &path).unwrap();
        // Overwriting an existing snapshot also succeeds and cleans up.
        save(&db, &path).unwrap();
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(std::result::Result::ok)
            .filter(|e| e.file_name().to_string_lossy().contains("tmp"))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        assert_eq!(load(&path).unwrap().stats(), db.stats());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_file_on_disk_fails_load_cleanly() {
        // A crash that managed to truncate the target (e.g. a pre-atomic
        // snapshot) must surface as an error from load, not a panic or a
        // silently empty database.
        let db = populated();
        let dir = std::env::temp_dir().join("nnlqp-db-truncated-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snapshot.nqdb");
        save(&db, &path).unwrap();
        let full = std::fs::read(&path).unwrap();
        for cut in [3usize, full.len() / 2, full.len() - 1] {
            std::fs::write(&path, &full[..cut]).unwrap();
            assert!(load(&path).is_err(), "cut {cut} loaded");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_snapshots_rejected() {
        let raw = to_bytes(&populated());
        for cut in [0usize, 4, 12, raw.len() / 3, raw.len() - 3] {
            assert!(from_bytes(raw.slice(0..cut)).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn bad_magic_rejected() {
        let mut raw = to_bytes(&populated()).to_vec();
        raw[0] = b'Z';
        assert!(from_bytes(Bytes::from(raw)).is_err());
    }

    #[test]
    fn json_export_lists_everything() {
        let db = populated();
        let v = export_json(&db);
        assert_eq!(v["models"].as_array().unwrap().len(), 3);
        assert_eq!(v["platforms"].as_array().unwrap().len(), 2);
        assert_eq!(v["latencies"].as_array().unwrap().len(), 6);
        assert_eq!(v["models"][0]["graph_hash"].as_str().unwrap().len(), 16);
    }

    #[test]
    fn empty_database_roundtrips() {
        let db = Database::new();
        let db2 = from_bytes(to_bytes(&db)).unwrap();
        assert_eq!(db2.stats().models, 0);
    }
}
