//! The concurrent, hash-indexed store.

use crate::compact::CompactionStats;
use crate::engine::{DbMetrics, DurabilityStats, DurableOptions, StorageEngine};
use crate::records::*;
use crate::recover;
use crate::wal::WalOp;
use nnlqp_hash::graph_hash;
use nnlqp_ir::{serialize, Graph};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::fmt;
use std::io;
use std::path::Path;

/// Database errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// A foreign key referenced a missing row.
    ForeignKey(&'static str),
    /// Stored graph bytes failed to decode.
    Corrupt(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::ForeignKey(t) => write!(f, "foreign key violation into table {t}"),
            DbError::Corrupt(d) => write!(f, "corrupt record: {d}"),
        }
    }
}

impl std::error::Error for DbError {}

/// Aggregate statistics (the "Up to now, our NNLQ stores..." numbers of
/// §8.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DbStats {
    /// Rows in the model table.
    pub models: usize,
    /// Rows in the platform table.
    pub platforms: usize,
    /// Rows in the latency table.
    pub latencies: usize,
    /// Estimated total storage in bytes.
    pub total_bytes: usize,
}

#[derive(Default)]
pub(crate) struct Inner {
    pub(crate) models: Vec<ModelRecord>,
    pub(crate) platforms: Vec<PlatformRecord>,
    pub(crate) latencies: Vec<LatencyRecord>,
    /// Unique hash index over models.
    pub(crate) by_hash: HashMap<u64, ModelId>,
    /// Unique (hardware, software, dtype) index over platforms.
    pub(crate) by_platform_key: HashMap<(String, String, String), PlatformId>,
    /// Secondary index (model, platform, batch) -> latest latency row.
    pub(crate) by_query: HashMap<(ModelId, PlatformId, u32), LatencyId>,
    pub(crate) seq: u64,
}

/// The evolving database. Cloneable handles are not provided; share via
/// `&Database` or `Arc<Database>`.
///
/// By default purely in-memory; [`Database::open_durable`] attaches the
/// sharded WAL storage engine so every mutation hits the disk before it
/// becomes visible, while reads keep being served from memory.
#[derive(Default)]
pub struct Database {
    inner: RwLock<Inner>,
    engine: Option<StorageEngine>,
}

impl Database {
    /// Empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Open (or create) a durable store: replay the manifest's snapshot
    /// segments and the WAL tails into memory, then attach the engine so
    /// subsequent writes are logged. A lossy replay (torn tail, global
    /// sequence gap) is repaired on the spot by folding the recovered
    /// prefix into fresh segments, so the damage cannot compound.
    pub fn open_durable(opts: DurableOptions) -> io::Result<Database> {
        Self::open_durable_with_metrics(opts, DbMetrics::standalone())
    }

    /// [`Database::open_durable`] with engine counters shared through a
    /// metrics registry (see [`DbMetrics::registered`]).
    pub fn open_durable_with_metrics(
        opts: DurableOptions,
        metrics: DbMetrics,
    ) -> io::Result<Database> {
        let (engine, recovered) = StorageEngine::open_with_metrics(&opts, metrics)?;
        let mut db = match &recovered {
            Some(rec) => recover::build_database(rec)?,
            None => Database::new(),
        };
        db.engine = Some(engine);
        if let Some(rec) = &recovered {
            if !rec.stats.clean() {
                db.compact()?;
            }
        }
        Ok(db)
    }

    /// Whether a storage engine is attached.
    pub fn is_durable(&self) -> bool {
        self.engine.is_some()
    }

    /// The durable store directory, when one is attached.
    pub fn durable_dir(&self) -> Option<&Path> {
        self.engine.as_ref().map(StorageEngine::root)
    }

    /// WAL bytes appended since the last compaction (0 when in-memory).
    pub fn wal_bytes_pending(&self) -> u64 {
        self.engine.as_ref().map_or(0, StorageEngine::pending_bytes)
    }

    /// Storage-engine statistics, `None` when in-memory.
    pub fn durability_stats(&self) -> Option<DurabilityStats> {
        self.engine.as_ref().map(|e| DurabilityStats {
            dir: e.root().to_path_buf(),
            shards: e.n_shards(),
            wal_bytes_pending: e.pending_bytes(),
            wal_appends: e.metrics().wal_appends.get(),
            compactions: e.metrics().compactions.get(),
        })
    }

    /// Fold the store into fresh snapshot segments and reset the WALs.
    /// A no-op returning zeroed stats for an in-memory database. Blocks
    /// writers for the duration (reads of the already-published state
    /// proceed until the lock is taken).
    pub fn compact(&self) -> io::Result<CompactionStats> {
        match &self.engine {
            Some(e) => {
                let inner = self.inner.write();
                e.compact_from(&inner)
            }
            None => Ok(CompactionStats::default()),
        }
    }

    /// Log one op to the engine, if attached. Must run under the write
    /// lock, before the matching in-memory insert is published.
    fn log(&self, inner: &Inner, op: WalOp) {
        if let Some(e) = &self.engine {
            e.append(e.route(&op, inner), op);
        }
    }

    /// Insert a model (deduplicated by graph hash). Returns the id and
    /// whether the row was newly created.
    pub fn insert_model(&self, g: &Graph) -> (ModelId, bool) {
        let hash = graph_hash(g);
        let mut inner = self.inner.write();
        if let Some(&id) = inner.by_hash.get(&hash) {
            return (id, false);
        }
        let id = ModelId(inner.models.len() as u32);
        let seq = inner.seq;
        inner.seq += 1;
        let rec = ModelRecord {
            id,
            graph_hash: hash,
            name: g.name.clone(),
            graph_bytes: serialize::encode(g).to_vec(),
            created_seq: seq,
        };
        self.log(&inner, WalOp::Model(rec.clone()));
        inner.models.push(rec);
        inner.by_hash.insert(hash, id);
        (id, true)
    }

    /// Look up a model by its graph hash.
    pub fn model_by_hash(&self, hash: u64) -> Option<ModelRecord> {
        let inner = self.inner.read();
        inner
            .by_hash
            .get(&hash)
            .map(|id| inner.models[id.0 as usize].clone())
    }

    /// Decode a stored model back into a graph.
    pub fn load_graph(&self, id: ModelId) -> Result<Graph, DbError> {
        let inner = self.inner.read();
        let rec = inner
            .models
            .get(id.0 as usize)
            .ok_or(DbError::ForeignKey("model"))?;
        serialize::decode(bytes::Bytes::from(rec.graph_bytes.clone()))
            .map_err(|e| DbError::Corrupt(e.to_string()))
    }

    /// Get or create a platform row.
    pub fn get_or_create_platform(
        &self,
        hardware: &str,
        software: &str,
        data_type: &str,
    ) -> PlatformId {
        let key = (
            hardware.to_string(),
            software.to_string(),
            data_type.to_string(),
        );
        let mut inner = self.inner.write();
        if let Some(&id) = inner.by_platform_key.get(&key) {
            return id;
        }
        let id = PlatformId(inner.platforms.len() as u32);
        let rec = PlatformRecord {
            id,
            hardware: key.0.clone(),
            software: key.1.clone(),
            data_type: key.2.clone(),
        };
        self.log(&inner, WalOp::Platform(rec.clone()));
        inner.platforms.push(rec);
        inner.by_platform_key.insert(key, id);
        id
    }

    /// Insert a latency measurement. Both foreign keys are checked.
    #[allow(clippy::too_many_arguments)]
    pub fn insert_latency(
        &self,
        model_id: ModelId,
        platform_id: PlatformId,
        batch_size: u32,
        cost_ms: f64,
        mem_access: f64,
        host_mem: u64,
        device_mem: u64,
    ) -> Result<LatencyId, DbError> {
        let mut inner = self.inner.write();
        if model_id.0 as usize >= inner.models.len() {
            return Err(DbError::ForeignKey("model"));
        }
        if platform_id.0 as usize >= inner.platforms.len() {
            return Err(DbError::ForeignKey("platform"));
        }
        let id = LatencyId(inner.latencies.len() as u32);
        let seq = inner.seq;
        inner.seq += 1;
        let rec = LatencyRecord {
            id,
            model_id,
            platform_id,
            batch_size,
            cost_ms,
            mem_access,
            host_mem,
            device_mem,
            created_seq: seq,
        };
        self.log(&inner, WalOp::Latency(rec));
        inner.latencies.push(rec);
        inner
            .by_query
            .insert((model_id, platform_id, batch_size), id);
        Ok(id)
    }

    /// Atomic check-then-insert for the query miss path. When two callers
    /// race on the same (model, platform, batch) key, the first insert
    /// wins and the loser is handed the winner's row — so every caller
    /// returns the same latency that later cache hits will serve.
    ///
    /// Returns the authoritative record and whether this call inserted it.
    #[allow(clippy::too_many_arguments)]
    pub fn get_or_insert_latency(
        &self,
        model_id: ModelId,
        platform_id: PlatformId,
        batch_size: u32,
        cost_ms: f64,
        mem_access: f64,
        host_mem: u64,
        device_mem: u64,
    ) -> Result<(LatencyRecord, bool), DbError> {
        let mut inner = self.inner.write();
        if model_id.0 as usize >= inner.models.len() {
            return Err(DbError::ForeignKey("model"));
        }
        if platform_id.0 as usize >= inner.platforms.len() {
            return Err(DbError::ForeignKey("platform"));
        }
        if let Some(&lid) = inner.by_query.get(&(model_id, platform_id, batch_size)) {
            return Ok((inner.latencies[lid.0 as usize], false));
        }
        let id = LatencyId(inner.latencies.len() as u32);
        let seq = inner.seq;
        inner.seq += 1;
        let rec = LatencyRecord {
            id,
            model_id,
            platform_id,
            batch_size,
            cost_ms,
            mem_access,
            host_mem,
            device_mem,
            created_seq: seq,
        };
        self.log(&inner, WalOp::Latency(rec));
        inner.latencies.push(rec);
        inner
            .by_query
            .insert((model_id, platform_id, batch_size), id);
        Ok((rec, true))
    }

    /// The cache-hit path of NNLQ: does the database already hold a
    /// latency for this graph hash + platform + batch?
    pub fn lookup_latency(
        &self,
        hash: u64,
        platform_id: PlatformId,
        batch_size: u32,
    ) -> Option<LatencyRecord> {
        let inner = self.inner.read();
        let model_id = *inner.by_hash.get(&hash)?;
        let lid = *inner.by_query.get(&(model_id, platform_id, batch_size))?;
        Some(inner.latencies[lid.0 as usize])
    }

    /// All latency rows for a platform (training-set extraction).
    pub fn latencies_for_platform(&self, platform_id: PlatformId) -> Vec<LatencyRecord> {
        let inner = self.inner.read();
        inner
            .latencies
            .iter()
            .filter(|l| l.platform_id == platform_id)
            .copied()
            .collect()
    }

    /// All platform rows.
    pub fn platforms(&self) -> Vec<PlatformRecord> {
        self.inner.read().platforms.clone()
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> DbStats {
        let inner = self.inner.read();
        let model_bytes: usize = inner
            .models
            .iter()
            .map(super::records::ModelRecord::storage_bytes)
            .sum();
        DbStats {
            models: inner.models.len(),
            platforms: inner.platforms.len(),
            latencies: inner.latencies.len(),
            total_bytes: model_bytes
                + inner.platforms.len() * PlatformRecord::STORAGE_BYTES
                + inner.latencies.len() * LatencyRecord::STORAGE_BYTES,
        }
    }

    pub(crate) fn read_inner(&self) -> parking_lot::RwLockReadGuard<'_, Inner> {
        self.inner.read()
    }

    pub(crate) fn write_inner(&self) -> parking_lot::RwLockWriteGuard<'_, Inner> {
        self.inner.write()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nnlqp_ir::{GraphBuilder, Shape};

    fn graph(c: u32) -> Graph {
        let mut b = GraphBuilder::new(format!("g{c}"), Shape::nchw(1, 3, 16, 16));
        let conv = b.conv(None, c, 3, 1, 1, 1).unwrap();
        b.relu(conv).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn insert_and_dedup_models() {
        let db = Database::new();
        let (id1, fresh1) = db.insert_model(&graph(8));
        let (id2, fresh2) = db.insert_model(&graph(8));
        let (id3, fresh3) = db.insert_model(&graph(16));
        assert!(fresh1 && !fresh2 && fresh3);
        assert_eq!(id1, id2);
        assert_ne!(id1, id3);
        assert_eq!(db.stats().models, 2);
    }

    #[test]
    fn load_graph_roundtrip() {
        let db = Database::new();
        let g = graph(24);
        let (id, _) = db.insert_model(&g);
        assert_eq!(db.load_graph(id).unwrap(), g);
    }

    #[test]
    fn platform_get_or_create_idempotent() {
        let db = Database::new();
        let a = db.get_or_create_platform("T4", "trt7.1", "fp32");
        let b = db.get_or_create_platform("T4", "trt7.1", "fp32");
        let c = db.get_or_create_platform("T4", "trt7.1", "int8");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(db.stats().platforms, 2);
    }

    #[test]
    fn latency_cache_hit_path() {
        let db = Database::new();
        let g = graph(32);
        let (mid, _) = db.insert_model(&g);
        let pid = db.get_or_create_platform("T4", "trt7.1", "fp32");
        db.insert_latency(mid, pid, 1, 1.25, 1e6, 0, 0).unwrap();
        let hash = graph_hash(&g);
        let hit = db.lookup_latency(hash, pid, 1).unwrap();
        assert_eq!(hit.cost_ms, 1.25);
        // Different batch misses.
        assert!(db.lookup_latency(hash, pid, 8).is_none());
        // Different platform misses.
        let pid2 = db.get_or_create_platform("P4", "trt7.1", "fp32");
        assert!(db.lookup_latency(hash, pid2, 1).is_none());
    }

    #[test]
    fn newest_latency_wins_on_requery() {
        let db = Database::new();
        let (mid, _) = db.insert_model(&graph(8));
        let pid = db.get_or_create_platform("cpu", "openppl", "fp32");
        db.insert_latency(mid, pid, 1, 5.0, 0.0, 0, 0).unwrap();
        db.insert_latency(mid, pid, 1, 4.2, 0.0, 0, 0).unwrap();
        let hash = graph_hash(&graph(8));
        assert_eq!(db.lookup_latency(hash, pid, 1).unwrap().cost_ms, 4.2);
        assert_eq!(db.stats().latencies, 2); // history preserved
    }

    #[test]
    fn get_or_insert_first_writer_wins() {
        let db = Database::new();
        let (mid, _) = db.insert_model(&graph(8));
        let pid = db.get_or_create_platform("T4", "trt7.1", "fp32");
        let (a, fresh_a) = db
            .get_or_insert_latency(mid, pid, 1, 5.0, 0.0, 0, 0)
            .unwrap();
        let (b, fresh_b) = db
            .get_or_insert_latency(mid, pid, 1, 4.2, 0.0, 0, 0)
            .unwrap();
        assert!(fresh_a && !fresh_b);
        assert_eq!(a.cost_ms, 5.0);
        assert_eq!(b.cost_ms, 5.0); // loser gets the winner's row
        assert_eq!(db.stats().latencies, 1);
        // The lookup path serves the same row.
        let hash = graph_hash(&graph(8));
        assert_eq!(db.lookup_latency(hash, pid, 1).unwrap().cost_ms, 5.0);
        // Foreign keys still enforced.
        assert!(db
            .get_or_insert_latency(ModelId(9), pid, 1, 1.0, 0.0, 0, 0)
            .is_err());
    }

    #[test]
    fn foreign_keys_enforced() {
        let db = Database::new();
        let err = db
            .insert_latency(ModelId(0), PlatformId(0), 1, 1.0, 0.0, 0, 0)
            .unwrap_err();
        assert_eq!(err, DbError::ForeignKey("model"));
        let (mid, _) = db.insert_model(&graph(8));
        let err = db
            .insert_latency(mid, PlatformId(5), 1, 1.0, 0.0, 0, 0)
            .unwrap_err();
        assert_eq!(err, DbError::ForeignKey("platform"));
    }

    #[test]
    fn concurrent_inserts_and_lookups() {
        use std::sync::Arc;
        let db = Arc::new(Database::new());
        let pid = db.get_or_create_platform("T4", "trt7.1", "fp32");
        std::thread::scope(|s| {
            for t in 0..8 {
                let db = db.clone();
                s.spawn(move || {
                    for i in 0..50 {
                        let g = graph(8 + ((t * 50 + i) % 64) * 2);
                        let (mid, _) = db.insert_model(&g);
                        db.insert_latency(mid, pid, 1, 1.0, 0.0, 0, 0).unwrap();
                        let _ = db.lookup_latency(graph_hash(&g), pid, 1);
                    }
                });
            }
        });
        // 64 distinct graphs; all inserts deduplicated.
        assert_eq!(db.stats().models, 64);
        assert_eq!(db.stats().latencies, 400);
    }

    fn temp_store(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("nnlqp-db-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn populate(db: &Database) {
        let pid = db.get_or_create_platform("T4", "trt7.1", "fp32");
        let pid2 = db.get_or_create_platform("cpu", "openppl", "fp32");
        for c in [8u32, 16, 24, 32, 40] {
            let (mid, _) = db.insert_model(&graph(c));
            db.insert_latency(mid, pid, 1, f64::from(c) * 0.1, 1e5, 2, 3)
                .unwrap();
            db.insert_latency(mid, pid2, 8, f64::from(c) * 0.4, 2e5, 4, 5)
                .unwrap();
        }
    }

    #[test]
    fn durable_store_round_trips_identically() {
        let dir = temp_store("roundtrip");
        let opts = crate::DurableOptions::new(&dir).shards(3);
        let baseline = Database::new();
        populate(&baseline);
        {
            let db = Database::open_durable(opts.clone()).unwrap();
            assert!(db.is_durable());
            assert_eq!(db.durable_dir(), Some(dir.as_path()));
            populate(&db);
            assert!(db.wal_bytes_pending() > 0);
        }
        // Reopen from the WAL alone (no compaction ran).
        let db = Database::open_durable(opts.clone()).unwrap();
        assert_eq!(
            crate::persist::export_json(&db),
            crate::persist::export_json(&baseline)
        );
        // Compact, reopen from segments, still byte-identical.
        let stats = db.compact().unwrap();
        assert!(stats.frames > 0);
        assert_eq!(db.wal_bytes_pending(), 0);
        drop(db);
        let db = Database::open_durable(opts).unwrap();
        assert_eq!(
            crate::persist::export_json(&db),
            crate::persist::export_json(&baseline)
        );
        // The store stays writable after a segment-based recovery.
        let (mid, fresh) = db.insert_model(&graph(48));
        assert!(fresh);
        let pid = db.get_or_create_platform("T4", "trt7.1", "fp32");
        db.insert_latency(mid, pid, 1, 9.0, 0.0, 0, 0).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_wal_tail_repairs_on_open() {
        let dir = temp_store("torn");
        let opts = crate::DurableOptions::new(&dir).shards(2);
        {
            let db = Database::open_durable(opts.clone()).unwrap();
            populate(&db);
        }
        // Tear a few bytes off one shard's WAL.
        let mut torn = None;
        for i in 0..2 {
            let p = crate::shard::wal_path(&dir, i, 1);
            let raw = std::fs::read(&p).unwrap();
            if raw.len() > 8 {
                std::fs::write(&p, &raw[..raw.len() - 5]).unwrap();
                torn = Some(i);
                break;
            }
        }
        assert!(torn.is_some());
        let metrics = crate::DbMetrics::standalone();
        let db = Database::open_durable_with_metrics(opts.clone(), metrics.clone()).unwrap();
        assert!(metrics.recovery_truncated_bytes.get() > 0);
        // Repair compaction ran on open, so a reopen is clean.
        assert!(metrics.compactions.get() >= 1);
        let report = crate::verify_store(&dir).unwrap();
        assert!(report.clean(), "{report:?}");
        drop(db);
        let m2 = crate::DbMetrics::standalone();
        let _db = Database::open_durable_with_metrics(opts, m2.clone()).unwrap();
        assert_eq!(m2.recovery_truncated_bytes.get(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stats_storage_accounting() {
        let db = Database::new();
        let (mid, _) = db.insert_model(&graph(8));
        let pid = db.get_or_create_platform("T4", "trt7.1", "fp32");
        db.insert_latency(mid, pid, 1, 1.0, 0.0, 0, 0).unwrap();
        let s = db.stats();
        assert_eq!(
            s.total_bytes,
            db.model_by_hash(graph_hash(&graph(8)))
                .unwrap()
                .storage_bytes()
                + 152
                + 52
        );
    }
}
