//! Hash partitioning and immutable snapshot segments.
//!
//! Records are partitioned by the 8-byte graph hash — the natural shard
//! key, since queries are point lookups on it. Model and latency rows
//! live on `shard_of(graph_hash)`; the tiny platform table lives on the
//! meta shard (shard 0). Each shard owns an append-only WAL plus at most
//! one *snapshot segment*: an immutable, checksummed file the compactor
//! folds sealed WAL frames into, carrying a graph-hash → byte-offset
//! index so a point lookup decodes exactly one frame instead of scanning
//! the log.

use crate::records::ModelRecord;
use crate::wal::{self, Frame, WalOp};
use bytes::{BufMut, Bytes, BytesMut};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// The shard that owns the (global, tiny) platform table.
pub const META_SHARD: usize = 0;

/// Which shard owns a graph hash.
pub fn shard_of(graph_hash: u64, n_shards: usize) -> usize {
    debug_assert!(n_shards > 0);
    (graph_hash % n_shards as u64) as usize
}

/// `root/shard-NNN`.
pub fn shard_dir(root: &Path, shard: usize) -> PathBuf {
    root.join(format!("shard-{shard:03}"))
}

/// Current WAL file of a shard at generation `gen`.
pub fn wal_path(root: &Path, shard: usize, gen: u64) -> PathBuf {
    shard_dir(root, shard).join(format!("wal-{gen:06}.log"))
}

/// Snapshot segment of a shard at generation `gen`.
pub fn seg_path(root: &Path, shard: usize, gen: u64) -> PathBuf {
    shard_dir(root, shard).join(format!("seg-{gen:06}.snap"))
}

const MAGIC: &[u8; 4] = b"NQSG";
const VERSION: u8 = 1;

fn bad(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("segment: {what}"))
}

/// Serialize `frames` into the segment byte format:
///
/// ```text
/// [NQSG][u8 ver][u64 frames_len][u32 n_frames]
/// [frames: WAL frame encoding, back to back]
/// [u32 n_index][(u64 graph_hash, u64 offset) ...][u64 index checksum]
/// ```
///
/// Offsets are relative to the frames region and point at model frames —
/// the per-shard hash index that keeps point lookups O(1).
pub fn encode_segment(frames: &[Frame]) -> Bytes {
    let mut body: Vec<u8> = Vec::new();
    let mut index: Vec<(u64, u64)> = Vec::new();
    for f in frames {
        if let WalOp::Model(m) = &f.op {
            index.push((m.graph_hash, body.len() as u64));
        }
        body.put_slice(&wal::encode_frame(f));
    }
    let mut idx: Vec<u8> = Vec::with_capacity(4 + index.len() * 16);
    idx.put_u32_le(index.len() as u32);
    for (hash, off) in &index {
        idx.put_u64_le(*hash);
        idx.put_u64_le(*off);
    }
    let mut out = BytesMut::with_capacity(17 + body.len() + idx.len() + 8);
    out.put_slice(MAGIC);
    out.put_u8(VERSION);
    out.put_u64_le(body.len() as u64);
    out.put_u32_le(frames.len() as u32);
    out.put_slice(&body);
    let cks = wal::checksum(&idx);
    out.put_slice(&idx);
    out.put_u64_le(cks);
    out.freeze()
}

/// Write a segment atomically: temp file in the same directory, flushed
/// and fsynced, then renamed over `path` (the `persist::save` pattern —
/// a crash mid-write leaves no visible segment).
pub fn write_segment(path: &Path, frames: &[Frame]) -> io::Result<()> {
    let bytes = encode_segment(frames);
    let tmp = path.with_extension(format!("tmp-{}", std::process::id()));
    let write = (|| {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(&bytes)?;
        f.sync_all()
    })();
    let result = write.and_then(|()| std::fs::rename(&tmp, path));
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// A loaded immutable segment: raw bytes plus the decoded hash index.
///
/// Frames are decoded lazily — `lookup_model` decodes exactly the one
/// frame its index entry points at, and `decoded_frames()` counts decodes
/// so tests can assert point lookups never degenerate into log scans.
#[derive(Debug)]
pub struct SnapshotSegment {
    raw: Vec<u8>,
    frames_start: usize,
    frames_len: usize,
    n_frames: u32,
    index: HashMap<u64, u64>,
    decoded: AtomicU64,
}

impl SnapshotSegment {
    /// Load and validate a segment file. Unlike a WAL tail, a segment is
    /// only ever published by an atomic rename after fsync — any
    /// inconsistency is hard corruption, not a torn write, so it errors.
    pub fn load(path: &Path) -> io::Result<Self> {
        let mut raw = Vec::new();
        std::fs::File::open(path)?.read_to_end(&mut raw)?;
        Self::from_bytes(raw)
    }

    /// Validate an in-memory segment image.
    pub fn from_bytes(raw: Vec<u8>) -> io::Result<Self> {
        if raw.len() < 17 {
            return Err(bad("truncated header"));
        }
        if &raw[..4] != MAGIC {
            return Err(bad("bad magic"));
        }
        if raw[4] != VERSION {
            return Err(bad("unsupported version"));
        }
        let frames_len = u64::from_le_bytes(raw[5..13].try_into().unwrap()) as usize;
        let n_frames = u32::from_le_bytes(raw[13..17].try_into().unwrap());
        let frames_start = 17usize;
        let idx_start = frames_start
            .checked_add(frames_len)
            .ok_or_else(|| bad("frames length overflow"))?;
        if raw.len() < idx_start + 4 + 8 {
            return Err(bad("truncated index"));
        }
        let n_index =
            u32::from_le_bytes(raw[idx_start..idx_start + 4].try_into().unwrap()) as usize;
        let idx_end = idx_start + 4 + n_index * 16;
        if raw.len() != idx_end + 8 {
            return Err(bad("index size mismatch"));
        }
        let want = u64::from_le_bytes(raw[idx_end..idx_end + 8].try_into().unwrap());
        if wal::checksum(&raw[idx_start..idx_end]) != want {
            return Err(bad("index checksum mismatch"));
        }
        let mut index = HashMap::with_capacity(n_index);
        let mut at = idx_start + 4;
        for _ in 0..n_index {
            let hash = u64::from_le_bytes(raw[at..at + 8].try_into().unwrap());
            let off = u64::from_le_bytes(raw[at + 8..at + 16].try_into().unwrap());
            index.insert(hash, off);
            at += 16;
        }
        Ok(SnapshotSegment {
            raw,
            frames_start,
            frames_len,
            n_frames,
            index,
            decoded: AtomicU64::new(0),
        })
    }

    /// Number of frames the segment claims to hold.
    pub fn len(&self) -> usize {
        self.n_frames as usize
    }

    /// Whether the segment holds no frames.
    pub fn is_empty(&self) -> bool {
        self.n_frames == 0
    }

    /// Model-index entries.
    pub fn indexed_models(&self) -> usize {
        self.index.len()
    }

    /// How many frames have been decoded through this handle — the
    /// observable cost of lookups (a point lookup must stay at 1).
    pub fn decoded_frames(&self) -> u64 {
        self.decoded.load(Ordering::Relaxed)
    }

    fn decode_at(&self, off: u64) -> io::Result<Frame> {
        let at = self.frames_start + off as usize;
        let header = self
            .raw
            .get(at..at + 12)
            .ok_or_else(|| bad("index offset out of range"))?;
        let len = u32::from_le_bytes(header[..4].try_into().unwrap()) as usize;
        let want = u64::from_le_bytes(header[4..12].try_into().unwrap());
        let payload = self
            .raw
            .get(at + 12..at + 12 + len)
            .ok_or_else(|| bad("frame out of range"))?;
        if wal::checksum(payload) != want {
            return Err(bad("frame checksum mismatch"));
        }
        self.decoded.fetch_add(1, Ordering::Relaxed);
        wal::decode_payload(Bytes::from(payload.to_vec()))
    }

    /// O(1) point lookup: hash → index probe → decode one frame.
    pub fn lookup_model(&self, graph_hash: u64) -> io::Result<Option<ModelRecord>> {
        let Some(&off) = self.index.get(&graph_hash) else {
            return Ok(None);
        };
        match self.decode_at(off)?.op {
            WalOp::Model(m) if m.graph_hash == graph_hash => Ok(Some(m)),
            _ => Err(bad("index entry does not point at its model")),
        }
    }

    /// Decode every frame (recovery and verification).
    pub fn frames(&self) -> io::Result<Vec<Frame>> {
        let body = &self.raw[self.frames_start..self.frames_start + self.frames_len];
        let scan = wal::scan_frames(body);
        if scan.truncated_bytes != 0 || scan.frames.len() != self.n_frames as usize {
            return Err(bad("frame body does not match header"));
        }
        self.decoded
            .fetch_add(scan.frames.len() as u64, Ordering::Relaxed);
        Ok(scan.frames)
    }

    /// Full consistency check: every frame decodes, every index entry
    /// points at the model it claims.
    pub fn verify(&self) -> io::Result<()> {
        let frames = self.frames()?;
        let mut models = 0usize;
        for f in &frames {
            if let WalOp::Model(m) = &f.op {
                models += 1;
                let hit = self
                    .lookup_model(m.graph_hash)?
                    .ok_or_else(|| bad("model missing from index"))?;
                if hit != *m {
                    return Err(bad("index resolves to a different model"));
                }
            }
        }
        if models != self.index.len() {
            return Err(bad("index cardinality mismatch"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::records::ModelId;

    fn model_frame(i: u32) -> Frame {
        Frame {
            wal_seq: u64::from(i),
            op: WalOp::Model(ModelRecord {
                id: ModelId(i),
                graph_hash: 0xAB00 + u64::from(i) * 7,
                name: format!("m{i}"),
                graph_bytes: vec![i as u8; 24],
                created_seq: u64::from(i),
            }),
        }
    }

    #[test]
    fn routing_is_deterministic_and_total() {
        for n in [1usize, 2, 4, 8] {
            for h in [0u64, 1, 0xdead_beef, u64::MAX] {
                let s = shard_of(h, n);
                assert!(s < n);
                assert_eq!(s, shard_of(h, n));
            }
        }
    }

    #[test]
    fn segment_roundtrip_and_verify() {
        let frames: Vec<Frame> = (0..20).map(model_frame).collect();
        let seg = SnapshotSegment::from_bytes(encode_segment(&frames).to_vec()).unwrap();
        assert_eq!(seg.len(), 20);
        assert_eq!(seg.indexed_models(), 20);
        assert_eq!(seg.frames().unwrap(), frames);
        seg.verify().unwrap();
    }

    #[test]
    fn point_lookup_decodes_exactly_one_frame_per_probe() {
        // The shard-local index demonstration: lookups stay O(1) no
        // matter how many records the compacted segment holds.
        let frames: Vec<Frame> = (0..500).map(model_frame).collect();
        let seg = SnapshotSegment::from_bytes(encode_segment(&frames).to_vec()).unwrap();
        for i in [0u32, 123, 250, 499] {
            let hash = 0xAB00 + u64::from(i) * 7;
            let hit = seg.lookup_model(hash).unwrap().unwrap();
            assert_eq!(hit.id, ModelId(i));
        }
        assert_eq!(
            seg.decoded_frames(),
            4,
            "4 point lookups over 500 records must decode exactly 4 frames"
        );
        // A miss probes the index only — zero decodes.
        assert!(seg.lookup_model(0x1234_5678).unwrap().is_none());
        assert_eq!(seg.decoded_frames(), 4);
    }

    #[test]
    fn corrupt_segment_rejected() {
        let frames: Vec<Frame> = (0..4).map(model_frame).collect();
        let good = encode_segment(&frames).to_vec();
        // Truncations and bit flips anywhere must be detected at load or
        // at frame access — segments are atomic, no torn-tail tolerance.
        assert!(SnapshotSegment::from_bytes(good[..good.len() - 3].to_vec()).is_err());
        let mut flipped = good.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x10;
        match SnapshotSegment::from_bytes(flipped) {
            Err(_) => {}
            Ok(seg) => assert!(seg.verify().is_err()),
        }
        let mut bad_magic = good;
        bad_magic[0] = b'Z';
        assert!(SnapshotSegment::from_bytes(bad_magic).is_err());
    }

    #[test]
    fn atomic_write_then_load() {
        let dir = std::env::temp_dir().join(format!("nnlqp-seg-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("seg-000001.snap");
        let frames: Vec<Frame> = (0..8).map(model_frame).collect();
        write_segment(&path, &frames).unwrap();
        // Overwrite is also atomic and leaves no temp litter.
        write_segment(&path, &frames).unwrap();
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().contains("tmp"))
            .collect();
        assert!(leftovers.is_empty(), "{leftovers:?}");
        let seg = SnapshotSegment::load(&path).unwrap();
        assert_eq!(seg.frames().unwrap(), frames);
        std::fs::remove_dir_all(&dir).ok();
    }
}
