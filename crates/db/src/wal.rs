//! Write-ahead log: length-prefixed, checksummed record frames.
//!
//! Every mutation of a durable [`crate::Database`] is encoded as one
//! [`WalOp`] and appended to the owning shard's log before the in-memory
//! state changes are visible to readers. A frame on disk is
//!
//! ```text
//! [u32 payload len][u64 FNV-1a checksum][payload bytes]
//! ```
//!
//! where the payload starts with the op's global `wal_seq` (dense across
//! all shards — recovery uses it to reconstruct a consistent prefix) and
//! the checksum is the FNV-1a core from `nnlqp-hash` run over the payload.
//! A crash can only ever tear the *tail* of a log: [`read_wal`] replays
//! frames until the first torn or corrupt one and reports how many bytes
//! it refused, instead of failing the whole store.

use crate::records::{LatencyId, LatencyRecord, ModelId, ModelRecord, PlatformId, PlatformRecord};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use nnlqp_hash::{HashAlgo, StreamHasher};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// FNV-1a checksum of a byte slice: the length is folded in first so a
/// truncated payload can never collide with its own prefix.
pub fn checksum(bytes: &[u8]) -> u64 {
    let mut h = StreamHasher::new(HashAlgo::Fnv1a);
    h.write_u64(bytes.len() as u64);
    for chunk in bytes.chunks(8) {
        let mut w = [0u8; 8];
        w[..chunk.len()].copy_from_slice(chunk);
        h.write_u64(u64::from_le_bytes(w));
    }
    h.finish()
}

/// One logical database mutation, as logged. Ids are assigned by the
/// writer before logging, so replay reconstructs identical tables.
#[derive(Debug, Clone, PartialEq)]
pub enum WalOp {
    /// A new model row.
    Model(ModelRecord),
    /// A new platform row.
    Platform(PlatformRecord),
    /// A new latency row.
    Latency(LatencyRecord),
}

impl WalOp {
    /// The table-local id carried by the op.
    pub fn row_id(&self) -> u32 {
        match self {
            WalOp::Model(m) => m.id.0,
            WalOp::Platform(p) => p.id.0,
            WalOp::Latency(l) => l.id.0,
        }
    }
}

/// A decoded frame: the op plus its global sequence number.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// Dense global sequence number (across all shards).
    pub wal_seq: u64,
    /// The logged mutation.
    pub op: WalOp,
}

const TAG_MODEL: u8 = 1;
const TAG_PLATFORM: u8 = 2;
const TAG_LATENCY: u8 = 3;

fn put_str(buf: &mut Vec<u8>, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes) -> io::Result<String> {
    if buf.remaining() < 4 {
        return Err(corrupt("string length"));
    }
    let n = buf.get_u32_le() as usize;
    if buf.remaining() < n {
        return Err(corrupt("string body"));
    }
    String::from_utf8(buf.copy_to_bytes(n).to_vec()).map_err(|_| corrupt("string utf8"))
}

fn corrupt(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("corrupt frame: {what}"))
}

/// Encode one frame (length prefix + checksum + payload).
pub fn encode_frame(frame: &Frame) -> Bytes {
    let mut payload: Vec<u8> = Vec::with_capacity(64);
    payload.put_u64_le(frame.wal_seq);
    match &frame.op {
        WalOp::Model(m) => {
            payload.put_u8(TAG_MODEL);
            payload.put_u32_le(m.id.0);
            payload.put_u64_le(m.graph_hash);
            put_str(&mut payload, &m.name);
            payload.put_u32_le(m.graph_bytes.len() as u32);
            payload.put_slice(&m.graph_bytes);
            payload.put_u64_le(m.created_seq);
        }
        WalOp::Platform(p) => {
            payload.put_u8(TAG_PLATFORM);
            payload.put_u32_le(p.id.0);
            put_str(&mut payload, &p.hardware);
            put_str(&mut payload, &p.software);
            put_str(&mut payload, &p.data_type);
        }
        WalOp::Latency(l) => {
            payload.put_u8(TAG_LATENCY);
            payload.put_u32_le(l.id.0);
            payload.put_u32_le(l.model_id.0);
            payload.put_u32_le(l.platform_id.0);
            payload.put_u32_le(l.batch_size);
            payload.put_f64_le(l.cost_ms);
            payload.put_f64_le(l.mem_access);
            payload.put_u64_le(l.host_mem);
            payload.put_u64_le(l.device_mem);
            payload.put_u64_le(l.created_seq);
        }
    }
    let mut out = BytesMut::with_capacity(12 + payload.len());
    out.put_u32_le(payload.len() as u32);
    out.put_u64_le(checksum(&payload));
    out.put_slice(&payload);
    out.freeze()
}

/// Decode one payload (the bytes after the length + checksum header).
pub fn decode_payload(mut buf: Bytes) -> io::Result<Frame> {
    if buf.remaining() < 9 {
        return Err(corrupt("payload header"));
    }
    let wal_seq = buf.get_u64_le();
    let tag = buf.get_u8();
    let op = match tag {
        TAG_MODEL => {
            if buf.remaining() < 12 {
                return Err(corrupt("model header"));
            }
            let id = ModelId(buf.get_u32_le());
            let graph_hash = buf.get_u64_le();
            let name = get_str(&mut buf)?;
            if buf.remaining() < 4 {
                return Err(corrupt("graph length"));
            }
            let blen = buf.get_u32_le() as usize;
            if buf.remaining() < blen + 8 {
                return Err(corrupt("graph bytes"));
            }
            let graph_bytes = buf.copy_to_bytes(blen).to_vec();
            let created_seq = buf.get_u64_le();
            WalOp::Model(ModelRecord {
                id,
                graph_hash,
                name,
                graph_bytes,
                created_seq,
            })
        }
        TAG_PLATFORM => {
            if buf.remaining() < 4 {
                return Err(corrupt("platform header"));
            }
            let id = PlatformId(buf.get_u32_le());
            let hardware = get_str(&mut buf)?;
            let software = get_str(&mut buf)?;
            let data_type = get_str(&mut buf)?;
            WalOp::Platform(PlatformRecord {
                id,
                hardware,
                software,
                data_type,
            })
        }
        TAG_LATENCY => {
            if buf.remaining() < 4 * 4 + 8 * 5 {
                return Err(corrupt("latency body"));
            }
            WalOp::Latency(LatencyRecord {
                id: LatencyId(buf.get_u32_le()),
                model_id: ModelId(buf.get_u32_le()),
                platform_id: PlatformId(buf.get_u32_le()),
                batch_size: buf.get_u32_le(),
                cost_ms: buf.get_f64_le(),
                mem_access: buf.get_f64_le(),
                host_mem: buf.get_u64_le(),
                device_mem: buf.get_u64_le(),
                created_seq: buf.get_u64_le(),
            })
        }
        _ => return Err(corrupt("unknown op tag")),
    };
    if buf.remaining() > 0 {
        return Err(corrupt("trailing payload bytes"));
    }
    Ok(Frame { wal_seq, op })
}

/// Result of scanning one log file.
#[derive(Debug, Default)]
pub struct WalScan {
    /// Frames that decoded cleanly, in file order.
    pub frames: Vec<Frame>,
    /// Bytes refused at the tail (a torn or corrupt trailing frame and
    /// everything after it). `0` for a cleanly closed log.
    pub truncated_bytes: u64,
    /// Byte offset at which the valid prefix ends.
    pub valid_bytes: u64,
}

/// Read a log, replaying frames until the first torn or corrupt one.
///
/// Corruption never fails the scan: the contract of crash recovery is
/// "yield exactly the committed prefix", so a bad frame ends the replay
/// and the remainder is reported as `truncated_bytes`.
pub fn read_wal(path: &Path) -> io::Result<WalScan> {
    let mut raw = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut raw)?;
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(WalScan::default()),
        Err(e) => return Err(e),
    }
    Ok(scan_frames(&raw))
}

/// Scan a raw byte buffer of concatenated frames (shared by WAL files and
/// snapshot-segment bodies).
pub fn scan_frames(raw: &[u8]) -> WalScan {
    let total = raw.len() as u64;
    let mut out = WalScan::default();
    let mut at = 0usize;
    // A missing slice at any step means a torn tail (or clean EOF): stop
    // and report everything beyond `at` as truncated.
    while let Some(header) = raw.get(at..at + 12) {
        let len = u32::from_le_bytes(header[..4].try_into().unwrap()) as usize;
        let want = u64::from_le_bytes(header[4..12].try_into().unwrap());
        let Some(payload) = raw.get(at + 12..at + 12 + len) else {
            break; // torn payload
        };
        if checksum(payload) != want {
            break; // corrupt frame: flipped bits or a mid-frame tear
        }
        let Ok(frame) = decode_payload(Bytes::from(payload.to_vec())) else {
            break; // checksum ok but undecodable: treat as corruption
        };
        out.frames.push(frame);
        at += 12 + len;
    }
    out.valid_bytes = at as u64;
    out.truncated_bytes = total - at as u64;
    out
}

/// How appends reach the disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// `fsync` after every append: a frame is durable (even across power
    /// loss) before the write returns. The default.
    #[default]
    Always,
    /// No explicit sync: frames survive a process kill (the kernel holds
    /// the bytes) but a power cut may lose the unsynced tail. Recovery
    /// still yields a consistent prefix.
    Never,
}

/// Appender for one shard's current log file.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    path: PathBuf,
    /// Bytes appended to this file so far.
    pub bytes: u64,
    fsync: FsyncPolicy,
}

impl WalWriter {
    /// Open (creating or appending) the log at `path`.
    pub fn open(path: PathBuf, fsync: FsyncPolicy) -> io::Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let bytes = file.metadata()?.len();
        Ok(WalWriter {
            file,
            path,
            bytes,
            fsync,
        })
    }

    /// The file this writer appends to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append one encoded frame. `crash_after` is the fault-injection
    /// hook used by the kill-mid-commit tests: when the cumulative engine
    /// byte count would cross it, only the bytes up to the boundary are
    /// written (a genuinely torn frame) and the process aborts before the
    /// fsync — exactly the window a real crash hits.
    pub fn append(&mut self, encoded: &[u8], crash_after: Option<u64>) -> io::Result<u64> {
        if let Some(budget) = crash_after {
            if budget < encoded.len() as u64 {
                self.file.write_all(&encoded[..budget as usize])?;
                self.file.flush()?;
                std::process::abort();
            }
        }
        self.file.write_all(encoded)?;
        self.bytes += encoded.len() as u64;
        if self.fsync == FsyncPolicy::Always {
            self.file.sync_data()?;
        }
        Ok(encoded.len() as u64)
    }

    /// Flush and (always) sync — the seal barrier before compaction.
    pub fn seal(&mut self) -> io::Result<()> {
        self.file.flush()?;
        self.file.sync_data()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model_op(i: u32) -> WalOp {
        WalOp::Model(ModelRecord {
            id: ModelId(i),
            graph_hash: 0x1000 + u64::from(i),
            name: format!("m{i}"),
            graph_bytes: vec![i as u8; 16 + i as usize],
            created_seq: u64::from(i),
        })
    }

    fn latency_op(i: u32) -> WalOp {
        WalOp::Latency(LatencyRecord {
            id: LatencyId(i),
            model_id: ModelId(i),
            platform_id: PlatformId(0),
            batch_size: 1 + i,
            cost_ms: 1.5 * f64::from(i),
            mem_access: 1e5,
            host_mem: 7,
            device_mem: 9,
            created_seq: u64::from(i) + 100,
        })
    }

    fn platform_op() -> WalOp {
        WalOp::Platform(PlatformRecord {
            id: PlatformId(0),
            hardware: "T4".into(),
            software: "trt7.1".into(),
            data_type: "fp32".into(),
        })
    }

    fn frames() -> Vec<Frame> {
        vec![
            Frame {
                wal_seq: 0,
                op: platform_op(),
            },
            Frame {
                wal_seq: 1,
                op: model_op(0),
            },
            Frame {
                wal_seq: 2,
                op: latency_op(0),
            },
            Frame {
                wal_seq: 3,
                op: model_op(1),
            },
        ]
    }

    fn encoded() -> Vec<u8> {
        frames()
            .iter()
            .flat_map(|f| encode_frame(f).to_vec())
            .collect()
    }

    #[test]
    fn frame_roundtrip_every_op_kind() {
        for f in frames() {
            let enc = encode_frame(&f);
            let scan = scan_frames(&enc);
            assert_eq!(scan.frames, vec![f]);
            assert_eq!(scan.truncated_bytes, 0);
        }
    }

    #[test]
    fn torn_tail_truncates_to_committed_prefix() {
        let raw = encoded();
        // Cut at every possible byte offset: the scan must never panic
        // and must always return a frame-aligned prefix.
        for cut in 0..raw.len() {
            let scan = scan_frames(&raw[..cut]);
            assert!(scan.frames.len() <= 4, "cut {cut}");
            let rebuilt: Vec<u8> = scan
                .frames
                .iter()
                .flat_map(|f| encode_frame(f).to_vec())
                .collect();
            assert_eq!(rebuilt, raw[..scan.valid_bytes as usize], "cut {cut}");
            assert_eq!(
                scan.truncated_bytes,
                cut as u64 - scan.valid_bytes,
                "cut {cut}"
            );
        }
        // The untouched log replays fully.
        assert_eq!(scan_frames(&raw).frames, frames());
    }

    #[test]
    fn flipped_bit_ends_replay_at_bad_frame() {
        let mut raw = encoded();
        // Flip one payload byte of the third frame.
        let f01: usize = frames()[..2].iter().map(|f| encode_frame(f).len()).sum();
        raw[f01 + 14] ^= 0x40;
        let scan = scan_frames(&raw);
        assert_eq!(scan.frames, frames()[..2].to_vec());
        assert!(scan.truncated_bytes > 0);
    }

    #[test]
    fn checksum_is_length_aware() {
        // A payload and its zero-extended version must not collide.
        assert_ne!(checksum(b"abc"), checksum(b"abc\0"));
        assert_ne!(checksum(b""), checksum(b"\0"));
    }

    #[test]
    fn writer_appends_and_scans_back() {
        let dir = std::env::temp_dir().join(format!("nnlqp-wal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("wal-1.log");
        let mut w = WalWriter::open(path.clone(), FsyncPolicy::Always).unwrap();
        for f in frames() {
            w.append(&encode_frame(&f), None).unwrap();
        }
        w.seal().unwrap();
        assert_eq!(w.bytes, encoded().len() as u64);
        let scan = read_wal(&path).unwrap();
        assert_eq!(scan.frames, frames());
        assert_eq!(scan.truncated_bytes, 0);
        // Missing file reads as an empty log.
        assert!(read_wal(&dir.join("absent.log")).unwrap().frames.is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}
