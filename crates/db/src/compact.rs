//! Compaction: folding sealed WAL generations into immutable snapshot
//! segments, coordinated by a checksummed manifest that is swapped
//! atomically (write-temp + rename, the `persist::save` pattern).
//!
//! The manifest is the single source of truth for what a durable store
//! consists of: per shard, the current WAL generation and (optionally)
//! the snapshot-segment generation. A compaction
//!
//! 1. seals every shard's WAL (flush + fsync),
//! 2. writes a fresh segment per shard holding *all* of the shard's
//!    records (fsynced, renamed into place),
//! 3. swaps the manifest to point at the new segments and the next WAL
//!    generation,
//! 4. deletes the folded WAL files and superseded segments.
//!
//! A crash between any two steps leaves a store the recovery path reads
//! correctly: files not referenced by the manifest are ignored (and
//! cleaned up on the next open), and the manifest itself is either the
//! old or the new one, never a mix.

use crate::database::Database;
use crate::wal;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

const MAGIC: &[u8; 4] = b"NQMF";
const VERSION: u8 = 1;

/// Per-shard bookkeeping inside the manifest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMeta {
    /// Generation of the shard's *current* (appendable) WAL file.
    pub wal_gen: u64,
    /// Generation of the shard's snapshot segment, when one exists.
    pub seg_gen: Option<u64>,
}

/// The store manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Manifest {
    /// Shard count the store was created with (fixed for its lifetime).
    pub n_shards: usize,
    /// The database sequence counter at the last compaction.
    pub db_seq: u64,
    /// First WAL sequence number expected in the current WAL generation —
    /// everything below it lives in the segments.
    pub next_wal_seq: u64,
    /// Per-shard state.
    pub shards: Vec<ShardMeta>,
}

impl Manifest {
    /// A brand-new store: empty segments, WAL generation 1.
    pub fn fresh(n_shards: usize) -> Self {
        Manifest {
            n_shards,
            db_seq: 0,
            next_wal_seq: 0,
            shards: vec![
                ShardMeta {
                    wal_gen: 1,
                    seg_gen: None,
                };
                n_shards
            ],
        }
    }

    fn encode(&self) -> Bytes {
        let mut payload: Vec<u8> = Vec::with_capacity(32 + self.shards.len() * 17);
        payload.put_u32_le(self.n_shards as u32);
        payload.put_u64_le(self.db_seq);
        payload.put_u64_le(self.next_wal_seq);
        for s in &self.shards {
            payload.put_u64_le(s.wal_gen);
            match s.seg_gen {
                Some(g) => {
                    payload.put_u8(1);
                    payload.put_u64_le(g);
                }
                None => payload.put_u8(0),
            }
        }
        let mut out = BytesMut::with_capacity(13 + payload.len());
        out.put_slice(MAGIC);
        out.put_u8(VERSION);
        out.put_u64_le(wal::checksum(&payload));
        out.put_slice(&payload);
        out.freeze()
    }

    fn decode(raw: &[u8]) -> io::Result<Self> {
        let bad =
            |what: &str| io::Error::new(io::ErrorKind::InvalidData, format!("manifest: {what}"));
        if raw.len() < 13 {
            return Err(bad("truncated header"));
        }
        if &raw[..4] != MAGIC {
            return Err(bad("bad magic"));
        }
        if raw[4] != VERSION {
            return Err(bad("unsupported version"));
        }
        let want = u64::from_le_bytes(raw[5..13].try_into().unwrap());
        let payload = &raw[13..];
        if wal::checksum(payload) != want {
            return Err(bad("checksum mismatch"));
        }
        let mut buf = Bytes::from(payload.to_vec());
        if buf.remaining() < 20 {
            return Err(bad("truncated payload"));
        }
        let n_shards = buf.get_u32_le() as usize;
        let db_seq = buf.get_u64_le();
        let next_wal_seq = buf.get_u64_le();
        let mut shards = Vec::with_capacity(n_shards);
        for _ in 0..n_shards {
            if buf.remaining() < 9 {
                return Err(bad("truncated shard entry"));
            }
            let wal_gen = buf.get_u64_le();
            let seg_gen = match buf.get_u8() {
                0 => None,
                1 => {
                    if buf.remaining() < 8 {
                        return Err(bad("truncated segment gen"));
                    }
                    Some(buf.get_u64_le())
                }
                _ => return Err(bad("bad segment flag")),
            };
            shards.push(ShardMeta { wal_gen, seg_gen });
        }
        if buf.remaining() > 0 {
            return Err(bad("trailing bytes"));
        }
        Ok(Manifest {
            n_shards,
            db_seq,
            next_wal_seq,
            shards,
        })
    }

    /// Manifest path inside a store directory.
    pub fn path(root: &Path) -> PathBuf {
        root.join("MANIFEST")
    }

    /// Load the manifest, `Ok(None)` when the store is brand new.
    pub fn load(root: &Path) -> io::Result<Option<Self>> {
        match std::fs::read(Self::path(root)) {
            Ok(raw) => Self::decode(&raw).map(Some),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Atomically publish this manifest: temp file, fsync, rename.
    pub fn store(&self, root: &Path) -> io::Result<()> {
        let path = Self::path(root);
        let tmp = root.join(format!(".MANIFEST.tmp-{}", std::process::id()));
        let write = (|| {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(&self.encode())?;
            f.sync_all()
        })();
        let result = write.and_then(|()| std::fs::rename(&tmp, &path));
        if result.is_err() {
            let _ = std::fs::remove_file(&tmp);
        }
        result
    }
}

/// Delete shard files not referenced by the manifest (orphans from a
/// crashed compaction, stale WAL generations already folded away).
pub fn sweep_unreferenced(root: &Path, manifest: &Manifest) -> io::Result<usize> {
    let mut removed = 0;
    for (i, meta) in manifest.shards.iter().enumerate() {
        let dir = crate::shard::shard_dir(root, i);
        let entries = match std::fs::read_dir(&dir) {
            Ok(e) => e,
            Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
            Err(e) => return Err(e),
        };
        let keep_wal = crate::shard::wal_path(root, i, meta.wal_gen);
        let keep_seg = meta.seg_gen.map(|g| crate::shard::seg_path(root, i, g));
        for entry in entries.filter_map(Result::ok) {
            let p = entry.path();
            if p == keep_wal || Some(&p) == keep_seg.as_ref() {
                continue;
            }
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.starts_with("wal-") || name.starts_with("seg-") {
                std::fs::remove_file(&p)?;
                removed += 1;
            }
        }
    }
    Ok(removed)
}

/// Outcome of one compaction pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompactionStats {
    /// Record frames folded into segments.
    pub frames: usize,
    /// WAL bytes retired by the pass.
    pub wal_bytes_folded: u64,
    /// Files deleted by the post-swap sweep.
    pub files_removed: usize,
}

/// Handle to the background compactor thread. The thread wakes every
/// `interval`, checks the engine's pending-WAL-bytes high-water mark
/// against `threshold_bytes`, and runs [`Database::compact`] when the log
/// has grown past it. Dropping the handle stops and joins the thread.
pub struct CompactorHandle {
    shared: Arc<(Mutex<bool>, Condvar)>,
    thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for CompactorHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompactorHandle").finish_non_exhaustive()
    }
}

impl CompactorHandle {
    /// Spawn the compactor over a shared database.
    pub fn spawn(db: Arc<Database>, threshold_bytes: u64, interval: Duration) -> Self {
        let shared = Arc::new((Mutex::new(false), Condvar::new()));
        let thread_shared = Arc::clone(&shared);
        let thread = std::thread::Builder::new()
            .name("nnlqp-db-compactor".into())
            .spawn(move || {
                let (stop, cv) = &*thread_shared;
                let mut guard = stop.lock().expect("compactor lock");
                loop {
                    let (g, _) = cv.wait_timeout(guard, interval).expect("compactor condvar");
                    guard = g;
                    if *guard {
                        return;
                    }
                    if db.wal_bytes_pending() >= threshold_bytes {
                        // A failed background pass must not kill the
                        // writer: the WAL still holds everything; the
                        // next pass (or shutdown compaction) retries.
                        if let Err(e) = db.compact() {
                            eprintln!("nnlqp-db: background compaction failed: {e}");
                        }
                    }
                }
            })
            .expect("spawn compactor thread");
        CompactorHandle {
            shared,
            thread: Some(thread),
        }
    }

    /// Stop and join the thread. Idempotent.
    pub fn stop(&mut self) {
        *self.shared.0.lock().expect("compactor lock") = true;
        self.shared.1.notify_all();
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for CompactorHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_roundtrip() {
        let m = Manifest {
            n_shards: 3,
            db_seq: 42,
            next_wal_seq: 17,
            shards: vec![
                ShardMeta {
                    wal_gen: 2,
                    seg_gen: Some(1),
                },
                ShardMeta {
                    wal_gen: 2,
                    seg_gen: None,
                },
                ShardMeta {
                    wal_gen: 5,
                    seg_gen: Some(4),
                },
            ],
        };
        assert_eq!(Manifest::decode(&m.encode()).unwrap(), m);
    }

    #[test]
    fn manifest_rejects_corruption() {
        let m = Manifest::fresh(4);
        let good = m.encode().to_vec();
        for cut in [0usize, 5, 12, good.len() - 1] {
            assert!(Manifest::decode(&good[..cut]).is_err(), "cut {cut}");
        }
        let mut flipped = good;
        let last = flipped.len() - 1;
        flipped[last] ^= 1;
        assert!(Manifest::decode(&flipped).is_err());
    }

    #[test]
    fn manifest_store_load_atomic() {
        let dir = std::env::temp_dir().join(format!("nnlqp-manifest-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(Manifest::load(&dir).unwrap(), None);
        let m = Manifest::fresh(2);
        m.store(&dir).unwrap();
        assert_eq!(Manifest::load(&dir).unwrap(), Some(m.clone()));
        // Overwrite keeps the directory clean.
        let mut m2 = m;
        m2.db_seq = 9;
        m2.store(&dir).unwrap();
        assert_eq!(Manifest::load(&dir).unwrap().unwrap().db_seq, 9);
        let litter: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(Result::ok)
            .filter(|e| e.file_name().to_string_lossy().contains("tmp"))
            .collect();
        assert!(litter.is_empty(), "{litter:?}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
