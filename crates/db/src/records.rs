//! Table row types, mirroring the ER diagram (Fig. 4).

use serde::{Deserialize, Serialize};

/// Primary key of the model table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ModelId(pub u32);

/// Primary key of the platform table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PlatformId(pub u32);

/// Primary key of the latency table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LatencyId(pub u32);

/// One stored model: the weight-free graph plus its hash key.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelRecord {
    /// Primary key.
    pub id: ModelId,
    /// 8-byte graph hash (unique index).
    pub graph_hash: u64,
    /// Human-readable name.
    pub name: String,
    /// Compact binary graph encoding (`nnlqp_ir::serialize`).
    pub graph_bytes: Vec<u8>,
    /// Insertion sequence number (stands in for a timestamp; the store is
    /// deterministic).
    pub created_seq: u64,
}

impl ModelRecord {
    /// Approximate stored footprint in bytes.
    pub fn storage_bytes(&self) -> usize {
        8 + 8 + self.name.len() + self.graph_bytes.len() + 8 + 4
    }
}

/// One platform row: hardware + software + data type.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlatformRecord {
    /// Primary key.
    pub id: PlatformId,
    /// Hardware name.
    pub hardware: String,
    /// Inference-library name.
    pub software: String,
    /// Data type name ("fp32", "int8", ...).
    pub data_type: String,
}

impl PlatformRecord {
    /// Canonical platform name, e.g. "gpu-T4-trt7.1-fp32" is stored as its
    /// components; this reassembles the lookup key.
    pub fn key(&self) -> (String, String, String) {
        (
            self.hardware.clone(),
            self.software.clone(),
            self.data_type.clone(),
        )
    }

    /// Fixed storage footprint — the paper stores each platform record in
    /// 152 bytes (fixed-width VARCHAR columns).
    pub const STORAGE_BYTES: usize = 152;
}

/// One latency measurement row.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyRecord {
    /// Primary key.
    pub id: LatencyId,
    /// FK into the model table.
    pub model_id: ModelId,
    /// FK into the platform table.
    pub platform_id: PlatformId,
    /// Batch size the measurement ran at.
    pub batch_size: u32,
    /// Measured mean latency in milliseconds ("cost").
    pub cost_ms: f64,
    /// Static memory-access estimate in bytes.
    pub mem_access: f64,
    /// Host memory high-water mark (bytes; simulated).
    pub host_mem: u64,
    /// Device memory high-water mark (bytes; simulated).
    pub device_mem: u64,
    /// Insertion sequence number.
    pub created_seq: u64,
}

impl LatencyRecord {
    /// Fixed storage footprint — 52 bytes per the paper.
    pub const STORAGE_BYTES: usize = 52;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_storage_is_hundreds_of_bytes() {
        let g = nnlqp_models_sample();
        let bytes = nnlqp_ir::serialize::encode(&g).to_vec();
        let rec = ModelRecord {
            id: ModelId(1),
            graph_hash: 42,
            name: g.name.clone(),
            graph_bytes: bytes,
            created_seq: 0,
        };
        let n = rec.storage_bytes();
        assert!(n > 100 && n < 5000, "model record {n} bytes");
    }

    fn nnlqp_models_sample() -> nnlqp_ir::Graph {
        let mut b = nnlqp_ir::GraphBuilder::new("m", nnlqp_ir::Shape::nchw(1, 3, 32, 32));
        let c = b.conv(None, 16, 3, 1, 1, 1).unwrap();
        let r = b.relu(c).unwrap();
        let p = b.global_avgpool(r).unwrap();
        let f = b.flatten(p).unwrap();
        b.gemm(f, 10).unwrap();
        b.finish().unwrap()
    }

    #[test]
    fn fixed_footprints_match_paper() {
        assert_eq!(PlatformRecord::STORAGE_BYTES, 152);
        assert_eq!(LatencyRecord::STORAGE_BYTES, 52);
    }

    #[test]
    fn platform_key_roundtrip() {
        let p = PlatformRecord {
            id: PlatformId(0),
            hardware: "T4".into(),
            software: "trt7.1".into(),
            data_type: "fp32".into(),
        };
        assert_eq!(p.key(), ("T4".into(), "trt7.1".into(), "fp32".into()));
    }
}
