//! # nnlqp-db
//!
//! The evolving latency database — the embedded replacement for the
//! paper's MySQL deployment (§5.2, Fig. 4).
//!
//! Three tables mirror the ER diagram exactly:
//!
//! * **model** — weight-free serialized graphs keyed by the 8-byte graph
//!   hash (unique index; the fast-retrieval path),
//! * **platform** — hardware / software / data-type triples,
//! * **latency** — measurements with `model_id` and `platform_id` foreign
//!   keys plus batch size, cost and memory columns.
//!
//! The store is safe for concurrent readers and writers
//! (`parking_lot::RwLock`), persists to a binary snapshot and keeps
//! per-record storage footprints in the same regime the paper reports
//! (8-byte hash key, 152-byte platform records, 52-byte latency records,
//! hundreds of bytes per model).

pub mod database;
pub mod persist;
pub mod records;

pub use database::{Database, DbError, DbStats};
pub use records::{LatencyId, LatencyRecord, ModelId, ModelRecord, PlatformId, PlatformRecord};
