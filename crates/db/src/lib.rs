//! # nnlqp-db
//!
//! The evolving latency database — the embedded replacement for the
//! paper's MySQL deployment (§5.2, Fig. 4).
//!
//! Three tables mirror the ER diagram exactly:
//!
//! * **model** — weight-free serialized graphs keyed by the 8-byte graph
//!   hash (unique index; the fast-retrieval path),
//! * **platform** — hardware / software / data-type triples,
//! * **latency** — measurements with `model_id` and `platform_id` foreign
//!   keys plus batch size, cost and memory columns.
//!
//! The store is safe for concurrent readers and writers
//! (`parking_lot::RwLock`) and keeps per-record storage footprints in the
//! same regime the paper reports (8-byte hash key, 152-byte platform
//! records, 52-byte latency records, hundreds of bytes per model).
//!
//! ## Durability
//!
//! Beyond the whole-file binary snapshot ([`persist`]), the crate ships a
//! sharded log-structured storage engine: records hash-partition into N
//! shards by graph hash, every mutation is appended to the owning shard's
//! checksummed write-ahead log before it becomes visible ([`wal`]), and a
//! compactor folds the logs into immutable indexed snapshot segments
//! under an atomically-swapped manifest ([`shard`], [`compact`]).
//! Recovery replays segments then the WAL tails, truncating at the first
//! torn frame and discarding past the first global-sequence gap, so a
//! crash always yields exactly the committed prefix ([`recover`]). Open a
//! durable store with [`Database::open_durable`].

pub mod compact;
pub mod database;
pub mod engine;
pub mod persist;
pub mod records;
pub mod recover;
pub mod shard;
pub mod wal;

pub use compact::{CompactionStats, CompactorHandle, Manifest};
pub use database::{Database, DbError, DbStats};
pub use engine::{db_metric_names, DbMetrics, DurabilityStats, DurableOptions, CRASH_AT_BYTE_ENV};
pub use records::{LatencyId, LatencyRecord, ModelId, ModelRecord, PlatformId, PlatformRecord};
pub use recover::{open_read_only, verify_store, RecoveryStats, VerifyReport};
pub use wal::FsyncPolicy;
