//! Crash recovery: manifest → snapshot segments → WAL tail.
//!
//! Recovery replays the store in two layers. The snapshot segments hold
//! everything up to the last compaction and are loaded strictly — they
//! were published by fsync + atomic rename, so any inconsistency there is
//! hard corruption. The WAL tails are loaded leniently: a crash can tear
//! the end of a log, so each shard's scan stops at the first bad frame.
//!
//! Because shards are separate files, a crash can also lose a *suffix* of
//! one shard while a later write survives in another. Every frame carries
//! a dense global `wal_seq`; after the per-shard scans, recovery merges
//! the frames by sequence number and stops at the first gap. What remains
//! is a consistent global prefix of the commit order — no dangling
//! foreign keys, no record without its predecessors.

use crate::compact::Manifest;
use crate::database::Database;
use crate::records::{LatencyRecord, ModelRecord, PlatformRecord};
use crate::shard::{seg_path, wal_path, SnapshotSegment};
use crate::wal::{self, WalOp};
use std::io;
use std::path::Path;

fn corrupt(what: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what)
}

/// Counters describing one recovery pass (feeds the
/// `db.recovery_replayed_frames` / `db.recovery_truncated_bytes` metrics).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Frames restored from snapshot segments.
    pub seg_frames: usize,
    /// WAL frames replayed (the committed prefix).
    pub wal_frames_replayed: usize,
    /// Torn/corrupt tail bytes refused across all shard WALs.
    pub wal_truncated_bytes: u64,
    /// Intact frames discarded by the global-sequence gap rule.
    pub wal_frames_discarded: usize,
}

impl RecoveryStats {
    /// Whether the WALs replayed without losing anything.
    pub fn clean(&self) -> bool {
        self.wal_truncated_bytes == 0 && self.wal_frames_discarded == 0
    }
}

/// Everything recovery learned about a store.
#[derive(Debug)]
pub struct Recovered {
    /// The manifest the store was opened against.
    pub manifest: Manifest,
    /// All committed ops, segments first, then the WAL prefix in global
    /// sequence order.
    pub ops: Vec<WalOp>,
    /// Replay counters.
    pub stats: RecoveryStats,
    /// Restored database sequence counter.
    pub db_seq: u64,
    /// Where WAL appends resume.
    pub next_wal_seq: u64,
}

/// Replay a store directory. `Ok(None)` means no manifest — a brand-new
/// store. Segment corruption is a hard error; WAL damage is tolerated and
/// reported through [`RecoveryStats`].
pub fn recover(root: &Path) -> io::Result<Option<Recovered>> {
    let Some(manifest) = Manifest::load(root)? else {
        return Ok(None);
    };
    let mut ops = Vec::new();
    let mut stats = RecoveryStats::default();
    let mut max_created = None::<u64>;

    // Layer 1: snapshot segments, strict.
    for (i, meta) in manifest.shards.iter().enumerate() {
        let Some(gen) = meta.seg_gen else { continue };
        let seg = SnapshotSegment::load(&seg_path(root, i, gen))
            .map_err(|e| corrupt(format!("shard {i} segment gen {gen}: {e}")))?;
        for f in seg.frames()? {
            track_created(&f.op, &mut max_created);
            ops.push(f.op);
            stats.seg_frames += 1;
        }
    }

    // Layer 2: WAL tails, lenient per shard.
    let mut wal_frames = Vec::new();
    for (i, meta) in manifest.shards.iter().enumerate() {
        let scan = wal::read_wal(&wal_path(root, i, meta.wal_gen))?;
        stats.wal_truncated_bytes += scan.truncated_bytes;
        for f in scan.frames {
            if f.wal_seq < manifest.next_wal_seq {
                // Already folded into a segment — a stale duplicate from
                // a crashed compaction window. Skip it.
                stats.wal_frames_discarded += 1;
            } else {
                wal_frames.push(f);
            }
        }
    }

    // Merge by global sequence and stop at the first gap: everything
    // after a lost frame is discarded so the surviving state is a true
    // prefix of the commit order.
    wal_frames.sort_by_key(|f| f.wal_seq);
    let mut expect = manifest.next_wal_seq;
    let mut replayed = 0usize;
    for f in &wal_frames {
        if f.wal_seq != expect {
            break;
        }
        expect += 1;
        replayed += 1;
    }
    stats.wal_frames_discarded += wal_frames.len() - replayed;
    stats.wal_frames_replayed = replayed;
    for f in wal_frames.into_iter().take(replayed) {
        track_created(&f.op, &mut max_created);
        ops.push(f.op);
    }

    let db_seq = manifest.db_seq.max(max_created.map_or(0, |c| c + 1));
    Ok(Some(Recovered {
        manifest,
        ops,
        stats,
        db_seq,
        next_wal_seq: expect,
    }))
}

fn track_created(op: &WalOp, max: &mut Option<u64>) {
    let seq = match op {
        WalOp::Model(m) => m.created_seq,
        WalOp::Latency(l) => l.created_seq,
        WalOp::Platform(_) => return,
    };
    *max = Some(max.map_or(seq, |m| m.max(seq)));
}

/// Rebuild an in-memory [`Database`] from recovered ops, re-checking the
/// invariants the live write path enforces: dense primary keys, unique
/// hash/platform indexes, valid foreign keys. A violation means the store
/// files contradict each other and is reported as corruption.
pub fn build_database(rec: &Recovered) -> io::Result<Database> {
    let mut models: Vec<Option<ModelRecord>> = Vec::new();
    let mut platforms: Vec<Option<PlatformRecord>> = Vec::new();
    let mut latencies: Vec<Option<LatencyRecord>> = Vec::new();
    fn place<T: Clone>(table: &mut Vec<Option<T>>, id: u32, rec: &T, what: &str) -> io::Result<()> {
        let at = id as usize;
        if table.len() <= at {
            table.resize(at + 1, None);
        }
        if table[at].is_some() {
            return Err(corrupt(format!("duplicate {what} id {id}")));
        }
        table[at] = Some(rec.clone());
        Ok(())
    }
    for op in &rec.ops {
        match op {
            WalOp::Model(m) => place(&mut models, m.id.0, m, "model")?,
            WalOp::Platform(p) => place(&mut platforms, p.id.0, p, "platform")?,
            WalOp::Latency(l) => place(&mut latencies, l.id.0, l, "latency")?,
        }
    }
    fn dense<T>(table: Vec<Option<T>>, what: &str) -> io::Result<Vec<T>> {
        table
            .into_iter()
            .enumerate()
            .map(|(i, r)| r.ok_or_else(|| corrupt(format!("missing {what} id {i}"))))
            .collect()
    }
    let models = dense(models, "model")?;
    let platforms = dense(platforms, "platform")?;
    let latencies = dense(latencies, "latency")?;

    let db = Database::new();
    {
        let mut inner = db.write_inner();
        for m in &models {
            if inner.by_hash.insert(m.graph_hash, m.id).is_some() {
                return Err(corrupt(format!("duplicate graph hash {:#x}", m.graph_hash)));
            }
        }
        for p in &platforms {
            if inner.by_platform_key.insert(p.key(), p.id).is_some() {
                return Err(corrupt(format!("duplicate platform key {:?}", p.key())));
            }
        }
        for l in &latencies {
            if l.model_id.0 as usize >= models.len() {
                return Err(corrupt(format!("latency {} dangling model fk", l.id.0)));
            }
            if l.platform_id.0 as usize >= platforms.len() {
                return Err(corrupt(format!("latency {} dangling platform fk", l.id.0)));
            }
            // Ids are insertion-ordered, so placing in id order makes the
            // last writer win — the live `by_query` semantics.
            inner
                .by_query
                .insert((l.model_id, l.platform_id, l.batch_size), l.id);
        }
        inner.models = models;
        inner.platforms = platforms;
        inner.latencies = latencies;
        inner.seq = rec.db_seq;
    }
    Ok(db)
}

/// Open a durable store read-only: replay it into a plain in-memory
/// [`Database`] without creating files, WAL writers, or a compactor.
/// Used by `nnlqp db stats` and inspection tooling.
pub fn open_read_only(root: &Path) -> io::Result<(Database, RecoveryStats)> {
    match recover(root)? {
        Some(rec) => {
            let db = build_database(&rec)?;
            Ok((db, rec.stats))
        }
        None => Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("no durable store at {}", root.display()),
        )),
    }
}

/// Verification report for `nnlqp db verify`.
#[derive(Debug, Default)]
pub struct VerifyReport {
    /// Shard count from the manifest.
    pub n_shards: usize,
    /// Frames held by snapshot segments.
    pub seg_frames: usize,
    /// Committed WAL frames.
    pub wal_frames: usize,
    /// Torn tail bytes across shard WALs.
    pub wal_truncated_bytes: u64,
    /// Intact frames dropped by the gap rule.
    pub wal_frames_discarded: usize,
    /// Row counts after replay (zero when replay failed).
    pub models: usize,
    /// Platform rows after replay.
    pub platforms: usize,
    /// Latency rows after replay.
    pub latencies: usize,
    /// Hard corruption findings, empty for a healthy store.
    pub errors: Vec<String>,
}

impl VerifyReport {
    /// A store is clean when nothing is corrupt and no WAL data was lost.
    pub fn clean(&self) -> bool {
        self.errors.is_empty() && self.wal_truncated_bytes == 0 && self.wal_frames_discarded == 0
    }
}

/// Check every checksum in a store: manifest, each segment (including its
/// hash index), each WAL, then a full structural replay. Collects
/// findings instead of stopping at the first, so the report covers the
/// whole store. `Err` only for I/O failures or a missing/corrupt manifest.
pub fn verify_store(root: &Path) -> io::Result<VerifyReport> {
    let manifest = Manifest::load(root)?.ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::NotFound,
            format!("no durable store at {}", root.display()),
        )
    })?;
    let mut report = VerifyReport {
        n_shards: manifest.n_shards,
        ..VerifyReport::default()
    };
    for (i, meta) in manifest.shards.iter().enumerate() {
        if let Some(gen) = meta.seg_gen {
            match SnapshotSegment::load(&seg_path(root, i, gen)) {
                Ok(seg) => match seg.verify() {
                    Ok(()) => report.seg_frames += seg.len(),
                    Err(e) => report.errors.push(format!("shard {i} segment: {e}")),
                },
                Err(e) => report.errors.push(format!("shard {i} segment: {e}")),
            }
        }
        match wal::read_wal(&wal_path(root, i, meta.wal_gen)) {
            Ok(scan) => report.wal_truncated_bytes += scan.truncated_bytes,
            Err(e) => report.errors.push(format!("shard {i} wal: {e}")),
        }
    }
    match recover(root) {
        Ok(Some(rec)) => {
            report.wal_frames = rec.stats.wal_frames_replayed;
            report.wal_frames_discarded = rec.stats.wal_frames_discarded;
            match build_database(&rec) {
                Ok(db) => {
                    let s = db.stats();
                    report.models = s.models;
                    report.platforms = s.platforms;
                    report.latencies = s.latencies;
                }
                Err(e) => report.errors.push(format!("replay: {e}")),
            }
        }
        Ok(None) => report.errors.push("manifest vanished mid-verify".into()),
        Err(e) => report.errors.push(format!("recover: {e}")),
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compact::ShardMeta;
    use crate::records::{LatencyId, ModelId, PlatformId};
    use crate::shard::{shard_dir, shard_of};
    use crate::wal::{encode_frame, Frame, FsyncPolicy, WalWriter};

    fn model(i: u32, n_shards: usize, shard: usize) -> ModelRecord {
        // Pick a hash that routes to the requested shard.
        let mut h = u64::from(i) * 31 + 7;
        while shard_of(h, n_shards) != shard {
            h += 1;
        }
        ModelRecord {
            id: ModelId(i),
            graph_hash: h,
            name: format!("m{i}"),
            graph_bytes: vec![i as u8; 10],
            created_seq: u64::from(i),
        }
    }

    fn platform(i: u32) -> PlatformRecord {
        PlatformRecord {
            id: PlatformId(i),
            hardware: format!("hw{i}"),
            software: "sw".into(),
            data_type: "fp32".into(),
        }
    }

    fn latency(i: u32, model: u32, platform: u32, seq: u64) -> LatencyRecord {
        LatencyRecord {
            id: LatencyId(i),
            model_id: ModelId(model),
            platform_id: PlatformId(platform),
            batch_size: 1,
            cost_ms: f64::from(i) + 0.5,
            mem_access: 0.0,
            host_mem: 0,
            device_mem: 0,
            created_seq: seq,
        }
    }

    fn temp_store(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("nnlqp-recover-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        for i in 0..2 {
            std::fs::create_dir_all(shard_dir(&dir, i)).unwrap();
        }
        dir
    }

    /// Hand-build a 2-shard store: platform + model 0 on shard 0's WAL,
    /// model 1 on shard 1's WAL.
    fn write_store(dir: &std::path::Path, frames_by_shard: [&[Frame]; 2]) {
        let manifest = Manifest {
            n_shards: 2,
            db_seq: 0,
            next_wal_seq: 0,
            shards: vec![
                ShardMeta {
                    wal_gen: 1,
                    seg_gen: None
                };
                2
            ],
        };
        manifest.store(dir).unwrap();
        for (i, frames) in frames_by_shard.iter().enumerate() {
            let mut w = WalWriter::open(wal_path(dir, i, 1), FsyncPolicy::Never).unwrap();
            for f in *frames {
                w.append(&encode_frame(f), None).unwrap();
            }
        }
    }

    #[test]
    fn fresh_directory_recovers_to_none() {
        let dir = temp_store("fresh");
        assert!(recover(&dir).unwrap().is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cross_shard_gap_discards_later_survivors() {
        // Shard 0: seq 0 (platform), seq 1 (model 0). Shard 1: seq 2
        // (model 1). Simulate losing shard 0's tail (seq 1): the intact
        // seq-2 frame on shard 1 must ALSO be discarded — otherwise the
        // store resurrects a record whose predecessor is gone.
        let dir = temp_store("gap");
        let f0 = Frame {
            wal_seq: 0,
            op: WalOp::Platform(platform(0)),
        };
        let f2 = Frame {
            wal_seq: 2,
            op: WalOp::Model(model(1, 2, 1)),
        };
        write_store(&dir, [std::slice::from_ref(&f0), std::slice::from_ref(&f2)]);
        let rec = recover(&dir).unwrap().unwrap();
        assert_eq!(rec.ops, vec![f0.op]);
        assert_eq!(rec.stats.wal_frames_replayed, 1);
        assert_eq!(rec.stats.wal_frames_discarded, 1);
        assert_eq!(rec.next_wal_seq, 1);
        let db = build_database(&rec).unwrap();
        assert_eq!(db.stats().platforms, 1);
        assert_eq!(db.stats().models, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn full_store_replays_and_rebuilds_indexes() {
        let dir = temp_store("full");
        let m0 = model(0, 2, 0);
        let m1 = model(1, 2, 1);
        let shard0 = vec![
            Frame {
                wal_seq: 0,
                op: WalOp::Platform(platform(0)),
            },
            Frame {
                wal_seq: 1,
                op: WalOp::Model(m0.clone()),
            },
            Frame {
                wal_seq: 3,
                op: WalOp::Latency(latency(0, 0, 0, 2)),
            },
            Frame {
                wal_seq: 4,
                op: WalOp::Latency(latency(1, 0, 0, 3)),
            },
        ];
        let shard1 = vec![Frame {
            wal_seq: 2,
            op: WalOp::Model(m1.clone()),
        }];
        write_store(&dir, [&shard0, &shard1]);
        let rec = recover(&dir).unwrap().unwrap();
        assert!(rec.stats.clean());
        assert_eq!(rec.stats.wal_frames_replayed, 5);
        assert_eq!(rec.db_seq, 4);
        assert_eq!(rec.next_wal_seq, 5);
        let db = build_database(&rec).unwrap();
        assert_eq!(db.stats().models, 2);
        assert_eq!(db.stats().latencies, 2);
        // Hash index rebuilt.
        assert_eq!(db.model_by_hash(m1.graph_hash).unwrap().id, m1.id);
        // by_query points at the LAST latency for the key.
        let hit = db.lookup_latency(m0.graph_hash, PlatformId(0), 1).unwrap();
        assert_eq!(hit.id, LatencyId(1));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn duplicate_ids_are_corruption() {
        let dir = temp_store("dup");
        let frames = vec![
            Frame {
                wal_seq: 0,
                op: WalOp::Model(model(0, 2, 0)),
            },
            Frame {
                wal_seq: 1,
                op: WalOp::Model(model(0, 2, 0)),
            },
        ];
        write_store(&dir, [&frames, &[]]);
        let rec = recover(&dir).unwrap().unwrap();
        assert!(build_database(&rec).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn verify_reports_clean_and_dirty_stores() {
        let dir = temp_store("verify");
        let frames = vec![
            Frame {
                wal_seq: 0,
                op: WalOp::Platform(platform(0)),
            },
            Frame {
                wal_seq: 1,
                op: WalOp::Model(model(0, 2, 0)),
            },
        ];
        write_store(&dir, [&frames, &[]]);
        let report = verify_store(&dir).unwrap();
        assert!(report.clean(), "{report:?}");
        assert_eq!(report.wal_frames, 2);
        assert_eq!(report.models, 1);
        // Tear the WAL tail: verify flags it without erroring.
        let wal = wal_path(&dir, 0, 1);
        let raw = std::fs::read(&wal).unwrap();
        std::fs::write(&wal, &raw[..raw.len() - 3]).unwrap();
        let report = verify_store(&dir).unwrap();
        assert!(!report.clean());
        assert!(report.wal_truncated_bytes > 0);
        assert!(
            report.errors.is_empty(),
            "torn tail is damage, not corruption"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
