//! The durable storage engine behind [`crate::Database`].
//!
//! The in-memory tables stay the authoritative read path — point lookups
//! never touch the disk. The engine adds durability underneath: every
//! mutation is encoded as a WAL frame and appended (fsync governed by
//! [`FsyncPolicy`]) to the owning shard's log *before* the in-memory
//! insert completes, and a compaction folds the whole store into
//! per-shard immutable snapshot segments, resetting the logs.
//!
//! Failure contract: a WAL append that cannot reach the disk panics.
//! The store has a single writer; continuing after a lost append would
//! silently break the durability promise every consumer relies on, so
//! the writer dies loudly instead. Compaction failures, by contrast, are
//! returned as errors — the WAL still holds everything, so a failed fold
//! is retryable.

use crate::compact::{sweep_unreferenced, CompactionStats, Manifest};
use crate::database::Inner;
use crate::recover::{self, Recovered};
use crate::shard::{seg_path, shard_dir, shard_of, wal_path, write_segment, META_SHARD};
use crate::wal::{self, Frame, FsyncPolicy, WalOp, WalWriter};
use nnlqp_obs::{Counter, MetricsRegistry};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Environment variable for the kill-mid-commit fault injection used by
/// the crash-recovery tests: when set to a byte offset, the WAL writer
/// tears the frame that crosses it and aborts the process before fsync.
pub const CRASH_AT_BYTE_ENV: &str = "NNLQP_WAL_CRASH_AT_BYTE";

/// Registry names of the storage-engine counters.
pub mod db_metric_names {
    /// Frames appended to shard WALs.
    pub const WAL_APPENDS: &str = "db.wal_appends";
    /// Bytes appended to shard WALs.
    pub const WAL_BYTES: &str = "db.wal_bytes";
    /// Completed compaction passes.
    pub const COMPACTIONS: &str = "db.compactions";
    /// WAL frames replayed during recovery.
    pub const RECOVERY_REPLAYED_FRAMES: &str = "db.recovery_replayed_frames";
    /// Torn/corrupt WAL tail bytes refused during recovery.
    pub const RECOVERY_TRUNCATED_BYTES: &str = "db.recovery_truncated_bytes";
}

/// The engine's counters, shared with the workspace metrics registry.
#[derive(Debug, Clone)]
pub struct DbMetrics {
    /// `db.wal_appends`.
    pub wal_appends: Arc<Counter>,
    /// `db.wal_bytes`.
    pub wal_bytes: Arc<Counter>,
    /// `db.compactions`.
    pub compactions: Arc<Counter>,
    /// `db.recovery_replayed_frames`.
    pub recovery_replayed_frames: Arc<Counter>,
    /// `db.recovery_truncated_bytes`.
    pub recovery_truncated_bytes: Arc<Counter>,
}

impl DbMetrics {
    /// Free-standing counters, not attached to any registry.
    pub fn standalone() -> Self {
        DbMetrics {
            wal_appends: Arc::new(Counter::default()),
            wal_bytes: Arc::new(Counter::default()),
            compactions: Arc::new(Counter::default()),
            recovery_replayed_frames: Arc::new(Counter::default()),
            recovery_truncated_bytes: Arc::new(Counter::default()),
        }
    }

    /// Counters registered under the `db.*` names in `registry`.
    pub fn registered(registry: &MetricsRegistry) -> Self {
        DbMetrics {
            wal_appends: registry.counter(db_metric_names::WAL_APPENDS),
            wal_bytes: registry.counter(db_metric_names::WAL_BYTES),
            compactions: registry.counter(db_metric_names::COMPACTIONS),
            recovery_replayed_frames: registry.counter(db_metric_names::RECOVERY_REPLAYED_FRAMES),
            recovery_truncated_bytes: registry.counter(db_metric_names::RECOVERY_TRUNCATED_BYTES),
        }
    }
}

impl Default for DbMetrics {
    fn default() -> Self {
        Self::standalone()
    }
}

/// How to open a durable store.
#[derive(Debug, Clone)]
pub struct DurableOptions {
    /// Store directory (created if absent).
    pub dir: PathBuf,
    /// Shard count for a *new* store. An existing store keeps the count
    /// it was created with (recorded in the manifest).
    pub shards: usize,
    /// WAL commit policy.
    pub fsync: FsyncPolicy,
}

impl DurableOptions {
    /// Defaults: 4 shards, fsync on every commit.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DurableOptions {
            dir: dir.into(),
            shards: 4,
            fsync: FsyncPolicy::Always,
        }
    }

    /// Set the shard count used when creating a new store.
    #[must_use]
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = n.max(1);
        self
    }

    /// Set the fsync policy.
    #[must_use]
    pub fn fsync(mut self, policy: FsyncPolicy) -> Self {
        self.fsync = policy;
        self
    }
}

/// Point-in-time description of a durable store (CLI `nnlqp db stats`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DurabilityStats {
    /// Store directory.
    pub dir: PathBuf,
    /// Shard count.
    pub shards: usize,
    /// WAL bytes appended since the last compaction.
    pub wal_bytes_pending: u64,
    /// Lifetime WAL appends through this handle.
    pub wal_appends: u64,
    /// Compactions run through this handle.
    pub compactions: u64,
}

/// The per-database durable state: shard WAL writers, the manifest, and
/// the global sequence allocator.
pub(crate) struct StorageEngine {
    root: PathBuf,
    fsync: FsyncPolicy,
    writers: Vec<Mutex<WalWriter>>,
    manifest: Mutex<Manifest>,
    /// Next global WAL sequence number.
    next_wal_seq: AtomicU64,
    /// WAL bytes appended since the last compaction (compactor trigger).
    pending_bytes: AtomicU64,
    /// Total bytes appended through this handle (fault-injection budget).
    appended_bytes: AtomicU64,
    /// Fault injection: tear-and-abort once this many bytes have been
    /// appended. Read from [`CRASH_AT_BYTE_ENV`] at open.
    crash_at: Option<u64>,
    metrics: DbMetrics,
}

impl std::fmt::Debug for StorageEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StorageEngine")
            .field("root", &self.root)
            .field("shards", &self.writers.len())
            .field("fsync", &self.fsync)
            .finish_non_exhaustive()
    }
}

impl StorageEngine {
    /// Open (or create) the store at `opts.dir` and replay it. Returns
    /// the engine plus the recovery result (`None` for a new store); the
    /// caller rebuilds the in-memory tables from it and runs a repair
    /// compaction when the WAL replay was lossy.
    pub(crate) fn open_with_metrics(
        opts: &DurableOptions,
        metrics: DbMetrics,
    ) -> io::Result<(Self, Option<Recovered>)> {
        std::fs::create_dir_all(&opts.dir)?;
        let recovered = recover::recover(&opts.dir)?;
        let manifest = match &recovered {
            Some(r) => r.manifest.clone(),
            None => Manifest::fresh(opts.shards.max(1)),
        };
        for i in 0..manifest.n_shards {
            std::fs::create_dir_all(shard_dir(&opts.dir, i))?;
        }
        if recovered.is_none() {
            manifest.store(&opts.dir)?;
        }
        if let Some(r) = &recovered {
            metrics
                .recovery_replayed_frames
                .add(r.stats.wal_frames_replayed as u64);
            metrics
                .recovery_truncated_bytes
                .add(r.stats.wal_truncated_bytes);
        }
        let writers = (0..manifest.n_shards)
            .map(|i| {
                let w = WalWriter::open(
                    wal_path(&opts.dir, i, manifest.shards[i].wal_gen),
                    opts.fsync,
                )?;
                Ok(Mutex::new(w))
            })
            .collect::<io::Result<Vec<_>>>()?;
        let pending: u64 = writers
            .iter()
            .map(|w| w.lock().expect("wal writer lock").bytes)
            .sum();
        let next_wal_seq = recovered.as_ref().map_or(0, |r| r.next_wal_seq);
        let crash_at = std::env::var(CRASH_AT_BYTE_ENV)
            .ok()
            .and_then(|v| v.parse().ok());
        Ok((
            StorageEngine {
                root: opts.dir.clone(),
                fsync: opts.fsync,
                writers,
                manifest: Mutex::new(manifest),
                next_wal_seq: AtomicU64::new(next_wal_seq),
                pending_bytes: AtomicU64::new(pending),
                appended_bytes: AtomicU64::new(0),
                crash_at,
                metrics,
            },
            recovered,
        ))
    }

    pub(crate) fn root(&self) -> &Path {
        &self.root
    }

    pub(crate) fn n_shards(&self) -> usize {
        self.writers.len()
    }

    /// WAL bytes appended since the last compaction.
    pub(crate) fn pending_bytes(&self) -> u64 {
        self.pending_bytes.load(Ordering::Relaxed)
    }

    pub(crate) fn metrics(&self) -> &DbMetrics {
        &self.metrics
    }

    /// Which shard an op routes to.
    pub(crate) fn route(&self, op: &WalOp, inner: &Inner) -> usize {
        match op {
            WalOp::Platform(_) => META_SHARD,
            WalOp::Model(m) => shard_of(m.graph_hash, self.n_shards()),
            WalOp::Latency(l) => {
                let hash = inner.models[l.model_id.0 as usize].graph_hash;
                shard_of(hash, self.n_shards())
            }
        }
    }

    /// Append one op to its shard's WAL. Called with the database write
    /// lock held (appends are serialized by construction). Panics if the
    /// bytes cannot reach the disk — see the module docs.
    pub(crate) fn append(&self, shard: usize, op: WalOp) {
        let wal_seq = self.next_wal_seq.fetch_add(1, Ordering::Relaxed);
        let encoded = wal::encode_frame(&Frame { wal_seq, op });
        let crash_after = self
            .crash_at
            .map(|limit| limit.saturating_sub(self.appended_bytes.load(Ordering::Relaxed)));
        let mut w = self.writers[shard].lock().expect("wal writer lock");
        if let Err(e) = w.append(&encoded, crash_after) {
            panic!(
                "nnlqp-db: WAL append failed on shard {shard} ({}): {e}",
                w.path().display()
            );
        }
        drop(w);
        let len = encoded.len() as u64;
        self.appended_bytes.fetch_add(len, Ordering::Relaxed);
        self.pending_bytes.fetch_add(len, Ordering::Relaxed);
        self.metrics.wal_appends.inc();
        self.metrics.wal_bytes.add(len);
    }

    /// Fold the full store into fresh snapshot segments and reset the
    /// WALs. Called with the database write lock held, so the table
    /// snapshot is consistent and no append races the generation bump.
    pub(crate) fn compact_from(&self, inner: &Inner) -> io::Result<CompactionStats> {
        for w in &self.writers {
            w.lock().expect("wal writer lock").seal()?;
        }
        let n = self.n_shards();
        let mut per_shard: Vec<Vec<Frame>> = vec![Vec::new(); n];
        let mut seq = 0u64;
        let mut push = |shard: usize, op: WalOp, per_shard: &mut Vec<Vec<Frame>>| {
            per_shard[shard].push(Frame { wal_seq: seq, op });
            seq += 1;
        };
        for p in &inner.platforms {
            push(META_SHARD, WalOp::Platform(p.clone()), &mut per_shard);
        }
        for m in &inner.models {
            push(
                shard_of(m.graph_hash, n),
                WalOp::Model(m.clone()),
                &mut per_shard,
            );
        }
        for l in &inner.latencies {
            let hash = inner.models[l.model_id.0 as usize].graph_hash;
            push(shard_of(hash, n), WalOp::Latency(*l), &mut per_shard);
        }
        let frames_total = seq as usize;

        let mut manifest = self.manifest.lock().expect("manifest lock").clone();
        for (i, frames) in per_shard.iter().enumerate() {
            let gen = manifest.shards[i].wal_gen;
            write_segment(&seg_path(&self.root, i, gen), frames)?;
            manifest.shards[i].seg_gen = Some(gen);
            manifest.shards[i].wal_gen = gen + 1;
        }
        manifest.db_seq = inner.seq;
        manifest.next_wal_seq = self.next_wal_seq.load(Ordering::Relaxed);
        manifest.store(&self.root)?;
        // The swap is the commit point: from here the segments are the
        // store and the old WAL generations are garbage.
        for (i, w) in self.writers.iter().enumerate() {
            let fresh = WalWriter::open(
                wal_path(&self.root, i, manifest.shards[i].wal_gen),
                self.fsync,
            )?;
            *w.lock().expect("wal writer lock") = fresh;
        }
        let folded = self.pending_bytes.swap(0, Ordering::Relaxed);
        let removed = sweep_unreferenced(&self.root, &manifest)?;
        *self.manifest.lock().expect("manifest lock") = manifest;
        self.metrics.compactions.inc();
        Ok(CompactionStats {
            frames: frames_total,
            wal_bytes_folded: folded,
            files_removed: removed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("nnlqp-engine-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn fresh_open_lays_out_store() {
        let dir = temp_dir("fresh");
        let opts = DurableOptions::new(&dir).shards(3);
        let (engine, recovered) =
            StorageEngine::open_with_metrics(&opts, DbMetrics::standalone()).unwrap();
        assert!(recovered.is_none());
        assert_eq!(engine.n_shards(), 3);
        assert!(Manifest::path(&dir).exists());
        for i in 0..3 {
            assert!(wal_path(&dir, i, 1).exists());
        }
        // Reopen adopts the stored shard count, ignoring a different ask.
        drop(engine);
        let (engine, recovered) = StorageEngine::open_with_metrics(
            &DurableOptions::new(&dir).shards(8),
            DbMetrics::standalone(),
        )
        .unwrap();
        assert!(recovered.is_some());
        assert_eq!(engine.n_shards(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn appends_survive_reopen() {
        use crate::records::{PlatformId, PlatformRecord};
        let dir = temp_dir("reopen");
        let opts = DurableOptions::new(&dir)
            .shards(2)
            .fsync(FsyncPolicy::Never);
        let (engine, _) = StorageEngine::open_with_metrics(&opts, DbMetrics::standalone()).unwrap();
        for i in 0..5u32 {
            engine.append(
                META_SHARD,
                WalOp::Platform(PlatformRecord {
                    id: PlatformId(i),
                    hardware: format!("hw{i}"),
                    software: "sw".into(),
                    data_type: "fp32".into(),
                }),
            );
        }
        assert_eq!(engine.metrics().wal_appends.get(), 5);
        assert!(engine.pending_bytes() > 0);
        drop(engine);
        let (engine, recovered) =
            StorageEngine::open_with_metrics(&opts, DbMetrics::standalone()).unwrap();
        let rec = recovered.unwrap();
        assert_eq!(rec.stats.wal_frames_replayed, 5);
        assert!(rec.stats.clean());
        assert_eq!(engine.metrics().recovery_replayed_frames.get(), 5);
        assert_eq!(engine.next_wal_seq.load(Ordering::Relaxed), 5);
        std::fs::remove_dir_all(&dir).ok();
    }
}
