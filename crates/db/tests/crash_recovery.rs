//! Kill-mid-commit crash tests for the durable storage engine.
//!
//! A child process (this same test binary, re-executed with
//! `--exact crash_child_writer`) appends a deterministic op sequence
//! through the WAL with byte-budget fault injection
//! ([`nnlqp_db::CRASH_AT_BYTE_ENV`]): when cumulative appended bytes
//! reach the budget, the engine writes a *partial* frame, flushes it to
//! disk, and aborts the process — a torn write frozen exactly as a
//! power-cut mid-`write(2)` would leave it.
//!
//! The parent then recovers the store and asserts the contract:
//!
//! 1. what survives is **exactly a committed prefix** of the child's op
//!    sequence (byte-identical JSON export against an in-memory replay
//!    of the same prefix) — never a partial op, never a reordering;
//! 2. repair-on-open leaves a store that verifies clean and accepts new
//!    writes that survive another reopen.
//!
//! Kill offsets are randomized each run (the seed is printed on
//! failure) plus two pinned edges: byte 0 (first frame torn) and the
//! final byte (last frame torn).

use nnlqp_db::{
    open_read_only, persist, verify_store, Database, DurableOptions, CRASH_AT_BYTE_ENV,
};
use nnlqp_ir::Graph;
use nnlqp_models::ModelFamily;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

/// Store directory handed to the child; unset means "not a child run".
const DIR_ENV: &str = "NNLQP_CRASH_TEST_DIR";

const N_MODELS: usize = 24;
/// 1 platform op + (model, latency) per variant.
const TOTAL_OPS: usize = 1 + 2 * N_MODELS;

fn workload() -> Vec<Graph> {
    nnlqp_models::generate_family(ModelFamily::SqueezeNet, N_MODELS, 11)
        .into_iter()
        .map(|m| m.graph)
        .collect()
}

/// Apply the first `ops` operations of the canonical child sequence.
fn apply(db: &Database, graphs: &[Graph], ops: usize) {
    if ops == 0 {
        return;
    }
    let pid = db.get_or_create_platform("T4", "trt7.1", "fp32");
    let mut done = 1;
    for (i, g) in graphs.iter().enumerate() {
        if done >= ops {
            return;
        }
        let (mid, _) = db.insert_model(g);
        done += 1;
        if done >= ops {
            return;
        }
        db.insert_latency(mid, pid, (i as u32 % 8) + 1, 1.5 + i as f64, 0.25, 64, 128)
            .unwrap();
        done += 1;
    }
}

/// Child mode: replay the whole workload against a durable store. With a
/// crash budget in the environment the engine aborts mid-append; without
/// one the child exits with the sentinel code 42.
#[test]
fn crash_child_writer() {
    let Ok(dir) = std::env::var(DIR_ENV) else {
        return; // normal test run, not a re-execution
    };
    let db = Database::open_durable(DurableOptions::new(&dir).shards(4)).unwrap();
    apply(&db, &workload(), TOTAL_OPS);
    std::process::exit(42);
}

fn run_child(exe: &Path, dir: &Path, crash_at: Option<u64>) -> std::process::ExitStatus {
    let mut cmd = Command::new(exe);
    cmd.args(["crash_child_writer", "--exact", "--nocapture"])
        .env(DIR_ENV, dir)
        .stdout(Stdio::null())
        .stderr(Stdio::null());
    match crash_at {
        Some(b) => {
            cmd.env(CRASH_AT_BYTE_ENV, b.to_string());
        }
        None => {
            cmd.env_remove(CRASH_AT_BYTE_ENV);
        }
    }
    cmd.status().expect("spawn child writer")
}

/// Total bytes across every shard's WAL files.
fn wal_bytes(root: &Path) -> u64 {
    let mut total = 0;
    for shard in std::fs::read_dir(root).unwrap().filter_map(Result::ok) {
        if !shard.path().is_dir() {
            continue;
        }
        for f in std::fs::read_dir(shard.path())
            .unwrap()
            .filter_map(Result::ok)
        {
            if f.file_name().to_string_lossy().starts_with("wal-") {
                total += f.metadata().unwrap().len();
            }
        }
    }
    total
}

fn fresh_dir(base: &Path, name: &str) -> PathBuf {
    let dir = base.join(name);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn kill_mid_commit_preserves_exactly_the_committed_prefix() {
    let exe = std::env::current_exe().unwrap();
    let base = std::env::temp_dir().join(format!("nnlqp-crash-test-{}", std::process::id()));
    let graphs = workload();

    // Baseline: a clean child run, to learn the workload's total WAL
    // footprint and pin the full-store export.
    let full = fresh_dir(&base, "full");
    let status = run_child(&exe, &full, None);
    assert_eq!(status.code(), Some(42), "baseline child failed: {status}");
    let total = wal_bytes(&full);
    assert!(total > 0, "baseline child wrote no WAL");
    let (full_db, rec) = open_read_only(&full).unwrap();
    assert!(rec.clean());
    let expected_full = {
        let mem = Database::new();
        apply(&mem, &graphs, TOTAL_OPS);
        persist::export_json(&mem)
    };
    assert_eq!(
        persist::export_json(&full_db).to_string(),
        expected_full.to_string(),
        "clean durable run must match the in-memory replay"
    );

    // Randomized kill offsets (seed printed for replay) plus the edges:
    // tearing the very first frame and the very last byte.
    let seed = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .as_nanos() as u64;
    let mut state = seed | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 16
    };
    let mut offsets = vec![0, total - 1];
    for _ in 0..4 {
        offsets.push(next() % total);
    }

    for (k, &off) in offsets.iter().enumerate() {
        let dir = fresh_dir(&base, &format!("crash-{k}"));
        let status = run_child(&exe, &dir, Some(off));
        assert!(
            !status.success() && status.code() != Some(42),
            "seed {seed}: child survived a crash budget of {off}/{total} bytes"
        );

        // The store must hold exactly a committed prefix of the op
        // sequence — compare against an in-memory replay of that prefix.
        let (db, _) = open_read_only(&dir).unwrap();
        let s = db.stats();
        let committed = s.models + s.platforms + s.latencies;
        assert!(
            committed < TOTAL_OPS,
            "seed {seed}: crash at byte {off} lost nothing ({committed} ops)"
        );
        let mem = Database::new();
        apply(&mem, &graphs, committed);
        assert_eq!(
            persist::export_json(&db).to_string(),
            persist::export_json(&mem).to_string(),
            "seed {seed}: offset {off} did not recover a clean prefix"
        );
        drop(db);

        // Repair-on-open: the reopened store verifies clean and keeps
        // accepting writes that survive another restart.
        let db = Database::open_durable(DurableOptions::new(&dir)).unwrap();
        let (mid, _) =
            db.insert_model(&nnlqp_models::generate_family(ModelFamily::ResNet, 1, 77)[0].graph);
        let pid = db.get_or_create_platform("post-crash", "sw", "int8");
        db.insert_latency(mid, pid, 1, 9.0, 0.0, 0, 0).unwrap();
        let after_repair = persist::export_json(&db).to_string();
        drop(db);
        let report = verify_store(&dir).unwrap();
        assert!(
            report.clean(),
            "seed {seed}: repaired store not clean: {report:?}"
        );
        let (db, rec) = open_read_only(&dir).unwrap();
        assert!(
            rec.clean(),
            "seed {seed}: second reopen found damage: {rec:?}"
        );
        assert_eq!(persist::export_json(&db).to_string(), after_repair);
    }
    let _ = std::fs::remove_dir_all(&base);
}
