//! Property tests for the durable storage engine: arbitrary record
//! sequences must survive the full life cycle — WAL encode, torn-tail
//! truncation, repair-on-open, compaction, recovery — with a JSON
//! export byte-identical to an in-memory database that applied the same
//! operations.

use nnlqp_db::wal::{encode_frame, Frame, WalOp};
use nnlqp_db::{persist, verify_store, Database, DurableOptions, FsyncPolicy, Manifest};
use nnlqp_ir::{Graph, Rng64};
use nnlqp_models::ModelFamily;
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

static CASE: AtomicUsize = AtomicUsize::new(0);

fn temp_store() -> PathBuf {
    let n = CASE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("nnlqp-props-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A deterministic op sequence: `n_models` distinct graphs, a couple of
/// platforms, and a seeded interleaving of latency rows.
fn apply_ops(db: &Database, seed: u64, n_models: usize, n_latencies: usize) {
    let graphs: Vec<Graph> = nnlqp_models::generate_family(ModelFamily::SqueezeNet, n_models, seed)
        .into_iter()
        .map(|m| m.graph)
        .collect();
    let mut rng = Rng64::new(seed ^ 0xD15C);
    let p0 = db.get_or_create_platform("T4", "trt7.1", "fp32");
    let p1 = db.get_or_create_platform("hi3559A", "nnie11", "int8");
    let mids: Vec<_> = graphs.iter().map(|g| db.insert_model(g).0).collect();
    for i in 0..n_latencies {
        let mid = mids[(rng.next_u64() as usize) % mids.len()];
        let pid = if rng.next_u64() & 1 == 0 { p0 } else { p1 };
        let batch = (rng.next_u64() as u32 % 16) + 1;
        // Some (model, platform, batch) keys repeat: last-write-wins rows
        // must survive the round trip too.
        db.insert_latency(mid, pid, batch, 0.5 + i as f64, 0.25, 64, 128)
            .unwrap();
    }
}

fn export(db: &Database) -> String {
    persist::export_json(db).to_string()
}

/// Append a guaranteed-invalid partial frame (torn write) to one shard's
/// current WAL file: a real encoded frame with a payload bit flipped and
/// the tail cut off.
fn tear_one_wal(root: &std::path::Path, pick: u64, cut: u64) -> u64 {
    let manifest = Manifest::load(root).unwrap().expect("store has a manifest");
    let shard = (pick as usize) % manifest.n_shards;
    let frame = encode_frame(&Frame {
        wal_seq: u64::MAX / 2,
        op: WalOp::Platform(nnlqp_db::PlatformRecord {
            id: nnlqp_db::PlatformId(9999),
            hardware: "torn".into(),
            software: "torn".into(),
            data_type: "torn".into(),
        }),
    });
    let mut bytes = frame.as_ref().to_vec();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 1; // checksum can never match
    let keep = 1 + (cut as usize) % (bytes.len() - 1);
    bytes.truncate(keep);
    let path = nnlqp_db::shard::wal_path(root, shard, manifest.shards[shard].wal_gen);
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .unwrap();
    f.write_all(&bytes).unwrap();
    keep as u64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// WAL replay, torn-tail repair, and compaction are all identity
    /// transformations on the committed record set.
    #[test]
    fn arbitrary_sequences_survive_the_full_lifecycle(
        seed in any::<u64>(),
        n_models in 1usize..8,
        n_latencies in 0usize..24,
        shards in 1usize..6,
        pick in any::<u64>(),
        cut in any::<u64>(),
    ) {
        let dir = temp_store();
        let opts = DurableOptions::new(&dir).shards(shards).fsync(FsyncPolicy::Never);

        // The in-memory twin is the ground truth throughout.
        let mem = Database::new();
        apply_ops(&mem, seed, n_models, n_latencies);
        let baseline = export(&mem);

        let db = Database::open_durable(opts.clone()).unwrap();
        apply_ops(&db, seed, n_models, n_latencies);
        prop_assert_eq!(&export(&db), &baseline);
        drop(db);

        // Reopen #1: pure WAL replay (nothing compacted yet).
        let db = Database::open_durable(opts.clone()).unwrap();
        prop_assert_eq!(&export(&db), &baseline);
        drop(db);

        // Torn write at the tail of a random shard, then reopen: the
        // tail is truncated, repair compacts, content is unchanged.
        let torn = tear_one_wal(&dir, pick, cut);
        prop_assert!(torn > 0);
        let report = verify_store(&dir).unwrap();
        prop_assert_eq!(report.wal_truncated_bytes, torn);
        prop_assert!(!report.clean());
        let db = Database::open_durable(opts.clone()).unwrap();
        prop_assert_eq!(&export(&db), &baseline);
        drop(db);
        let report = verify_store(&dir).unwrap();
        prop_assert!(report.clean(), "repair left damage: {report:?}");

        // Explicit compaction is also an identity, and the compacted
        // store still accepts and persists new writes.
        let db = Database::open_durable(opts.clone()).unwrap();
        db.compact().unwrap();
        prop_assert_eq!(&export(&db), &baseline);
        let pid = db.get_or_create_platform("post", "compact", "fp16");
        let (mid, _) = db.insert_model(
            &nnlqp_models::generate_family(ModelFamily::ResNet, 1, seed)[0].graph,
        );
        db.insert_latency(mid, pid, 1, 3.25, 0.0, 0, 0).unwrap();
        let pid2 = mem.get_or_create_platform("post", "compact", "fp16");
        let (mid2, _) = mem.insert_model(
            &nnlqp_models::generate_family(ModelFamily::ResNet, 1, seed)[0].graph,
        );
        mem.insert_latency(mid2, pid2, 1, 3.25, 0.0, 0, 0).unwrap();
        let extended = export(&mem);
        prop_assert_eq!(&export(&db), &extended);
        drop(db);

        let db = Database::open_durable(opts).unwrap();
        prop_assert_eq!(&export(&db), &extended);
        drop(db);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Every op kind round-trips through the frame codec bit-exactly.
    #[test]
    fn frames_roundtrip_for_arbitrary_ops(seed in any::<u64>(), wal_seq in any::<u64>()) {
        let mut rng = Rng64::new(seed);
        let graph = ModelFamily::SqueezeNet
            .sample("prop", &mut rng)
            .expect("generator is valid");
        let ops = [
            WalOp::Model(nnlqp_db::ModelRecord {
                id: nnlqp_db::ModelId(rng.next_u64() as u32),
                graph_hash: rng.next_u64(),
                name: graph.name.clone(),
                graph_bytes: nnlqp_ir::serialize::encode(&graph).as_ref().to_vec(),
                created_seq: rng.next_u64(),
            }),
            WalOp::Platform(nnlqp_db::PlatformRecord {
                id: nnlqp_db::PlatformId(rng.next_u64() as u32),
                hardware: "hw".into(),
                software: "sw".into(),
                data_type: "dt".into(),
            }),
            WalOp::Latency(nnlqp_db::LatencyRecord {
                id: nnlqp_db::LatencyId(rng.next_u64() as u32),
                model_id: nnlqp_db::ModelId(rng.next_u64() as u32),
                platform_id: nnlqp_db::PlatformId(rng.next_u64() as u32),
                batch_size: rng.next_u64() as u32,
                cost_ms: f64::from_bits(0x3FF0_0000_0000_0000 | (rng.next_u64() >> 12)),
                mem_access: 0.5,
                host_mem: rng.next_u64(),
                device_mem: rng.next_u64(),
                created_seq: rng.next_u64(),
            }),
        ];
        for op in ops {
            let frame = Frame { wal_seq, op };
            let encoded = encode_frame(&frame);
            let scan = nnlqp_db::wal::scan_frames(encoded.as_ref());
            prop_assert_eq!(scan.truncated_bytes, 0);
            prop_assert_eq!(scan.frames.len(), 1);
            prop_assert_eq!(&scan.frames[0], &frame);
        }
    }
}
