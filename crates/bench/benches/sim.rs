//! Simulator microbenchmarks + the stream-width ablation (DESIGN.md
//! ablation 3): scheduling cost and how stream parallelism changes model
//! latency on branchy vs sequential architectures.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nnlqp_models::ModelFamily;
use nnlqp_sim::{exec, fusion, PlatformSpec};
use std::hint::black_box;

fn bench_fusion(c: &mut Criterion) {
    let g = ModelFamily::EfficientNet.canonical().unwrap();
    c.bench_function("fuse_efficientnet", |b| {
        b.iter(|| black_box(fusion::fuse(black_box(&g))));
    });
}

fn bench_model_latency(c: &mut Criterion) {
    let p = PlatformSpec::by_name("gpu-T4-trt7.1-fp32").unwrap();
    let mut group = c.benchmark_group("model_latency");
    for fam in [
        ModelFamily::AlexNet,
        ModelFamily::ResNet,
        ModelFamily::GoogleNet,
        ModelFamily::MobileNetV3,
    ] {
        let g = fam.canonical().unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{fam}/{}nodes", g.len())),
            &g,
            |b, g| b.iter(|| black_box(exec::model_latency_ms(g, &p))),
        );
    }
    group.finish();
}

fn bench_stream_width_ablation(c: &mut Criterion) {
    // Branchy GoogleNet vs sequential VGG under 1/2/4 streams: simulated
    // latency is the *output* here; the bench tracks the scheduler cost
    // while the printed latencies (see repro fig2) track the ablation.
    let googlenet = ModelFamily::GoogleNet.canonical().unwrap();
    let mut group = c.benchmark_group("scheduler_streams");
    for streams in [1usize, 2, 4] {
        let mut p = PlatformSpec::by_name("gpu-T4-trt7.1-fp32").unwrap();
        p.streams = streams;
        group.bench_with_input(BenchmarkId::from_parameter(streams), &p, |b, p| {
            b.iter(|| black_box(exec::model_latency_ms(&googlenet, p)));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fusion,
    bench_model_latency,
    bench_stream_width_ablation
);
criterion_main!(benches);
