//! Predictor microbenchmarks: feature extraction, forward inference and
//! one training step — the costs behind Table 2's prediction column and
//! Table 6's multi-head saving.

use criterion::{criterion_group, criterion_main, Criterion};
use nnlqp_ir::Rng64;
use nnlqp_models::ModelFamily;
use nnlqp_predict::train::{Dataset, Sample};
use nnlqp_predict::{extract_features, NnlpConfig, NnlpModel};
use std::hint::black_box;

fn setup() -> (NnlpModel, Sample) {
    let g = ModelFamily::ResNet.canonical().unwrap();
    let entries = vec![(&g, 1.5f64, 0usize)];
    let ds = Dataset::build(&entries);
    let mut rng = Rng64::new(1);
    let model = NnlpModel::new(
        NnlpConfig {
            hidden: 48,
            head_hidden: 48,
            gnn_layers: 3,
            n_heads: 9,
            dropout: 0.0,
            ..Default::default()
        },
        ds.norm.clone(),
        &mut rng,
    );
    (model, ds.samples[0].clone())
}

fn bench_feature_extraction(c: &mut Criterion) {
    let g = ModelFamily::EfficientNet.canonical().unwrap();
    c.bench_function("extract_features_efficientnet", |b| {
        b.iter(|| black_box(extract_features(black_box(&g))));
    });
}

fn bench_forward(c: &mut Criterion) {
    let (model, s) = setup();
    c.bench_function("nnlp_forward_resnet18", |b| {
        b.iter(|| {
            let (p, _) = model.forward(&s.nodes, &s.adj, &s.stat, 0, None);
            black_box(p)
        });
    });
}

fn bench_multi_head_amortization(c: &mut Criterion) {
    // Table 6's mechanism: 9 heads from one backbone pass vs 9 passes.
    let (model, _) = setup();
    let g = ModelFamily::ResNet.canonical().unwrap();
    let feats = extract_features(&g);
    c.bench_function("predict_9_heads_shared_backbone", |b| {
        b.iter(|| black_box(model.predict_all_heads_ms(&feats)));
    });
    c.bench_function("predict_9_heads_independent_passes", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for h in 0..9 {
                acc += model.predict_ms(&feats, h);
            }
            black_box(acc)
        });
    });
}

fn bench_train_step(c: &mut Criterion) {
    let (model, s) = setup();
    c.bench_function("nnlp_loss_and_grads_resnet18", |b| {
        let mut rng = Rng64::new(2);
        b.iter(|| {
            let (l, g) = model.loss_and_grads(&s.nodes, &s.adj, &s.stat, s.target_log, 0, &mut rng);
            black_box((l, g.head_idx))
        });
    });
}

criterion_group!(
    benches,
    bench_feature_extraction,
    bench_forward,
    bench_multi_head_amortization,
    bench_train_step
);
criterion_main!(benches);
