//! Database microbenchmarks + the hash-index vs linear-scan ablation
//! (DESIGN.md ablation 4): why the 8-byte graph-hash key matters as the
//! store grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nnlqp_db::Database;
use nnlqp_hash::graph_hash;
use nnlqp_models::ModelFamily;
use std::hint::black_box;

fn populated(n: usize) -> (Database, Vec<u64>) {
    let db = Database::new();
    let pid = db.get_or_create_platform("T4", "trt7.1", "fp32");
    let mut hashes = Vec::new();
    for m in nnlqp_models::generate_family(ModelFamily::SqueezeNet, n, 7) {
        let (mid, _) = db.insert_model(&m.graph);
        db.insert_latency(mid, pid, 1, 1.0, 0.0, 0, 0).unwrap();
        hashes.push(graph_hash(&m.graph));
    }
    (db, hashes)
}

fn bench_lookup_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("db_lookup");
    for n in [100usize, 400, 1600] {
        let (db, hashes) = populated(n);
        group.bench_with_input(BenchmarkId::new("hash_index", n), &n, |b, _| {
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % hashes.len();
                black_box(db.model_by_hash(hashes[i]))
            });
        });
        group.bench_with_input(BenchmarkId::new("linear_scan", n), &n, |b, _| {
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % hashes.len();
                black_box(db.model_by_hash_scan(hashes[i]))
            });
        });
    }
    group.finish();
}

fn bench_insert_and_snapshot(c: &mut Criterion) {
    let models: Vec<_> = nnlqp_models::generate_family(ModelFamily::ResNet, 50, 9)
        .into_iter()
        .map(|m| m.graph)
        .collect();
    c.bench_function("db_insert_50_models", |b| {
        b.iter(|| {
            let db = Database::new();
            for g in &models {
                black_box(db.insert_model(g));
            }
        });
    });
    let (db, _) = populated(400);
    c.bench_function("db_snapshot_400_models", |b| {
        b.iter(|| black_box(nnlqp_db::persist::to_bytes(&db)));
    });
}

criterion_group!(benches, bench_lookup_scaling, bench_insert_and_snapshot);
criterion_main!(benches);
