//! Database microbenchmarks: indexed lookup scaling, insert/snapshot
//! cost, and the WAL overhead of the durable storage engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nnlqp_db::{Database, DurableOptions, FsyncPolicy};
use nnlqp_hash::graph_hash;
use nnlqp_models::ModelFamily;
use std::hint::black_box;

fn populated(n: usize) -> (Database, Vec<u64>) {
    let db = Database::new();
    let pid = db.get_or_create_platform("T4", "trt7.1", "fp32");
    let mut hashes = Vec::new();
    for m in nnlqp_models::generate_family(ModelFamily::SqueezeNet, n, 7) {
        let (mid, _) = db.insert_model(&m.graph);
        db.insert_latency(mid, pid, 1, 1.0, 0.0, 0, 0).unwrap();
        hashes.push(graph_hash(&m.graph));
    }
    (db, hashes)
}

fn bench_lookup_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("db_lookup");
    for n in [100usize, 400, 1600] {
        let (db, hashes) = populated(n);
        group.bench_with_input(BenchmarkId::new("hash_index", n), &n, |b, _| {
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % hashes.len();
                black_box(db.model_by_hash(hashes[i]))
            });
        });
    }
    group.finish();
}

fn bench_wal_append(c: &mut Criterion) {
    // In-memory insert vs the same insert through the WAL (no fsync, so
    // this isolates the encode + kernel-write overhead per record).
    let dir = std::env::temp_dir().join(format!("nnlqp-bench-wal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mem = Database::new();
    let durable = Database::open_durable(
        DurableOptions::new(&dir)
            .shards(4)
            .fsync(FsyncPolicy::Never),
    )
    .unwrap();
    let mut group = c.benchmark_group("db_latency_insert");
    for (name, db) in [("in_memory", &mem), ("wal_no_fsync", &durable)] {
        let (mid, _) =
            db.insert_model(&nnlqp_models::generate_family(ModelFamily::SqueezeNet, 1, 3)[0].graph);
        let pid = db.get_or_create_platform("T4", "trt7.1", "fp32");
        group.bench_with_input(BenchmarkId::new(name, 1), &1u32, |b, _| {
            let mut batch = 0u32;
            b.iter(|| {
                batch = batch.wrapping_add(1);
                black_box(db.insert_latency(mid, pid, batch, 1.0, 0.0, 0, 0).unwrap())
            });
        });
    }
    group.finish();
    drop(durable);
    std::fs::remove_dir_all(&dir).ok();
}

fn bench_insert_and_snapshot(c: &mut Criterion) {
    let models: Vec<_> = nnlqp_models::generate_family(ModelFamily::ResNet, 50, 9)
        .into_iter()
        .map(|m| m.graph)
        .collect();
    c.bench_function("db_insert_50_models", |b| {
        b.iter(|| {
            let db = Database::new();
            for g in &models {
                black_box(db.insert_model(g));
            }
        });
    });
    let (db, _) = populated(400);
    c.bench_function("db_snapshot_400_models", |b| {
        b.iter(|| black_box(nnlqp_db::persist::to_bytes(&db)));
    });
}

criterion_group!(
    benches,
    bench_lookup_scaling,
    bench_wal_append,
    bench_insert_and_snapshot
);
criterion_main!(benches);
