//! Graph-hash microbenchmarks + the FNV-1a vs Mix64 ablation
//! (DESIGN.md ablation 1): throughput of the two `f_hash` choices over
//! realistic corpus models.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use nnlqp_hash::{graph_hash_with, HashAlgo};
use nnlqp_models::ModelFamily;
use std::hint::black_box;

fn bench_graph_hash(c: &mut Criterion) {
    let small = ModelFamily::AlexNet.canonical().unwrap();
    let medium = ModelFamily::ResNet.canonical().unwrap();
    let large = ModelFamily::EfficientNet.canonical().unwrap();
    let mut group = c.benchmark_group("graph_hash");
    for (name, g) in [
        ("alexnet", &small),
        ("resnet18", &medium),
        ("efficientnet", &large),
    ] {
        for algo in [HashAlgo::Fnv1a, HashAlgo::Mix64] {
            group.bench_with_input(
                BenchmarkId::new(format!("{algo:?}"), format!("{name}/{}nodes", g.len())),
                g,
                |b, g| b.iter(|| graph_hash_with(black_box(g), algo)),
            );
        }
    }
    group.finish();
}

fn bench_hash_collision_scan(c: &mut Criterion) {
    // Hashing a batch of 100 distinct variants — the warm-cache ingest path.
    let models: Vec<_> = nnlqp_models::generate_family(ModelFamily::MobileNetV2, 100, 1)
        .into_iter()
        .map(|m| m.graph)
        .collect();
    c.bench_function("hash_100_variants", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for g in &models {
                acc ^= graph_hash_with(black_box(g), HashAlgo::Fnv1a);
            }
            acc
        });
    });
}

criterion_group!(benches, bench_graph_hash, bench_hash_collision_scan);
criterion_main!(benches);
