//! Corpus construction with measured ground-truth labels.

use nnlqp_ir::Graph;
use nnlqp_models::{generate_family, ModelFamily};
use nnlqp_sim::{measure, PlatformSpec};
use rayon::prelude::*;

/// One labelled, measured model.
#[derive(Debug, Clone)]
pub struct MeasuredModel {
    /// Family label.
    pub family: ModelFamily,
    /// The graph.
    pub graph: Graph,
    /// Measured mean latency (ms) on the corpus platform.
    pub latency_ms: f64,
}

/// Generate `per_family` variants of each family and measure them on
/// `platform` (`reps` runs averaged, like NNLQ).
pub fn measured_corpus(
    families: &[ModelFamily],
    per_family: usize,
    platform: &PlatformSpec,
    seed: u64,
    reps: usize,
) -> Vec<MeasuredModel> {
    let mut all: Vec<(ModelFamily, Graph)> = Vec::new();
    for &f in families {
        for m in generate_family(f, per_family, seed) {
            all.push((f, m.graph));
        }
    }
    all.into_par_iter()
        .enumerate()
        .map(|(i, (family, graph))| {
            let m = measure(&graph, platform, reps, seed ^ (i as u64) << 8);
            MeasuredModel {
                family,
                graph,
                latency_ms: m.mean_ms,
            }
        })
        .collect()
}

/// Split a measured corpus into (held-out family, rest).
pub fn leave_one_out(
    corpus: &[MeasuredModel],
    family: ModelFamily,
) -> (Vec<&MeasuredModel>, Vec<&MeasuredModel>) {
    let (test, train): (Vec<&MeasuredModel>, Vec<&MeasuredModel>) =
        corpus.iter().partition(|m| m.family == family);
    (test, train)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_labelled_and_measured() {
        let p = PlatformSpec::by_name("gpu-T4-trt7.1-fp32").unwrap();
        let c = measured_corpus(&[ModelFamily::SqueezeNet, ModelFamily::ResNet], 3, &p, 1, 5);
        assert_eq!(c.len(), 6);
        assert!(c.iter().all(|m| m.latency_ms > 0.0));
    }

    #[test]
    fn leave_one_out_partitions() {
        let p = PlatformSpec::by_name("gpu-T4-trt7.1-fp32").unwrap();
        let c = measured_corpus(&[ModelFamily::SqueezeNet, ModelFamily::ResNet], 3, &p, 1, 5);
        let (test, train) = leave_one_out(&c, ModelFamily::ResNet);
        assert_eq!(test.len(), 3);
        assert_eq!(train.len(), 3);
        assert!(test.iter().all(|m| m.family == ModelFamily::ResNet));
    }

    #[test]
    fn deterministic_for_seed() {
        let p = PlatformSpec::by_name("gpu-T4-trt7.1-fp32").unwrap();
        let a = measured_corpus(&[ModelFamily::SqueezeNet], 2, &p, 5, 5);
        let b = measured_corpus(&[ModelFamily::SqueezeNet], 2, &p, 5, 5);
        assert_eq!(a[0].latency_ms, b[0].latency_ms);
    }
}
