//! Table 5: kernel-level latency prediction — nn-Meter vs TPU vs NNLP on
//! the 14 kernel families, 7:3 split per family.

use crate::methods::{cap_kernels_per_family, KERNELS_PER_FAMILY_CAP};
use crate::opts::Opts;
use crate::report::{pct, print_table, save_json};
use nnlqp_ir::{Graph, Rng64};
use nnlqp_models::{family::CORPUS_FAMILIES, generate_family};
use nnlqp_nn::{RandomForest, RandomForestConfig};
use nnlqp_predict::kernels::{
    build_kernel_dataset, kernel_feature_vector, KernelSample, NnlpKernelPredictor, TpuPredictor,
};
use nnlqp_predict::mape;
use nnlqp_sim::{KernelFamily, PlatformSpec};
use std::collections::BTreeMap;

/// Run the experiment.
pub fn run(opts: &Opts) {
    println!("Table 5: kernel latency prediction, MAPE per kernel family\n");
    let platform = PlatformSpec::by_name("gpu-gtx1660-trt7.1-fp32").expect("registry platform");
    // Corpus graphs (labels come from the kernel split, not families).
    let mut graphs: Vec<Graph> = Vec::new();
    for f in CORPUS_FAMILIES {
        for m in generate_family(f, (opts.per_family / 2).max(5), opts.seed) {
            graphs.push(m.graph);
        }
    }
    let refs: Vec<&Graph> = graphs.iter().collect();
    let kd = cap_kernels_per_family(
        build_kernel_dataset(&refs, &platform, opts.seed),
        KERNELS_PER_FAMILY_CAP,
    );
    // 7:3 split within each family.
    let mut rng = Rng64::new(opts.seed ^ 0x7531);
    let mut by_family: BTreeMap<KernelFamily, Vec<&KernelSample>> = BTreeMap::new();
    for k in &kd {
        by_family.entry(k.desc.family).or_default().push(k);
    }
    let mut train_ks: Vec<KernelSample> = Vec::new();
    let mut test_ks: Vec<KernelSample> = Vec::new();
    for (_, mut ks) in by_family {
        rng.shuffle(&mut ks);
        let cut = (ks.len() * 7) / 10;
        train_ks.extend(ks[..cut].iter().map(|k| (*k).clone()));
        test_ks.extend(ks[cut..].iter().map(|k| (*k).clone()));
    }

    // nn-Meter's per-family forests (kernel level only).
    let mut forests: BTreeMap<KernelFamily, RandomForest> = BTreeMap::new();
    {
        let mut grouped: BTreeMap<KernelFamily, (Vec<Vec<f64>>, Vec<f64>)> = BTreeMap::new();
        for k in &train_ks {
            let e = grouped.entry(k.desc.family).or_default();
            e.0.push(kernel_feature_vector(&k.desc));
            e.1.push(k.latency_ms.ln_1p());
        }
        for (fam, (x, y)) in grouped {
            forests.insert(
                fam,
                RandomForest::fit(
                    &x,
                    &y,
                    RandomForestConfig {
                        n_trees: 30,
                        ..Default::default()
                    },
                    opts.seed ^ fam as u64,
                ),
            );
        }
    }
    // TPU and NNLP kernel GNNs.
    let epochs = opts.epochs.max(15);
    eprintln!(
        "  training TPU kernel model ({} kernels)...",
        train_ks.len()
    );
    let tpu = TpuPredictor::fit(&refs, &train_ks, &[], epochs, opts.seed);
    eprintln!("  training NNLP kernel model...");
    let nnlp = NnlpKernelPredictor::fit(&refs, &train_ks, epochs, opts.seed + 1);

    // Evaluate per family: (truth, nn-Meter, TPU, NNLP) prediction columns.
    type FamilyColumns = (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>);
    let mut per_family: BTreeMap<KernelFamily, FamilyColumns> = BTreeMap::new();
    for k in &test_ks {
        let e = per_family.entry(k.desc.family).or_default();
        e.0.push(k.latency_ms);
        let nm = forests
            .get(&k.desc.family)
            .map(|f| {
                f.predict(&kernel_feature_vector(&k.desc))
                    .exp_m1()
                    .max(1e-6)
            })
            .unwrap_or(k.latency_ms);
        e.1.push(nm);
        e.2.push(tpu.predict_kernel(refs[k.graph_idx], &k.kernel));
        e.3.push(nnlp.predict_kernel(refs[k.graph_idx], &k.kernel));
    }
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    let mut sums = [0.0f64; 3];
    let n_fams = per_family.len() as f64;
    for (fam, (truth, nm, tp, np)) in &per_family {
        let m = [mape(nm, truth), mape(tp, truth), mape(np, truth)];
        for (s, v) in sums.iter_mut().zip(m) {
            *s += v / n_fams;
        }
        rows.push(vec![
            fam.name().to_string(),
            pct(m[0]),
            pct(m[1]),
            pct(m[2]),
        ]);
        json_rows.push(serde_json::json!({
            "family": fam.name(), "nn_meter": m[0], "tpu": m[1], "nnlp": m[2],
            "test_kernels": truth.len(),
        }));
    }
    rows.push(vec![
        "Average".into(),
        pct(sums[0]),
        pct(sums[1]),
        pct(sums[2]),
    ]);
    print_table(&["Kernel Family", "nn-Meter", "TPU", "NNLP"], &rows);
    println!("\nPaper averages — nn-Meter 8.33%, TPU 8.01%, NNLP 7.67%");
    save_json(
        &opts.out_dir,
        "table5",
        &serde_json::json!({"rows": json_rows, "average": sums}),
    );
}
