//! Table 2: time cost of querying vs predicting latency.
//!
//! 100 models × 9 platforms. Hit-a% means a% of the queries are already
//! stored in the database; the rest go to hardware. FLOPs+MAC and NNLP
//! columns are the per-prediction costs of the two predictors.

use crate::opts::Opts;
use crate::report::{num, print_table, save_json};
use nnlqp::interface::QueryParams;
use nnlqp::predictor::{FLOPS_MAC_COST_S, PREDICT_COST_S};
use nnlqp::{Nnlqp, Platform};
use nnlqp_ir::{Graph, Rng64};
use nnlqp_models::{family::CORPUS_FAMILIES, generate_family};
use nnlqp_sim::{DeviceFarm, PlatformSpec};

/// Number of query models (paper: 100, 10 per family).
const N_MODELS: usize = 100;

fn query_cost_at_hit_ratio(
    platform: &PlatformSpec,
    models: &[Graph],
    warm: usize,
    reps: usize,
) -> f64 {
    // Each platform deployment sees its own jitter stream.
    let mut h = 0xcbf29ce484222325u64;
    for b in platform.name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    let system = Nnlqp::builder()
        .farm(DeviceFarm::new(std::slice::from_ref(platform), 1))
        .reps(reps)
        .seed(h ^ warm as u64)
        .build();
    let target = Platform::from(platform.clone());
    system
        .warm_cache(&models[..warm], &target, 1)
        .expect("warm cache");
    let mut total = 0.0;
    for m in models {
        let r = system
            .query(&QueryParams::new(m.clone(), 1, target.clone()))
            .expect("query");
        total += r.cost_s;
    }
    total
}

/// Run the experiment.
pub fn run(opts: &Opts) {
    println!("Table 2: cost of querying vs predicting latency (100 models, 9 platforms)\n");
    // 10 models per family, as in the paper.
    let mut models = Vec::new();
    for f in CORPUS_FAMILIES {
        for m in generate_family(f, N_MODELS / CORPUS_FAMILIES.len(), opts.seed) {
            models.push(m.graph);
        }
    }
    let mut rng = Rng64::new(opts.seed ^ 0x7AB2);
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    let mut avgs = [0.0f64; 9]; // h0 h50 h100 fm nnlp s50 s100 sfm snnlp
    let platforms = PlatformSpec::table2_platforms();
    for p in &platforms {
        let h0 = query_cost_at_hit_ratio(p, &models, 0, opts.reps);
        let h50 = query_cost_at_hit_ratio(p, &models, N_MODELS / 2, opts.reps);
        let h100 = query_cost_at_hit_ratio(p, &models, N_MODELS, opts.reps);
        let fm = N_MODELS as f64 * FLOPS_MAC_COST_S * (0.85 + 0.3 * rng.uniform());
        let nnlp = fm + N_MODELS as f64 * (PREDICT_COST_S - FLOPS_MAC_COST_S);
        let (s50, s100, sfm, snnlp) = (h0 / h50, h0 / h100, h0 / fm, h0 / nnlp);
        rows.push(vec![
            p.name.clone(),
            num(h0, 1),
            num(h50, 1),
            num(h100, 1),
            num(fm, 2),
            num(nnlp, 2),
            num(s50, 2),
            num(s100, 2),
            num(sfm, 2),
            num(snnlp, 2),
        ]);
        for (a, v) in avgs
            .iter_mut()
            .zip([h0, h50, h100, fm, nnlp, s50, s100, sfm, snnlp])
        {
            *a += v / platforms.len() as f64;
        }
        json_rows.push(serde_json::json!({
            "platform": p.name, "hit0_s": h0, "hit50_s": h50, "hit100_s": h100,
            "flops_mac_s": fm, "nnlp_s": nnlp,
            "speedup_hit50": s50, "speedup_hit100": s100,
            "speedup_flops_mac": sfm, "speedup_nnlp": snnlp,
        }));
    }
    rows.push(
        std::iter::once("Average".to_string())
            .chain(
                avgs.iter()
                    .enumerate()
                    .map(|(i, v)| num(*v, if i < 3 { 1 } else { 2 })),
            )
            .collect(),
    );
    print_table(
        &[
            "Platform",
            "Hit-0%",
            "Hit-50%",
            "Hit-100%",
            "FLOPs+MAC",
            "NNLP",
            "Spd-50%",
            "Spd-100%",
            "Spd-F+M",
            "Spd-NNLP",
        ],
        &rows,
    );
    println!(
        "\nPaper: average speedups 1.82x (Hit-50%), 52.7x (Hit-100%), 1084x (FLOPs+MAC), 1016x (NNLP);"
    );
    println!("at the observed ~53% production hit ratio the overall query speedup is ~1.8x.");
    save_json(
        &opts.out_dir,
        "table2",
        &serde_json::json!({ "rows": json_rows }),
    );
}
