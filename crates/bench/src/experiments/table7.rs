//! Table 7: total cost of latency acquisition strategies for NAS pools.

use crate::opts::Opts;
use crate::report::{num, print_table, save_json};
use nnlqp_nas::table7_rows;

/// Run the experiment (the paper's configuration: 1k measured baseline,
/// 10k predicted pool, 50 transfer samples).
pub fn run(opts: &Opts) {
    println!("Table 7: cost of measurement vs prediction vs transfer\n");
    let rows = table7_rows(1_000, 10_000, 50);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.label.to_string(),
                r.measured.to_string(),
                r.predicted.to_string(),
                r.test_models.to_string(),
                format!("{} T", r.cost_t),
                format!("{}x", num(r.speedup, 2)),
            ]
        })
        .collect();
    print_table(
        &[
            "strategy",
            "measured",
            "predicted",
            "test models",
            "time cost",
            "speedup",
        ],
        &table,
    );
    println!("\nPaper: 1x / 0.99x / 16.7x (T = one prediction, 1000T = one true measurement)");
    save_json(
        &opts.out_dir,
        "table7",
        &serde_json::json!({
            "rows": rows.iter().map(|r| serde_json::json!({
                "label": r.label, "measured": r.measured, "predicted": r.predicted,
                "test_models": r.test_models, "cost_t": r.cost_t, "speedup": r.speedup,
            })).collect::<Vec<_>>(),
        }),
    );
}
