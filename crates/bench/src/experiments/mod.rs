//! One module per paper table/figure.

pub mod decisions;
pub mod encoders;
pub mod fig2;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;
pub mod table6;
pub mod table7;
pub mod table8;

use crate::opts::Opts;

/// All experiment names, in paper order.
pub const ALL: [&str; 15] = [
    "table1",
    "fig2",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "table7",
    "table8",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "encoders",
    "decisions",
];

/// Dispatch one experiment by name.
pub fn run(name: &str, opts: &Opts) -> Result<(), String> {
    match name {
        "table1" => table1::run(opts),
        "table2" => table2::run(opts),
        "table3" => table3::run(opts),
        "table4" => table4::run(opts),
        "table5" => table5::run(opts),
        "table6" => table6::run(opts),
        "table7" => table7::run(opts),
        "table8" => table8::run(opts),
        "fig2" => fig2::run(opts),
        "fig6" => fig6::run(opts),
        "fig7" => fig7::run(opts),
        "fig8" => fig8::run(opts),
        "fig9" => fig9::run(opts),
        "encoders" => encoders::run(opts),
        "decisions" => decisions::run(opts),
        other => return Err(format!("unknown experiment: {other}")),
    }
    Ok(())
}
