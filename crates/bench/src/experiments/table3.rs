//! Table 3: leave-one-family-out comparison of six prediction methods on
//! the gpu-gtx1660-trt7.1-fp32 platform.

use crate::corpus::{leave_one_out, measured_corpus};
use crate::methods::{fit, Method};
use crate::opts::Opts;
use crate::report::{pct, print_table, save_json};
use nnlqp_models::family::CORPUS_FAMILIES;
use nnlqp_predict::{acc_at, mape};
use nnlqp_sim::PlatformSpec;

/// Run the experiment.
pub fn run(opts: &Opts) {
    println!(
        "Table 3: leave-one-family-out comparison ({} models/family, {} epochs)\n",
        opts.per_family, opts.epochs
    );
    let platform = PlatformSpec::by_name("gpu-gtx1660-trt7.1-fp32").expect("registry platform");
    let corpus = measured_corpus(
        &CORPUS_FAMILIES,
        opts.per_family,
        &platform,
        opts.seed,
        opts.reps,
    );

    let methods = Method::TABLE3;
    // results[family][method] = (mape, acc10)
    let mut results = Vec::new();
    for fam in CORPUS_FAMILIES {
        let (test, train) = leave_one_out(&corpus, fam);
        eprintln!(
            "  fold {}: train {} models, test {}",
            fam.name(),
            train.len(),
            test.len()
        );
        let truth: Vec<f64> = test.iter().map(|m| m.latency_ms).collect();
        let mut row = Vec::new();
        for m in methods {
            let fitted = fit(m, &train, &platform, opts);
            let preds: Vec<f64> = test.iter().map(|x| fitted.predict(&x.graph)).collect();
            row.push((mape(&preds, &truth), acc_at(&preds, &truth, 0.10)));
        }
        results.push((fam, row));
    }

    let headers: Vec<&str> = std::iter::once("Model Family")
        .chain(methods.iter().map(|m| m.name()))
        .collect();
    for (metric_idx, metric_name) in [
        (0usize, "MAPE (lower is better)"),
        (1, "Acc(10%) (higher is better)"),
    ] {
        println!("\n{metric_name}:");
        let mut rows = Vec::new();
        let mut avg = vec![0.0f64; methods.len()];
        for (fam, row) in &results {
            let mut cells = vec![fam.name().to_string()];
            for (j, (mp, acc)) in row.iter().enumerate() {
                let v = if metric_idx == 0 { *mp } else { *acc };
                avg[j] += v / results.len() as f64;
                cells.push(pct(v));
            }
            rows.push(cells);
        }
        rows.push(
            std::iter::once("Average".to_string())
                .chain(avg.iter().map(|v| pct(*v)))
                .collect(),
        );
        print_table(&headers, &rows);
    }
    println!("\nPaper averages — MAPE: FLOPs 47.7%, FLOPs+MAC 37.3%, nn-Meter 15.4%, TPU 21.2%, BRP-NAS 30.8%, NNLP 10.7%");
    println!("Paper averages — Acc(10%): FLOPs 8.0%, FLOPs+MAC 13.2%, nn-Meter 47.4%, TPU 34.4%, BRP-NAS 21.3%, NNLP 59.7%");

    save_json(
        &opts.out_dir,
        "table3",
        &serde_json::json!({
            "methods": methods.iter().map(|m| m.name()).collect::<Vec<_>>(),
            "folds": results
                .iter()
                .map(|(fam, row)| serde_json::json!({
                    "family": fam.name(),
                    "mape": row.iter().map(|r| r.0).collect::<Vec<_>>(),
                    "acc10": row.iter().map(|r| r.1).collect::<Vec<_>>(),
                }))
                .collect::<Vec<_>>(),
        }),
    );
}
