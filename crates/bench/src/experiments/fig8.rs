//! Figure 8: transfer from classification models to detection models.
//!
//! Pre-train the predictor on the classification corpus, then fine-tune
//! on RetinaNet-style detection models. The paper's three bars: MAPE with
//! 1,000 detection samples from scratch (0.038), 50 samples from scratch
//! (0.044), and 50 samples with the pre-trained embedding (0.040) — a
//! ~20x data-efficiency gain.

use crate::corpus::measured_corpus;
use crate::opts::Opts;
use crate::report::{num, print_table, save_json};
use nnlqp_ir::{Graph, Rng64};
use nnlqp_models::{family::CORPUS_FAMILIES, generate_family, ModelFamily};
use nnlqp_predict::train::{predict_samples, train, truths, Dataset, TrainConfig};
use nnlqp_predict::transfer::{fine_tune_structures, train_from_scratch};
use nnlqp_predict::{mape, NnlpConfig, NnlpModel};
use nnlqp_sim::{measure, PlatformSpec};

const TEST_COUNT: usize = 80;

/// Run the experiment.
pub fn run(opts: &Opts) {
    println!("Figure 8: classification -> detection transfer, test MAPE\n");
    let platform = PlatformSpec::by_name("gpu-T4-trt7.1-fp32").expect("registry platform");
    // Pre-train on classification models.
    let cls = measured_corpus(
        &CORPUS_FAMILIES,
        (opts.per_family / 2).max(10),
        &platform,
        opts.seed,
        opts.reps,
    );
    let entries: Vec<(&Graph, f64, usize)> = cls
        .iter()
        .map(|m| (&m.graph, m.latency_ms, 0usize))
        .collect();
    let ds = Dataset::build(&entries);
    let mut rng = Rng64::new(opts.seed ^ 0xF8);
    let mut pre = NnlpModel::new(
        NnlpConfig {
            hidden: 48,
            head_hidden: 48,
            gnn_layers: 3,
            dropout: 0.05,
            ..Default::default()
        },
        ds.norm.clone(),
        &mut rng,
    );
    eprintln!(
        "  pre-training on {} classification models...",
        ds.samples.len()
    );
    train(
        &mut pre,
        &ds.samples,
        TrainConfig {
            epochs: opts.epochs,
            batch_size: 16,
            lr: 1e-3,
            seed: opts.seed,
        },
    );
    // Detection pool.
    let big_n = (opts.per_family * 4).clamp(100, 1000);
    eprintln!("  generating {} detection models...", big_n + TEST_COUNT);
    let det: Vec<(Graph, f64)> = generate_family(
        ModelFamily::Detection,
        big_n + TEST_COUNT,
        opts.seed ^ 0xDE7,
    )
    .into_iter()
    .enumerate()
    .map(|(i, m)| {
        let l = measure(&m.graph, &platform, opts.reps, opts.seed ^ (i as u64) << 2).mean_ms;
        (m.graph, l)
    })
    .collect();
    let det_entries: Vec<(&Graph, f64, usize)> = det.iter().map(|(g, l)| (g, *l, 0usize)).collect();
    let samples = ds.extend_with(&det_entries);
    let (pool, test) = samples.split_at(big_n);
    let t = truths(test);

    let cfg = |seed: u64| TrainConfig {
        epochs: (opts.epochs / 2).max(15),
        batch_size: 16,
        lr: 1e-3,
        seed,
    };
    eprintln!("  scratch training with {big_n} samples...");
    let (scratch_big, _) = train_from_scratch(&pre, pool, cfg(1));
    eprintln!("  scratch training with 50 samples...");
    let (scratch_50, _) = train_from_scratch(&pre, &pool[..50.min(pool.len())], cfg(2));
    eprintln!("  fine-tuning with 50 samples...");
    let (tuned_50, _) = fine_tune_structures(&pre, &pool[..50.min(pool.len())], cfg(3));

    let m_big = mape(&predict_samples(&scratch_big, test), &t) / 100.0;
    let m_50 = mape(&predict_samples(&scratch_50, test), &t) / 100.0;
    let m_50p = mape(&predict_samples(&tuned_50, test), &t) / 100.0;
    print_table(
        &["Setting", "Detection samples", "Test MAPE"],
        &[
            vec!["scratch".into(), big_n.to_string(), num(m_big, 3)],
            vec!["scratch".into(), "50".into(), num(m_50, 3)],
            vec!["pre-trained".into(), "50".into(), num(m_50p, 3)],
        ],
    );
    println!("\nPaper: 0.038 (1000 scratch) / 0.044 (50 scratch) / 0.040 (50 + pre-trained)");
    println!("-> 50 pre-trained samples nearly match 1000 scratch samples (~20x data efficiency).");
    save_json(
        &opts.out_dir,
        "fig8",
        &serde_json::json!({
            "scratch_big": {"samples": big_n, "mape": m_big},
            "scratch_50": {"samples": 50, "mape": m_50},
            "pretrained_50": {"samples": 50, "mape": m_50p},
        }),
    );
}
