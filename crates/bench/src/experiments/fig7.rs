//! Figure 7: transfer learning for unseen platforms.
//!
//! For each target platform: pre-train a multi-head model on the other
//! eight platforms, then fine-tune (fresh head + shared backbone) on a
//! growing number of target-platform samples; compare against training
//! from scratch.

use crate::opts::Opts;
use crate::report::{pct, print_table, save_json};
use nnlqp_ir::{Graph, Rng64};
use nnlqp_models::{family::CORPUS_FAMILIES, generate_family};
use nnlqp_predict::train::{predict_samples, train, truths, Dataset, Sample, TrainConfig};
use nnlqp_predict::transfer::{fine_tune_platform, train_from_scratch};
use nnlqp_predict::{acc_at, NnlpConfig, NnlpModel};
use nnlqp_sim::{measure, PlatformSpec};

/// Fine-tuning sample counts.
pub const SAMPLE_COUNTS: [usize; 4] = [32, 100, 200, 300];

/// The four platforms the paper displays individually (7a-7d).
pub const DISPLAY_PLATFORMS: [&str; 4] = [
    "hi3519A-nnie12-int8",
    "cpu-openppl-fp32",
    "atlas300-acl-fp16",
    "gpu-T4-trt7.1-fp32",
];

const TEST_COUNT: usize = 100;

/// Run the experiment.
pub fn run(opts: &Opts) {
    println!("Figure 7: transfer learning on unseen platforms, Acc(10%)\n");
    let platforms = PlatformSpec::table2_platforms();
    // Shared graph pool.
    let per_fam = (opts.per_family / 2).max(5);
    let mut graphs: Vec<Graph> = Vec::new();
    for f in CORPUS_FAMILIES {
        for m in generate_family(f, per_fam, opts.seed) {
            graphs.push(m.graph);
        }
    }
    // Target-platform fresh pool (for fine-tuning + test).
    let max_n = *SAMPLE_COUNTS.last().unwrap();
    let mut target_graphs: Vec<Graph> = Vec::new();
    {
        let need = max_n + TEST_COUNT;
        let per = need / CORPUS_FAMILIES.len() + 1;
        for f in CORPUS_FAMILIES {
            for m in generate_family(f, per, opts.seed ^ 0xF17) {
                target_graphs.push(m.graph);
            }
        }
        let mut r = Rng64::new(opts.seed ^ 1);
        r.shuffle(&mut target_graphs);
        target_graphs.truncate(need);
    }

    let mut rows = Vec::new();
    let mut json_out = Vec::new();
    let mut averages = vec![(0.0f64, 0.0f64); SAMPLE_COUNTS.len()];
    for target_name in DISPLAY_PLATFORMS {
        eprintln!("  target platform {target_name}...");
        let target = PlatformSpec::by_name(target_name).expect("registry platform");
        // Pre-train on the 8 other platforms.
        let sources: Vec<&PlatformSpec> =
            platforms.iter().filter(|p| p.name != target.name).collect();
        let mut entries: Vec<(&Graph, f64, usize)> = Vec::new();
        let mut labels: Vec<Vec<f64>> = Vec::new();
        for p in &sources {
            let lab: Vec<f64> = graphs
                .iter()
                .enumerate()
                .map(|(i, g)| measure(g, p, opts.reps, opts.seed ^ (i as u64)).mean_ms)
                .collect();
            labels.push(lab);
        }
        for (h, lab) in labels.iter().enumerate() {
            for (g, l) in graphs.iter().zip(lab) {
                entries.push((g, *l, h));
            }
        }
        let ds = Dataset::build(&entries);
        let mut rng = Rng64::new(opts.seed ^ 0xF7);
        let mut pre = NnlpModel::new(
            NnlpConfig {
                hidden: 48,
                head_hidden: 48,
                gnn_layers: 3,
                n_heads: sources.len(),
                dropout: 0.05,
                ..Default::default()
            },
            ds.norm.clone(),
            &mut rng,
        );
        train(
            &mut pre,
            &ds.samples,
            TrainConfig {
                epochs: (opts.epochs / 2).max(10),
                batch_size: 16,
                lr: 1e-3,
                seed: opts.seed,
            },
        );
        // Target-platform samples.
        let target_entries: Vec<(&Graph, f64, usize)> = target_graphs
            .iter()
            .enumerate()
            .map(|(i, g)| {
                let l = measure(g, &target, opts.reps, opts.seed ^ 0xFE ^ (i as u64)).mean_ms;
                (g, l, 0usize)
            })
            .collect();
        let samples: Vec<Sample> = ds.extend_with(&target_entries);
        let (pool, test) = samples.split_at(max_n);
        let t = truths(test);
        let mut curve = Vec::new();
        for (ci, &n) in SAMPLE_COUNTS.iter().enumerate() {
            let cfg = TrainConfig {
                epochs: (opts.epochs / 2).max(10),
                batch_size: 16,
                lr: 1e-3,
                seed: opts.seed ^ n as u64,
            };
            let (tuned, head, _) = fine_tune_platform(&pre, &pool[..n], cfg);
            let mut test_routed: Vec<Sample> = test.to_vec();
            for s in &mut test_routed {
                s.head = head;
            }
            let acc_t = acc_at(&predict_samples(&tuned, &test_routed), &t, 0.10);
            let (scratch, _) = train_from_scratch(&pre, &pool[..n], cfg);
            let acc_s = acc_at(&predict_samples(&scratch, test), &t, 0.10);
            averages[ci].0 += acc_s / DISPLAY_PLATFORMS.len() as f64;
            averages[ci].1 += acc_t / DISPLAY_PLATFORMS.len() as f64;
            rows.push(vec![
                target.name.clone(),
                n.to_string(),
                pct(acc_s),
                pct(acc_t),
                pct(acc_t - acc_s),
            ]);
            curve.push(serde_json::json!({"samples": n, "scratch": acc_s, "pretrained": acc_t}));
        }
        json_out.push(serde_json::json!({"platform": target.name, "curve": curve}));
    }
    for (ci, &n) in SAMPLE_COUNTS.iter().enumerate() {
        rows.push(vec![
            "Average".into(),
            n.to_string(),
            pct(averages[ci].0),
            pct(averages[ci].1),
            pct(averages[ci].1 - averages[ci].0),
        ]);
    }
    print_table(
        &[
            "Target Platform",
            "Samples",
            "Scratch Acc(10%)",
            "Pre-trained Acc(10%)",
            "Gain",
        ],
        &rows,
    );
    println!("\nPaper (Fig. 7e): the pre-trained average curve lies above scratch at");
    println!("every sample count — platform knowledge transfers to new hardware.");
    save_json(
        &opts.out_dir,
        "fig7",
        &serde_json::json!({"platforms": json_out}),
    );
}
