//! Table 1: supported platforms.

use crate::opts::Opts;
use crate::report::print_table;
use nnlqp_sim::{HardwareClass, PlatformSpec};

/// Print the platform registry grouped like Table 1.
pub fn run(opts: &Opts) {
    println!("Table 1: Supported platforms in NNLQ\n");
    let mut rows = Vec::new();
    let mut reg = PlatformSpec::registry();
    reg.sort_by_key(|p| {
        (
            match p.class {
                HardwareClass::Gpu => 0,
                HardwareClass::Cpu => 1,
                HardwareClass::Asic => 2,
            },
            p.hardware.clone(),
            p.name.clone(),
        )
    });
    for p in &reg {
        rows.push(vec![
            match p.class {
                HardwareClass::Gpu => "GPU".to_string(),
                HardwareClass::Cpu => "CPU".to_string(),
                HardwareClass::Asic => "ASIC".to_string(),
            },
            p.hardware.clone(),
            p.software.clone(),
            p.dtype.name().to_string(),
            p.name.clone(),
        ]);
    }
    print_table(
        &["Type", "Hardware", "Software", "Data Type", "Platform Name"],
        &rows,
    );
    crate::report::save_json(
        &opts.out_dir,
        "table1",
        &serde_json::json!({
            "platforms": reg.iter().map(|p| p.name.clone()).collect::<Vec<_>>(),
        }),
    );
}
