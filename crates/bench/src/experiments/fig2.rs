//! Figure 2 / Appendix A: kernel additivity validation.
//!
//! 60 models of 6 types on the GTX1660+TensorRT-style platform; compare
//! each model's latency against the sum of its kernels' isolated
//! latencies. The paper's findings: (1) every point lies above `y = x`;
//! (2) per family the relationship is approximately linear with a
//! family-specific slope.

use crate::opts::Opts;
use crate::report::{num, print_table, save_json};
use nnlqp_models::{generate_family, ModelFamily};
use nnlqp_sim::{exec, PlatformSpec};

const FAMILIES: [ModelFamily; 6] = [
    ModelFamily::ResNet,
    ModelFamily::AlexNet,
    ModelFamily::NasBench201,
    ModelFamily::EfficientNet,
    ModelFamily::MobileNetV2,
    ModelFamily::MobileNetV3,
];

/// Run the experiment.
pub fn run(opts: &Opts) {
    println!("Figure 2: kernel additivity validation (GTX1660 + TensorRT style)\n");
    let p = PlatformSpec::by_name("gpu-gtx1660-trt7.1-fp32").expect("registry platform");
    let per_family = (opts.per_family / 6).clamp(5, 50).max(10);
    let mut rows = Vec::new();
    let mut all_points = Vec::new();
    let mut violations = 0usize;
    let mut total = 0usize;
    for fam in FAMILIES {
        let mut points: Vec<(f64, f64)> = Vec::new();
        for m in generate_family(fam, per_family, opts.seed) {
            let model = exec::model_latency_ms(&m.graph, &p);
            let sum = exec::sum_kernel_latencies_ms(&m.graph, &p);
            if sum <= model {
                violations += 1;
            }
            total += 1;
            points.push((model, sum));
        }
        // Least-squares slope through the origin: sum ~= slope * model.
        let sxy: f64 = points.iter().map(|(x, y)| x * y).sum();
        let sxx: f64 = points.iter().map(|(x, _)| x * x).sum();
        let slope = sxy / sxx;
        // Linearity: R^2 of the through-origin fit.
        let ymean = points.iter().map(|(_, y)| y).sum::<f64>() / points.len() as f64;
        let ss_tot: f64 = points.iter().map(|(_, y)| (y - ymean).powi(2)).sum();
        let ss_res: f64 = points.iter().map(|(x, y)| (y - slope * x).powi(2)).sum();
        let r2 = if ss_tot > 0.0 {
            1.0 - ss_res / ss_tot
        } else {
            1.0
        };
        rows.push(vec![
            fam.name().to_string(),
            points.len().to_string(),
            num(slope, 3),
            num(r2, 3),
        ]);
        all_points.push(serde_json::json!({
            "family": fam.name(),
            "points": points,
            "slope": slope,
        }));
    }
    print_table(
        &[
            "Model Family",
            "Models",
            "Slope sum/model",
            "R^2 (linear fit)",
        ],
        &rows,
    );
    println!(
        "\nPoints above y = x: {total_above}/{total} (paper: all points above the line)",
        total_above = total - violations
    );
    save_json(
        &opts.out_dir,
        "fig2",
        &serde_json::json!({
            "families": all_points,
            "points_above_line": total - violations,
            "points_total": total,
        }),
    );
}
