//! Figure 9: NAS Pareto fronts under four latency metrics.
//!
//! Sample subnets from the OFA-style supernet, score accuracy with the
//! surrogate, and compare Pareto fronts / rank correlations of FLOPs,
//! lookup-table latency, NNLP-predicted latency and true latency — over
//! the full latency range and inside a tight compute-budget band.

use crate::opts::Opts;
use crate::report::{num, print_table, save_json};
use nnlqp_ir::{cost, DType, Graph, Rng64};
use nnlqp_nas::{accuracy_surrogate, pareto, LookupTable, SubnetConfig, Supernet};
use nnlqp_predict::train::{train, Dataset, TrainConfig};
use nnlqp_predict::{extract_features, kendall_tau, NnlpConfig, NnlpModel};
use nnlqp_sim::{exec::model_latency_ms, PlatformSpec};

/// Run the experiment.
pub fn run(opts: &Opts) {
    let n_eval = (opts.per_family * 5).clamp(150, 1000);
    let n_train = (opts.per_family * 8).clamp(240, 800);
    println!(
        "Figure 9: NAS Pareto fronts ({n_eval} subnets evaluated, predictor trained on {n_train})\n"
    );
    let platform = PlatformSpec::by_name("gpu-T4-trt7.1-fp32").expect("registry platform");
    let sn = Supernet::default();
    let mut rng = Rng64::new(opts.seed ^ 0xF9);

    // Training pool for the NNLP predictor.
    eprintln!("  measuring {n_train} training subnets...");
    let train_pool: Vec<(Graph, f64)> = (0..n_train)
        .map(|i| {
            let cfg = SubnetConfig::sample(&mut rng);
            let g = sn
                .subnet_graph(&cfg, &format!("train-{i}"))
                .expect("valid subnet");
            let l = model_latency_ms(&g, &platform);
            (g, l)
        })
        .collect();
    let entries: Vec<(&Graph, f64, usize)> =
        train_pool.iter().map(|(g, l)| (g, *l, 0usize)).collect();
    let ds = Dataset::build(&entries);
    let mut mrng = Rng64::new(opts.seed ^ 0x99);
    let mut predictor = NnlpModel::new(
        NnlpConfig {
            hidden: 48,
            head_hidden: 48,
            gnn_layers: 3,
            dropout: 0.05,
            ..Default::default()
        },
        ds.norm.clone(),
        &mut mrng,
    );
    eprintln!("  training the latency predictor...");
    train(
        &mut predictor,
        &ds.samples,
        TrainConfig {
            // Ranking within the narrow OFA space needs a well-converged
            // predictor; train twice as long as the corpus experiments.
            epochs: opts.epochs * 2,
            batch_size: 16,
            lr: 1e-3,
            seed: opts.seed,
        },
    );
    eprintln!("  building the per-block lookup table...");
    let lut = LookupTable::build(&sn, &platform);

    // Evaluation population.
    eprintln!("  evaluating {n_eval} subnets under all four metrics...");
    let mut flops = Vec::with_capacity(n_eval);
    let mut lookup = Vec::with_capacity(n_eval);
    let mut predicted = Vec::with_capacity(n_eval);
    let mut true_lat = Vec::with_capacity(n_eval);
    let mut accuracy = Vec::with_capacity(n_eval);
    for i in 0..n_eval {
        let cfg = SubnetConfig::sample(&mut rng);
        let g = sn
            .subnet_graph(&cfg, &format!("eval-{i}"))
            .expect("valid subnet");
        let gf = cost::graph_cost(&g, DType::F32).flops;
        flops.push(gf);
        lookup.push(lut.estimate_ms(&cfg));
        predicted.push(predictor.predict_ms(&extract_features(&g), 0));
        true_lat.push(model_latency_ms(&g, &platform));
        accuracy.push(accuracy_surrogate(&cfg, gf / 1e9));
    }

    // Kendall tau, full range.
    let tau_full = [
        kendall_tau(&flops, &true_lat),
        kendall_tau(&lookup, &true_lat),
        kendall_tau(&predicted, &true_lat),
    ];
    // Budget band: subnets within +-15% of the median true latency
    // (the paper's "computation budget around 300M" slice).
    let mut sorted = true_lat.clone();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let median = sorted[sorted.len() / 2];
    let band: Vec<usize> = (0..n_eval)
        .filter(|&i| (true_lat[i] - median).abs() <= 0.15 * median)
        .collect();
    let slice = |v: &[f64]| -> Vec<f64> { band.iter().map(|&i| v[i]).collect() };
    let (bf, bl, bp, bt) = (
        slice(&flops),
        slice(&lookup),
        slice(&predicted),
        slice(&true_lat),
    );
    let tau_band = [
        kendall_tau(&bf, &bt),
        kendall_tau(&bl, &bt),
        kendall_tau(&bp, &bt),
    ];

    print_table(
        &[
            "Metric vs true latency",
            "Kendall tau (full)",
            "Kendall tau (budget band)",
        ],
        &[
            vec!["FLOPs".into(), num(tau_full[0], 2), num(tau_band[0], 2)],
            vec![
                "Lookup table".into(),
                num(tau_full[1], 2),
                num(tau_band[1], 2),
            ],
            vec![
                "NNLP predicted".into(),
                num(tau_full[2], 2),
                num(tau_band[2], 2),
            ],
        ],
    );

    // Accuracy achievable under a latency budget by each front.
    let budget = median;
    let acc_true =
        pareto::best_accuracy_under_budget(&true_lat, &true_lat, &accuracy, budget).unwrap_or(0.0);
    let acc_pred =
        pareto::best_accuracy_under_budget(&predicted, &true_lat, &accuracy, budget).unwrap_or(0.0);
    let acc_lut =
        pareto::best_accuracy_under_budget(&lookup, &true_lat, &accuracy, budget).unwrap_or(0.0);
    let acc_flops =
        pareto::best_accuracy_under_budget(&flops, &true_lat, &accuracy, budget).unwrap_or(0.0);
    println!("\nBest accuracy within the {budget:.2} ms budget, by selection metric:");
    print_table(
        &[
            "Selection metric",
            "Best accuracy",
            "Gap to true-latency front",
        ],
        &[
            vec!["True latency".into(), num(acc_true, 2), num(0.0, 2)],
            vec![
                "NNLP predicted".into(),
                num(acc_pred, 2),
                num(acc_true - acc_pred, 2),
            ],
            vec![
                "Lookup table".into(),
                num(acc_lut, 2),
                num(acc_true - acc_lut, 2),
            ],
            vec![
                "FLOPs".into(),
                num(acc_flops, 2),
                num(acc_true - acc_flops, 2),
            ],
        ],
    );
    println!("\nPaper: taus 0.87/0.91/0.92 (full) -> 0.38/0.53/0.73 (300M budget);");
    println!(
        "the predictor front gains +1.2% accuracy over the FLOPs front and +0.6% over lookup."
    );
    save_json(
        &opts.out_dir,
        "fig9",
        &serde_json::json!({
            "tau_full": {"flops": tau_full[0], "lookup": tau_full[1], "predicted": tau_full[2]},
            "tau_band": {"flops": tau_band[0], "lookup": tau_band[1], "predicted": tau_band[2]},
            "band_size": band.len(),
            "budget_ms": budget,
            "best_accuracy": {
                "true": acc_true, "predicted": acc_pred, "lookup": acc_lut, "flops": acc_flops,
            },
        }),
    );
}
