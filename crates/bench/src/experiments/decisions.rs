//! §9: "How does NNLQP help model design?" — the four concrete design
//! decisions the paper walks through, answered against the simulator:
//!
//! 1. which operators to avoid on a platform (toolchain support),
//! 2. which backbone wins the latency/accuracy trade (RegNetX vs ResNet),
//! 3. which hardware to deploy on (P4 vs T4; atlas300 vs mlu270),
//! 4. what a lower precision actually buys (fp32 vs int8).

use crate::opts::Opts;
use crate::report::{num, print_table, save_json};
use nnlqp_models::{regnet, resnet, ModelFamily};
use nnlqp_sim::{exec::model_latency_ms, PlatformSpec};

/// Run the experiment.
pub fn run(opts: &Opts) {
    println!("Section 9: design decisions answered by latency queries\n");

    // 1. Operator support.
    println!("1. Which operators are not suitable:");
    let mbv3 = ModelFamily::MobileNetV3
        .canonical()
        .expect("generator is valid");
    for platform in [
        "hi3559A-nnie11-int8",
        "rv1109-rknn-int8",
        "gpu-T4-trt7.1-fp32",
    ] {
        let p = PlatformSpec::by_name(platform).expect("registry platform");
        let bad = p.unsupported_in(&mbv3);
        if bad.is_empty() {
            println!("   {platform}: all MobileNetV3 operators supported");
        } else {
            let names: Vec<&str> = bad.iter().map(|o| o.name()).collect();
            println!(
                "   {platform}: avoid {} (falls back to slow host kernels)",
                names.join(", ")
            );
        }
    }

    // 2. Backbone choice: RegNetX-200M vs ResNet18 on P4 int8.
    let p4_int8 = PlatformSpec::by_name("gpu-P4-trt7.1-int8").expect("registry platform");
    let regnet = regnet::build("regnetx-200m", &regnet::RegNetConfig::default()).unwrap();
    let resnet18 = resnet::build("resnet18", &resnet::ResNetConfig::default()).unwrap();
    let lr = model_latency_ms(&regnet, &p4_int8);
    let lres = model_latency_ms(&resnet18, &p4_int8);
    println!("\n2. Backbone choice (P4 int8, similar ImageNet accuracy):");
    print_table(
        &["Backbone", "Latency (ms)", "Relative"],
        &[
            vec!["ResNet18".into(), num(lres, 3), "100%".into()],
            vec![
                "RegNetX-200M".into(),
                num(lr, 3),
                format!("{:.0}%", lr / lres * 100.0),
            ],
        ],
    );
    println!("   paper: RegNetX-200M runs at 150% of ResNet18 despite ~7x fewer FLOPs");

    // 3. Hardware choice.
    let t4_int8 = PlatformSpec::by_name("gpu-T4-trt7.1-int8").expect("registry platform");
    let lp4 = model_latency_ms(&resnet18, &p4_int8);
    let lt4 = model_latency_ms(&resnet18, &t4_int8);
    println!("\n3. Hardware choice (ResNet18, int8, batch 1):");
    println!(
        "   P4 {:.3} ms vs T4 {:.3} ms -> switching to T4 saves {:.0}% (paper: P4 is ~2x T4)",
        lp4,
        lt4,
        (1.0 - lt4 / lp4) * 100.0
    );
    let atlas = PlatformSpec::by_name("atlas300-acl-fp16").expect("registry platform");
    let mlu = PlatformSpec::by_name("mlu270-neuware-int8").expect("registry platform");
    let (la, lm) = (
        model_latency_ms(&resnet18, &atlas),
        model_latency_ms(&resnet18, &mlu),
    );
    println!("   atlas300 {la:.3} ms vs mlu270 {lm:.3} ms (paper: atlas300 is faster)");

    // 4. Data-type choice.
    let t4_fp32 = PlatformSpec::by_name("gpu-T4-trt7.1-fp32").expect("registry platform");
    let lf = model_latency_ms(&resnet18, &t4_fp32);
    let li = model_latency_ms(&resnet18, &t4_int8);
    println!("\n4. Data-type choice (ResNet18 on T4):");
    println!(
        "   fp32 {:.3} ms vs int8 {:.3} ms -> int8 speedup {:.2}x; if a model's speedup is",
        lf,
        li,
        lf / li
    );
    println!("   marginal (<5%), prefer fp32 to avoid accuracy risk (paper's ViT example).");

    save_json(
        &opts.out_dir,
        "decisions",
        &serde_json::json!({
            "regnet_vs_resnet_p4int8": lr / lres,
            "resnet_p4_over_t4_int8": lp4 / lt4,
            "atlas_ms": la, "mlu_ms": lm,
            "t4_fp32_over_int8": lf / li,
        }),
    );
}
