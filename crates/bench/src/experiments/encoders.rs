//! Encoder comparison: GraphSAGE vs transformer behind the `Predictor`
//! trait, on both tasks the trait serves — multi-platform latency
//! prediction (§6) and NAS-Bench-201 accuracy prediction (§7.3's "new
//! task" transfer). One table, two encoders, two tasks, all four cells
//! reached through the same object-safe API.

use crate::opts::Opts;
use crate::report::{pct, print_table, save_json};
use nnlqp_ir::{Graph, Rng64};
use nnlqp_models::{family::CORPUS_FAMILIES, generate_family};
use nnlqp_nas::accuracy_benchmark;
use nnlqp_predict::train::{Dataset, TrainConfig};
use nnlqp_predict::{
    acc_at, extract_features, mape, NnlpConfig, NnlpModel, Predictor, PredictorKind,
    TransformerConfig, TransformerModel,
};
use nnlqp_sim::{measure, PlatformSpec};

/// Fresh multi-head model of the requested encoder architecture, sized
/// to match across encoders so the comparison is capacity-fair.
fn fresh(
    arch: PredictorKind,
    n_heads: usize,
    norm: nnlqp_predict::Normalizer,
    seed: u64,
) -> Box<dyn Predictor> {
    let mut rng = Rng64::new(seed);
    match arch {
        PredictorKind::Sage => Box::new(NnlpModel::new(
            NnlpConfig {
                hidden: 32,
                head_hidden: 32,
                gnn_layers: 2,
                n_heads,
                dropout: 0.05,
                ..Default::default()
            },
            norm,
            &mut rng,
        )),
        PredictorKind::Transformer => Box::new(TransformerModel::new(
            TransformerConfig {
                d_model: 32,
                layers: 2,
                attn_heads: 4,
                head_hidden: 32,
                n_heads,
                dropout: 0.05,
                ..Default::default()
            },
            norm,
            &mut rng,
        )),
        other => unimplemented!("no bench constructor for architecture {other}"),
    }
}

/// Run the experiment.
pub fn run(opts: &Opts) {
    // Keep the latency side small: three platforms, a modest shared
    // corpus. The point is encoder-vs-encoder shape, not Table 3 scale.
    let platforms: Vec<PlatformSpec> = PlatformSpec::table2_platforms()
        .into_iter()
        .take(3)
        .collect();
    let per_fam = (opts.per_family / 2).max(4);
    println!(
        "Encoders: GraphSAGE vs transformer via the Predictor trait ({} models x {} platforms)\n",
        per_fam * CORPUS_FAMILIES.len(),
        platforms.len()
    );

    let mut graphs: Vec<Graph> = Vec::new();
    for f in CORPUS_FAMILIES {
        for m in generate_family(f, per_fam, opts.seed) {
            graphs.push(m.graph);
        }
    }
    let mut idx: Vec<usize> = (0..graphs.len()).collect();
    Rng64::new(opts.seed ^ 0xE7C).shuffle(&mut idx);
    let cut = idx.len() * 7 / 10;
    let (train_idx, test_idx) = idx.split_at(cut);

    let labels: Vec<Vec<f64>> = platforms
        .iter()
        .map(|p| {
            graphs
                .iter()
                .enumerate()
                .map(|(i, g)| measure(g, p, opts.reps, opts.seed ^ (i as u64)).mean_ms)
                .collect()
        })
        .collect();

    let mut union_entries: Vec<(&Graph, f64, usize)> = Vec::new();
    for (h, lab) in labels.iter().enumerate() {
        for &i in train_idx {
            union_entries.push((&graphs[i], lab[i], h));
        }
    }
    let ds = Dataset::build(&union_entries);

    let mut rows = Vec::new();
    let mut json_archs = std::collections::BTreeMap::new();
    for &arch in PredictorKind::all() {
        eprintln!(
            "  [{arch}] training the latency predictor ({} samples)...",
            ds.samples.len()
        );
        let mut model = fresh(arch, platforms.len(), ds.norm.clone(), opts.seed ^ 0x1A7);
        model.train_in_place(
            &ds.samples,
            TrainConfig {
                epochs: opts.epochs,
                batch_size: 16,
                lr: 1e-3,
                seed: opts.seed,
            },
        );
        let mut preds = Vec::new();
        let mut truths = Vec::new();
        for &i in test_idx {
            let feats = extract_features(&graphs[i]);
            for (h, lab) in labels.iter().enumerate() {
                preds.push(model.predict_ms(&feats, h));
                truths.push(lab[i]);
            }
        }
        let lat_mape = mape(&preds, &truths);
        let lat_acc10 = acc_at(&preds, &truths, 0.10);

        eprintln!("  [{arch}] training the NAS-Bench-201 accuracy predictor...");
        let acc = accuracy_benchmark(
            arch,
            3 * per_fam,
            per_fam.max(8),
            opts.epochs * 3,
            opts.seed,
        );

        rows.push(vec![
            arch.to_string(),
            pct(lat_acc10),
            format!("{lat_mape:.1}"),
            pct(acc.acc10_pct),
            format!("{:.1}", acc.mape_pct),
        ]);
        json_archs.insert(
            arch.to_string(),
            serde_json::json!({
                "latency": { "acc10_pct": lat_acc10, "mape_pct": lat_mape },
                "nas_accuracy": {
                    "acc10_pct": acc.acc10_pct,
                    "acc5_pct": acc.acc5_pct,
                    "mape_pct": acc.mape_pct,
                    "baseline_acc10_pct": acc.baseline_acc10_pct,
                    "baseline_mape_pct": acc.baseline_mape_pct,
                },
            }),
        );
    }
    print_table(
        &[
            "encoder",
            "latency Acc(10%)",
            "latency MAPE",
            "NAS-acc Acc(10%)",
            "NAS-acc MAPE",
        ],
        &rows,
    );
    save_json(
        &opts.out_dir,
        "encoders",
        &serde_json::json!({
            "platforms": platforms.iter().map(|p| p.name.clone()).collect::<Vec<_>>(),
            "models": graphs.len(),
            "epochs": opts.epochs,
            "architectures": serde_json::Value::Object(json_archs),
        }),
    );
}
