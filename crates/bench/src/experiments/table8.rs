//! Table 8 (Appendix D): kernel-split statistics over the corpus.

use crate::opts::Opts;
use crate::report::{pct, print_table, save_json};
use nnlqp_ir::Graph;
use nnlqp_models::{family::CORPUS_FAMILIES, generate_family};
use nnlqp_sim::fusion::fusion_stats;

/// Run the experiment.
pub fn run(opts: &Opts) {
    println!(
        "Table 8: statistics of kernels split from the corpus ({} models/family)\n",
        opts.per_family
    );
    let mut graphs: Vec<Graph> = Vec::new();
    for f in CORPUS_FAMILIES {
        for m in generate_family(f, opts.per_family, opts.seed) {
            graphs.push(m.graph);
        }
    }
    let stats = fusion_stats(graphs.iter());
    let total: usize = stats.values().sum();
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    for (fam, count) in &stats {
        rows.push(vec![
            fam.name().to_string(),
            count.to_string(),
            pct(*count as f64 / total as f64 * 100.0),
        ]);
        json_rows.push(serde_json::json!({"family": fam.name(), "count": count}));
    }
    rows.push(vec!["All".into(), total.to_string(), pct(100.0)]);
    print_table(&["Kernel Family", "Number", "Percentage"], &rows);
    println!(
        "\nAverage kernels per model: {:.1} (paper: ~18; Conv+Relu dominates at 59.9%)",
        total as f64 / graphs.len() as f64
    );
    save_json(
        &opts.out_dir,
        "table8",
        &serde_json::json!({
            "rows": json_rows, "total": total, "models": graphs.len(),
        }),
    );
}
