//! Table 6: multi-platform prediction — nine independent single-platform
//! models ("multi-models") vs one shared-backbone model with nine heads
//! ("single-model"), Acc(10%) per platform, plus the prediction-cost
//! comparison of §8.5.

use crate::opts::Opts;
use crate::report::{pct, print_table, save_json};
use nnlqp_ir::{Graph, Rng64};
use nnlqp_models::{family::CORPUS_FAMILIES, generate_family};
use nnlqp_predict::train::{predict_samples, train, truths, Dataset, Sample, TrainConfig};
use nnlqp_predict::{acc_at, NnlpConfig, NnlpModel};
use nnlqp_sim::{measure, PlatformSpec};
use std::time::Instant;

/// Run the experiment.
pub fn run(opts: &Opts) {
    let platforms = PlatformSpec::table2_platforms();
    let n_models = (opts.per_family * CORPUS_FAMILIES.len() / 3).max(60);
    println!(
        "Table 6: multi-models vs single multi-head model, Acc(10%) ({n_models} models/platform)\n"
    );
    // One shared pool of graphs measured on every platform.
    let mut graphs: Vec<Graph> = Vec::new();
    let per_fam = (n_models / CORPUS_FAMILIES.len()).max(2);
    for f in CORPUS_FAMILIES {
        for m in generate_family(f, per_fam, opts.seed) {
            graphs.push(m.graph);
        }
    }
    // Train/test split (7:3).
    let mut idx: Vec<usize> = (0..graphs.len()).collect();
    Rng64::new(opts.seed ^ 0x66).shuffle(&mut idx);
    let cut = idx.len() * 7 / 10;
    let (train_idx, test_idx) = idx.split_at(cut);

    // Measured labels per platform.
    let labels: Vec<Vec<f64>> = platforms
        .iter()
        .map(|p| {
            graphs
                .iter()
                .enumerate()
                .map(|(i, g)| measure(g, p, opts.reps, opts.seed ^ (i as u64)).mean_ms)
                .collect()
        })
        .collect();

    let cfg = |heads: usize| NnlpConfig {
        hidden: 48,
        head_hidden: 48,
        gnn_layers: 3,
        n_heads: heads,
        dropout: 0.05,
        ..Default::default()
    };
    let tc = TrainConfig {
        epochs: opts.epochs,
        batch_size: 16,
        lr: 1e-3,
        seed: opts.seed,
    };

    // Single multi-head model over the union of all platforms.
    let mut union_entries: Vec<(&Graph, f64, usize)> = Vec::new();
    for (h, lab) in labels.iter().enumerate() {
        for &i in train_idx {
            union_entries.push((&graphs[i], lab[i], h));
        }
    }
    let union_ds = Dataset::build(&union_entries);
    let mut rng = Rng64::new(opts.seed ^ 0x600D);
    eprintln!(
        "  training the single multi-head model ({} samples)...",
        union_ds.samples.len()
    );
    let mut single = NnlpModel::new(cfg(platforms.len()), union_ds.norm.clone(), &mut rng);
    train(&mut single, &union_ds.samples, tc);

    // Nine independent single-head models.
    let mut multis: Vec<NnlpModel> = Vec::new();
    for (h, p) in platforms.iter().enumerate() {
        eprintln!("  training the per-platform model for {}...", p.name);
        let entries: Vec<(&Graph, f64, usize)> = train_idx
            .iter()
            .map(|&i| (&graphs[i], labels[h][i], 0usize))
            .collect();
        let ds = Dataset::build(&entries);
        let mut rng = Rng64::new(opts.seed ^ (h as u64) << 3);
        let mut m = NnlpModel::new(cfg(1), ds.norm.clone(), &mut rng);
        train(&mut m, &ds.samples, tc);
        multis.push(m);
    }

    // Evaluate Acc(10%) per platform.
    let mut rows = Vec::new();
    let mut json_rows = Vec::new();
    let mut avg = [0.0f64; 2];
    for (h, p) in platforms.iter().enumerate() {
        let test_entries: Vec<(&Graph, f64, usize)> = test_idx
            .iter()
            .map(|&i| (&graphs[i], labels[h][i], h))
            .collect();
        let test_union: Vec<Sample> = union_ds.extend_with(&test_entries);
        let t = truths(&test_union);
        let acc_single = acc_at(&predict_samples(&single, &test_union), &t, 0.10);
        // The per-platform model uses its own normalizer and head 0.
        let per_entries: Vec<(&Graph, f64, usize)> = test_idx
            .iter()
            .map(|&i| (&graphs[i], labels[h][i], 0usize))
            .collect();
        let per_ds_samples = {
            let train_entries: Vec<(&Graph, f64, usize)> = train_idx
                .iter()
                .map(|&i| (&graphs[i], labels[h][i], 0usize))
                .collect();
            Dataset::build(&train_entries).extend_with(&per_entries)
        };
        let acc_multi = acc_at(&predict_samples(&multis[h], &per_ds_samples), &t, 0.10);
        avg[0] += acc_multi / platforms.len() as f64;
        avg[1] += acc_single / platforms.len() as f64;
        rows.push(vec![p.name.clone(), pct(acc_multi), pct(acc_single)]);
        json_rows.push(serde_json::json!({
            "platform": p.name, "multi_models": acc_multi, "single_model": acc_single,
        }));
    }
    rows.push(vec!["Average".into(), pct(avg[0]), pct(avg[1])]);
    print_table(&["Platform", "Multi-models", "Single-model"], &rows);

    // Prediction-cost comparison: 100 models on all 9 platforms. The
    // single model runs its shared backbone once per model and evaluates
    // every head; the nine independent models each run their own full
    // pipeline (feature extraction + backbone) per platform.
    let probe_graphs: Vec<&Graph> = graphs.iter().take(100).collect();
    let t0 = Instant::now();
    for g in &probe_graphs {
        let f = nnlqp_predict::extract_features(g);
        let _ = single.predict_all_heads_ms(&f);
    }
    let single_cost = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    for g in &probe_graphs {
        for m in &multis {
            let f = nnlqp_predict::extract_features(g);
            let _ = m.predict_ms(&f, 0);
        }
    }
    let multi_cost = t1.elapsed().as_secs_f64();
    println!(
        "\nPrediction cost for {} models x {} platforms: multi-models {multi_cost:.3}s vs single-model {single_cost:.3}s ({:.1}x saving)",
        probe_graphs.len(),
        platforms.len(),
        multi_cost / single_cost.max(1e-9),
    );
    println!("Paper: 93.41s vs 10.59s (~9x saving); average Acc(10%) 80.6% vs 79.5%");
    save_json(
        &opts.out_dir,
        "table6",
        &serde_json::json!({
            "rows": json_rows,
            "average": {"multi_models": avg[0], "single_model": avg[1]},
            "cost_s": {"multi_models": multi_cost, "single_model": single_cost},
        }),
    );
}
