//! Table 4: ablation of the unified graph embedding (wo/F0, wo/gnn,
//! wo/static), same leave-one-family-out protocol as Table 3.

use crate::corpus::{leave_one_out, measured_corpus};
use crate::methods::{fit, Method};
use crate::opts::Opts;
use crate::report::{pct, print_table, save_json};
use nnlqp_models::family::CORPUS_FAMILIES;
use nnlqp_predict::mape;
use nnlqp_sim::PlatformSpec;

/// Run the experiment.
pub fn run(opts: &Opts) {
    println!(
        "Table 4: graph-embedding ablations, MAPE ({} models/family)\n",
        opts.per_family
    );
    let platform = PlatformSpec::by_name("gpu-gtx1660-trt7.1-fp32").expect("registry platform");
    let corpus = measured_corpus(
        &CORPUS_FAMILIES,
        opts.per_family,
        &platform,
        opts.seed,
        opts.reps,
    );
    let methods = Method::TABLE4;
    let mut rows = Vec::new();
    let mut avg = vec![0.0f64; methods.len()];
    let mut json_rows = Vec::new();
    for fam in CORPUS_FAMILIES {
        let (test, train) = leave_one_out(&corpus, fam);
        eprintln!("  fold {}", fam.name());
        let truth: Vec<f64> = test.iter().map(|m| m.latency_ms).collect();
        let mut cells = vec![fam.name().to_string()];
        let mut json_row = Vec::new();
        for (j, m) in methods.iter().enumerate() {
            let fitted = fit(*m, &train, &platform, opts);
            let preds: Vec<f64> = test.iter().map(|x| fitted.predict(&x.graph)).collect();
            let e = mape(&preds, &truth);
            avg[j] += e / CORPUS_FAMILIES.len() as f64;
            cells.push(pct(e));
            json_row.push(e);
        }
        rows.push(cells);
        json_rows.push(serde_json::json!({"family": fam.name(), "mape": json_row}));
    }
    rows.push(
        std::iter::once("Average".to_string())
            .chain(avg.iter().map(|v| pct(*v)))
            .collect(),
    );
    let headers: Vec<&str> = std::iter::once("Model Family")
        .chain(methods.iter().map(|m| m.name()))
        .collect();
    print_table(&headers, &rows);
    println!("\nPaper averages — NNLP 10.66%, wo/F0 31.61%, wo/gnn 25.15%, wo/static 23.59%");
    println!("(importance order: node features > GNN > static features)");
    save_json(
        &opts.out_dir,
        "table4",
        &serde_json::json!({
            "methods": methods.iter().map(|m| m.name()).collect::<Vec<_>>(),
            "rows": json_rows,
            "average": avg,
        }),
    );
}
