//! Figure 6: transfer learning for unseen structures.
//!
//! For each displayed family: pre-train on the other nine families, then
//! fine-tune on a growing number of samples of the held-out family;
//! compare Acc(10%) against training from scratch on the same samples.

use crate::corpus::{measured_corpus, MeasuredModel};
use crate::opts::Opts;
use crate::report::{pct, print_table, save_json};
use nnlqp_ir::{Graph, Rng64};
use nnlqp_models::{family::CORPUS_FAMILIES, generate_family, ModelFamily};
use nnlqp_predict::train::{predict_samples, train, truths, Dataset, TrainConfig};
use nnlqp_predict::transfer::{fine_tune_structures, train_from_scratch};
use nnlqp_predict::{acc_at, NnlpConfig, NnlpModel};
use nnlqp_sim::{measure, PlatformSpec};

/// The five families displayed in the paper's Fig. 6.
pub const DISPLAY_FAMILIES: [ModelFamily; 5] = [
    ModelFamily::ResNet,
    ModelFamily::MobileNetV2,
    ModelFamily::EfficientNet,
    ModelFamily::GoogleNet,
    ModelFamily::NasBench201,
];

/// Fine-tuning sample counts (paper: 32, 100, 200, 300, ...).
pub const SAMPLE_COUNTS: [usize; 4] = [32, 100, 200, 300];

/// Size of the held-out evaluation set.
const TEST_COUNT: usize = 100;

/// Run the experiment.
pub fn run(opts: &Opts) {
    println!("Figure 6: transfer learning on unseen structures, Acc(10%)\n");
    let platform = PlatformSpec::by_name("gpu-gtx1660-trt7.1-fp32").expect("registry platform");
    let base_corpus = measured_corpus(
        &CORPUS_FAMILIES,
        opts.per_family,
        &platform,
        opts.seed,
        opts.reps,
    );
    let mut rows = Vec::new();
    let mut json_out = Vec::new();
    for fam in DISPLAY_FAMILIES {
        eprintln!("  family {}...", fam.name());
        // Pre-train on the other nine families.
        let pretrain: Vec<&MeasuredModel> =
            base_corpus.iter().filter(|m| m.family != fam).collect();
        let entries: Vec<(&Graph, f64, usize)> = pretrain
            .iter()
            .map(|m| (&m.graph, m.latency_ms, 0usize))
            .collect();
        let ds = Dataset::build(&entries);
        let mut rng = Rng64::new(opts.seed ^ fam as u64);
        let mut pre = NnlpModel::new(
            NnlpConfig {
                hidden: 48,
                head_hidden: 48,
                gnn_layers: 3,
                dropout: 0.05,
                ..Default::default()
            },
            ds.norm.clone(),
            &mut rng,
        );
        train(
            &mut pre,
            &ds.samples,
            TrainConfig {
                epochs: opts.epochs,
                batch_size: 16,
                lr: 1e-3,
                seed: opts.seed,
            },
        );
        // Fresh variants of the held-out family (disjoint seed).
        let max_n = *SAMPLE_COUNTS.last().unwrap();
        let fresh: Vec<(Graph, f64)> = generate_family(fam, max_n + TEST_COUNT, opts.seed ^ 0xF16)
            .into_iter()
            .enumerate()
            .map(|(i, m)| {
                let l =
                    measure(&m.graph, &platform, opts.reps, opts.seed ^ (i as u64) << 4).mean_ms;
                (m.graph, l)
            })
            .collect();
        let fresh_entries: Vec<(&Graph, f64, usize)> =
            fresh.iter().map(|(g, l)| (g, *l, 0usize)).collect();
        let samples = ds.extend_with(&fresh_entries);
        let (pool, test) = samples.split_at(max_n);
        let t = truths(test);

        let mut fam_json = Vec::new();
        for &n in &SAMPLE_COUNTS {
            let ft_cfg = TrainConfig {
                epochs: (opts.epochs / 2).max(10),
                batch_size: 16,
                lr: 1e-3,
                seed: opts.seed ^ n as u64,
            };
            let (tuned, _) = fine_tune_structures(&pre, &pool[..n], ft_cfg);
            let (scratch, _) = train_from_scratch(&pre, &pool[..n], ft_cfg);
            let acc_t = acc_at(&predict_samples(&tuned, test), &t, 0.10);
            let acc_s = acc_at(&predict_samples(&scratch, test), &t, 0.10);
            rows.push(vec![
                fam.name().to_string(),
                n.to_string(),
                pct(acc_s),
                pct(acc_t),
                pct(acc_t - acc_s),
            ]);
            fam_json.push(serde_json::json!({
                "samples": n, "scratch": acc_s, "pretrained": acc_t,
            }));
        }
        json_out.push(serde_json::json!({"family": fam.name(), "curve": fam_json}));
    }
    print_table(
        &[
            "Family",
            "Samples",
            "Scratch Acc(10%)",
            "Pre-trained Acc(10%)",
            "Gain",
        ],
        &rows,
    );
    println!("\nPaper: pre-trained curves lie above scratch at every sample count;");
    println!("the gain is largest at few samples (ResNet: +30.8% at 32 samples, +1.7% at 1000).");
    save_json(
        &opts.out_dir,
        "fig6",
        &serde_json::json!({"families": json_out}),
    );
}
