//! Text-table printing and JSON result persistence.

use std::path::Path;

/// Print a fixed-width table: `headers` then one row per entry.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate().take(cols) {
            if i > 0 {
                s.push_str("  ");
            }
            s.push_str(&format!("{:<w$}", c, w = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(headers.iter().map(ToString::to_string).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Write a JSON value under `<out_dir>/<name>.json` (no-op if out_dir is
/// None).
pub fn save_json(out_dir: &Option<std::path::PathBuf>, name: &str, value: &serde_json::Value) {
    let Some(dir) = out_dir else { return };
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warning: cannot create {dir:?}: {e}");
        return;
    }
    let path: std::path::PathBuf = Path::new(dir).join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(s) => {
            if let Err(e) = std::fs::write(&path, s) {
                eprintln!("warning: cannot write {path:?}: {e}");
            } else {
                eprintln!("(results saved to {})", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot serialize {name}: {e}"),
    }
}

/// Format a percentage with two decimals, paper style.
pub fn pct(x: f64) -> String {
    format!("{x:.2}%")
}

/// Format a float with `d` decimals.
pub fn num(x: f64, d: usize) -> String {
    format!("{x:.d$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_and_num_format() {
        assert_eq!(pct(12.306), "12.31%");
        assert_eq!(num(2.99792, 2), "3.00");
    }

    #[test]
    fn save_json_noop_without_dir() {
        save_json(&None, "x", &serde_json::json!({"a": 1}));
    }

    #[test]
    fn save_json_writes_file() {
        let dir = std::env::temp_dir().join("nnlqp-bench-test");
        save_json(&Some(dir.clone()), "unit", &serde_json::json!({"ok": true}));
        let content = std::fs::read_to_string(dir.join("unit.json")).unwrap();
        assert!(content.contains("\"ok\": true"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
