//! Harness options shared by all experiments.

use std::path::PathBuf;

/// Scale and output knobs, parsed from the `repro` command line.
#[derive(Debug, Clone)]
pub struct Opts {
    /// Model variants per family (paper: 2,000).
    pub per_family: usize,
    /// Training epochs for learned predictors.
    pub epochs: usize,
    /// Master seed.
    pub seed: u64,
    /// Measurement repetitions (paper: 50).
    pub reps: usize,
    /// Where to write JSON results (None = print only).
    pub out_dir: Option<PathBuf>,
}

impl Default for Opts {
    fn default() -> Self {
        Opts {
            per_family: 30,
            epochs: 25,
            seed: 0x4e4e_4c51,
            reps: 20,
            out_dir: None,
        }
    }
}

impl Opts {
    /// Parse `--per-family N --epochs E --seed S --reps R --out DIR` from
    /// an argument list (unknown flags are rejected).
    pub fn parse(args: &[String]) -> Result<Opts, String> {
        let mut o = Opts::default();
        let mut it = args.iter();
        while let Some(a) = it.next() {
            let mut next = |what: &str| -> Result<&String, String> {
                it.next().ok_or(format!("missing value for {what}"))
            };
            match a.as_str() {
                "--per-family" => o.per_family = parse_num(next("--per-family")?)?,
                "--epochs" => o.epochs = parse_num(next("--epochs")?)?,
                "--seed" => o.seed = parse_num(next("--seed")?)? as u64,
                "--reps" => o.reps = parse_num(next("--reps")?)?,
                "--out" => o.out_dir = Some(PathBuf::from(next("--out")?)),
                other => return Err(format!("unknown flag: {other}")),
            }
        }
        Ok(o)
    }
}

fn parse_num(s: &str) -> Result<usize, String> {
    s.parse().map_err(|_| format!("not a number: {s}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn defaults() {
        let o = Opts::parse(&[]).unwrap();
        assert_eq!(o.per_family, 30);
        assert!(o.out_dir.is_none());
    }

    #[test]
    fn full_flags() {
        let o = Opts::parse(&argv(
            "--per-family 200 --epochs 10 --seed 9 --reps 50 --out /tmp/x",
        ))
        .unwrap();
        assert_eq!(o.per_family, 200);
        assert_eq!(o.epochs, 10);
        assert_eq!(o.seed, 9);
        assert_eq!(o.reps, 50);
        assert_eq!(o.out_dir.unwrap(), PathBuf::from("/tmp/x"));
    }

    #[test]
    fn unknown_flag_rejected() {
        assert!(Opts::parse(&argv("--frobnicate 3")).is_err());
        assert!(Opts::parse(&argv("--epochs")).is_err());
        assert!(Opts::parse(&argv("--epochs banana")).is_err());
    }
}
