//! The six latency-prediction methods of Table 3 (plus the Table 4
//! ablation variants) behind one fit/predict interface.

use crate::corpus::MeasuredModel;
use crate::opts::Opts;
use nnlqp_ir::{Graph, Rng64};
use nnlqp_predict::baselines::{StaticBaseline, StaticBaselineKind};
use nnlqp_predict::kernels::{build_kernel_dataset, KernelSample, NnMeter, TpuPredictor};
use nnlqp_predict::train::{train, Dataset, TrainConfig};
use nnlqp_predict::{extract_features, NnlpConfig, NnlpModel};
use nnlqp_sim::PlatformSpec;

/// Method identifiers, in Table 3 column order (ablations appended).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// FLOPs linear regression.
    Flops,
    /// FLOPs+MAC linear regression.
    FlopsMac,
    /// nn-Meter: per-kernel random forests + corrected sum.
    NnMeter,
    /// TPU: learned kernel model + corrected sum.
    Tpu,
    /// BRP-NAS: GNN without static features, mean pooling.
    BrpNas,
    /// Full NNLP.
    Nnlp,
    /// Ablation wo/F0.
    NnlpWoF0,
    /// Ablation wo/gnn.
    NnlpWoGnn,
    /// Ablation wo/static.
    NnlpWoStatic,
}

impl Method {
    /// Table column label.
    pub fn name(self) -> &'static str {
        match self {
            Method::Flops => "FLOPs",
            Method::FlopsMac => "FLOPs+MAC",
            Method::NnMeter => "nn-Meter",
            Method::Tpu => "TPU",
            Method::BrpNas => "BRP-NAS",
            Method::Nnlp => "NNLP",
            Method::NnlpWoF0 => "wo/F0",
            Method::NnlpWoGnn => "wo/gnn",
            Method::NnlpWoStatic => "wo/static",
        }
    }

    /// The Table 3 comparison set.
    pub const TABLE3: [Method; 6] = [
        Method::Flops,
        Method::FlopsMac,
        Method::NnMeter,
        Method::Tpu,
        Method::BrpNas,
        Method::Nnlp,
    ];

    /// The Table 4 set (NNLP + three ablations).
    pub const TABLE4: [Method; 4] = [
        Method::Nnlp,
        Method::NnlpWoF0,
        Method::NnlpWoGnn,
        Method::NnlpWoStatic,
    ];
}

/// Maximum kernels per family entering the kernel-method training sets
/// (the paper samples 2,000 / 1,000 per family).
pub const KERNELS_PER_FAMILY_CAP: usize = 2000;

/// A fitted method, ready to predict.
pub enum FittedMethod {
    /// Linear baselines.
    Static(StaticBaseline),
    /// nn-Meter (owns the platform for fallback costing).
    NnMeter(Box<NnMeter>, PlatformSpec),
    /// TPU kernel model.
    Tpu(Box<TpuPredictor>),
    /// Any NNLP-architecture model.
    Gnn(Box<NnlpModel>),
}

/// Cap a kernel dataset per family, preserving order.
pub fn cap_kernels_per_family(kd: Vec<KernelSample>, cap: usize) -> Vec<KernelSample> {
    use std::collections::HashMap;
    let mut seen: HashMap<nnlqp_sim::KernelFamily, usize> = HashMap::new();
    kd.into_iter()
        .filter(|k| {
            let c = seen.entry(k.desc.family).or_insert(0);
            *c += 1;
            *c <= cap
        })
        .collect()
}

fn gnn_config(method: Method, opts: &Opts) -> NnlpConfig {
    let mut cfg = match method {
        Method::BrpNas => NnlpConfig::brp_nas(),
        Method::NnlpWoF0 => NnlpConfig::without_node_features(),
        Method::NnlpWoGnn => NnlpConfig::without_gnn(),
        Method::NnlpWoStatic => NnlpConfig::without_static(),
        _ => NnlpConfig::default(),
    };
    cfg.hidden = 48;
    cfg.head_hidden = 48;
    if cfg.use_gnn {
        cfg.gnn_layers = if method == Method::BrpNas { 4 } else { 3 };
    }
    let _ = opts;
    cfg
}

/// Fit a method on a training slice of the measured corpus.
pub fn fit(
    method: Method,
    train_set: &[&MeasuredModel],
    platform: &PlatformSpec,
    opts: &Opts,
) -> FittedMethod {
    match method {
        Method::Flops | Method::FlopsMac => {
            let kind = if method == Method::Flops {
                StaticBaselineKind::Flops
            } else {
                StaticBaselineKind::FlopsMac
            };
            let data: Vec<(&Graph, f64)> =
                train_set.iter().map(|m| (&m.graph, m.latency_ms)).collect();
            FittedMethod::Static(StaticBaseline::fit(kind, &data))
        }
        Method::NnMeter => {
            let graphs: Vec<&Graph> = train_set.iter().map(|m| &m.graph).collect();
            let kd = cap_kernels_per_family(
                build_kernel_dataset(&graphs, platform, opts.seed),
                KERNELS_PER_FAMILY_CAP,
            );
            let md: Vec<(&Graph, f64)> =
                train_set.iter().map(|m| (&m.graph, m.latency_ms)).collect();
            FittedMethod::NnMeter(
                Box::new(NnMeter::fit(&kd, &md, platform, opts.seed)),
                platform.clone(),
            )
        }
        Method::Tpu => {
            let graphs: Vec<&Graph> = train_set.iter().map(|m| &m.graph).collect();
            let kd = cap_kernels_per_family(
                build_kernel_dataset(&graphs, platform, opts.seed),
                // The GNN kernel model trains per sample; keep it lighter.
                (KERNELS_PER_FAMILY_CAP / 4).max(250),
            );
            let md: Vec<(&Graph, f64)> =
                train_set.iter().map(|m| (&m.graph, m.latency_ms)).collect();
            FittedMethod::Tpu(Box::new(TpuPredictor::fit(
                &graphs,
                &kd,
                &md,
                (opts.epochs / 2).max(10),
                opts.seed,
            )))
        }
        _ => {
            let entries: Vec<(&Graph, f64, usize)> = train_set
                .iter()
                .map(|m| (&m.graph, m.latency_ms, 0usize))
                .collect();
            let ds = Dataset::build(&entries);
            let mut rng = Rng64::new(opts.seed ^ method as u64);
            let mut model = NnlpModel::new(gnn_config(method, opts), ds.norm.clone(), &mut rng);
            train(
                &mut model,
                &ds.samples,
                TrainConfig {
                    epochs: opts.epochs,
                    batch_size: 16,
                    lr: 1e-3,
                    seed: opts.seed,
                },
            );
            FittedMethod::Gnn(Box::new(model))
        }
    }
}

impl FittedMethod {
    /// Predict a model's latency in ms.
    pub fn predict(&self, g: &Graph) -> f64 {
        match self {
            FittedMethod::Static(b) => b.predict(g),
            FittedMethod::NnMeter(m, p) => m.predict_model(g, p),
            FittedMethod::Tpu(m) => m.predict_model(g),
            FittedMethod::Gnn(m) => m.predict_ms(&extract_features(g), 0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::measured_corpus;
    use nnlqp_models::ModelFamily;
    use nnlqp_predict::mape;

    #[test]
    fn every_method_fits_and_predicts() {
        let p = PlatformSpec::by_name("gpu-gtx1660-trt7.1-fp32").unwrap();
        let corpus = measured_corpus(&[ModelFamily::ResNet, ModelFamily::SqueezeNet], 8, &p, 3, 5);
        let refs: Vec<&MeasuredModel> = corpus.iter().collect();
        let opts = Opts {
            epochs: 10,
            ..Default::default()
        };
        for m in Method::TABLE3.iter().chain(&Method::TABLE4) {
            let fitted = fit(*m, &refs, &p, &opts);
            let preds: Vec<f64> = corpus.iter().map(|x| fitted.predict(&x.graph)).collect();
            assert!(
                preds.iter().all(|&x| x.is_finite() && x > 0.0),
                "{}",
                m.name()
            );
            let truth: Vec<f64> = corpus.iter().map(|x| x.latency_ms).collect();
            let e = mape(&preds, &truth);
            assert!(e < 500.0, "{} wildly off: {e}%", m.name());
        }
    }
}
