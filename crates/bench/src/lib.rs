//! # nnlqp-bench
//!
//! The experiment harness: one module per table/figure of the paper's
//! evaluation, all invocable through the `repro` binary:
//!
//! ```text
//! cargo run --release -p nnlqp-bench --bin repro -- table3 --per-family 100
//! cargo run --release -p nnlqp-bench --bin repro -- all
//! ```
//!
//! Results are printed as text tables and, when `--out` is given, written
//! as JSON for EXPERIMENTS.md bookkeeping. The default scale is reduced
//! relative to the paper (which used 2,000 variants per family and real
//! silicon); pass `--per-family 2000 --epochs 100` to approach it.

pub mod corpus;
pub mod experiments;
pub mod methods;
pub mod opts;
pub mod report;

pub use corpus::{measured_corpus, MeasuredModel};
pub use opts::Opts;
pub use report::{print_table, save_json};
