//! `repro` — regenerate any table or figure of the NNLQP paper.
//!
//! ```text
//! repro <experiment|all> [--per-family N] [--epochs E] [--seed S]
//!                        [--reps R] [--out DIR]
//! ```

use nnlqp_bench::experiments;
use nnlqp_bench::Opts;

fn usage() -> ! {
    eprintln!("usage: repro <experiment|all> [flags]");
    eprintln!("experiments: {}", experiments::ALL.join(" "));
    eprintln!("flags: --per-family N  --epochs E  --seed S  --reps R  --out DIR");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(which) = args.first() else { usage() };
    let opts = match Opts::parse(&args[1..]) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            usage();
        }
    };
    let start = std::time::Instant::now();
    let list: Vec<&str> = if which == "all" {
        experiments::ALL.to_vec()
    } else {
        vec![which.as_str()]
    };
    for (i, name) in list.iter().enumerate() {
        if i > 0 {
            println!("\n{}\n", "=".repeat(78));
        }
        if let Err(e) = experiments::run(name, &opts) {
            eprintln!("error: {e}");
            usage();
        }
    }
    eprintln!("\n[done in {:.1}s]", start.elapsed().as_secs_f64());
}
