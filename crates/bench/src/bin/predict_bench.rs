//! `predict-bench` — throughput and latency of the NNLP inference engine.
//!
//! Measures three ways of predicting latency for a NAS-style corpus of
//! subnet graphs across several platforms:
//!
//! * `single_uncached` — one `predict` call per `(graph, platform)` pair
//!   against a system with the embed cache disabled: every call pays
//!   feature extraction plus the full GNN backbone (the pre-optimization
//!   behavior);
//! * `batched_cold` — `predict_batch` with the cache invalidated before
//!   every repetition: the backbone runs once per *graph* and the
//!   embedding fans out across all platform heads;
//! * `batched_cached` — `predict_batch` over an already-populated cache:
//!   only graph hashing and the MLP heads run.
//!
//! All three phases run once per predictor architecture (GraphSAGE and
//! the transformer encoder) behind the `Predictor` trait — same facade,
//! same cache, different backbone.
//!
//! Results are written as JSON (default `BENCH_predict.json`):
//! per-phase predictions / total seconds / throughput / p50 / p99, the
//! derived speedups over the per-call path, and the embed-cache counters
//! — at the top level for GraphSAGE (schema back-compat) and under
//! `architectures.{sage,transformer}` for both.
//!
//! ```text
//! predict-bench [--quick] [--seed S] [--out PATH] [--no-simd] [--quant]
//! ```
//!
//! `--no-simd` pins the portable scalar GEMM kernels (the report's
//! `kernel.backend` field records which backend actually ran);
//! `--quant` times the int8 quantized predictor instead of the f32
//! champion (every phase runs through `PredictorHandle::quantized`).

use nnlqp::{metric_names, Nnlqp, PredictorHandle, PredictorKind, TrainPredictorConfig};
use nnlqp_ir::{Graph, Rng64};
use nnlqp_nas::{SubnetConfig, Supernet};
use nnlqp_sim::{DeviceFarm, Platform, PlatformSpec};
use std::time::Instant;

/// Scale knobs for one run.
struct Scale {
    /// Graphs measured + trained on.
    train_graphs: usize,
    /// Fresh graphs predicted during timing.
    eval_graphs: usize,
    /// Platform heads.
    platforms: usize,
    /// Training epochs.
    epochs: usize,
    /// Timed repetitions per phase.
    reps: usize,
    /// Graphs per timed `predict_batch` call.
    chunk: usize,
}

impl Scale {
    fn quick() -> Self {
        Scale {
            train_graphs: 6,
            eval_graphs: 8,
            platforms: 3,
            epochs: 4,
            reps: 2,
            chunk: 4,
        }
    }

    fn full() -> Self {
        Scale {
            train_graphs: 10,
            eval_graphs: 32,
            platforms: 4,
            epochs: 20,
            reps: 3,
            chunk: 8,
        }
    }
}

fn usage() -> ! {
    eprintln!("usage: predict-bench [--quick] [--seed S] [--out PATH] [--no-simd] [--quant]");
    std::process::exit(2);
}

/// Distinct subnet graphs sampled from the supernet (deduplicated by
/// subnet id so every graph exercises a different architecture).
fn sample_subnets(n: usize, rng: &mut Rng64) -> Vec<Graph> {
    let net = Supernet::default();
    let mut seen = std::collections::HashSet::new();
    let mut graphs = Vec::with_capacity(n);
    while graphs.len() < n {
        let cfg = SubnetConfig::sample(rng);
        if !seen.insert(cfg.id()) {
            continue;
        }
        let g = net
            .subnet_graph(&cfg, &format!("subnet-{}", graphs.len()))
            .expect("sampled subnet builds");
        graphs.push(g);
    }
    graphs
}

/// Percentile (nearest-rank) of per-prediction milliseconds.
fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * sorted_ms.len() as f64).ceil() as usize;
    sorted_ms[rank.clamp(1, sorted_ms.len()) - 1]
}

/// One phase's timing summary.
struct Phase {
    predictions: usize,
    total_s: f64,
    samples_ms: Vec<f64>,
}

impl Phase {
    fn throughput(&self) -> f64 {
        self.predictions as f64 / self.total_s.max(1e-12)
    }

    fn to_json(&self) -> serde_json::Value {
        let mut s = self.samples_ms.clone();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        serde_json::json!({
            "predictions": self.predictions,
            "total_s": self.total_s,
            "throughput_per_s": self.throughput(),
            "p50_ms": percentile(&s, 50.0),
            "p99_ms": percentile(&s, 99.0),
        })
    }
}

/// Per-call path: every `(graph, platform)` pair runs the full backbone.
fn run_single(system: &Nnlqp, graphs: &[Graph], platforms: &[&str], reps: usize) -> Phase {
    let mut samples = Vec::new();
    let start = Instant::now();
    for _ in 0..reps {
        for g in graphs {
            for name in platforms {
                let t = Instant::now();
                system.predict_effective(g, name).expect("predict");
                samples.push(t.elapsed().as_secs_f64() * 1e3);
            }
        }
    }
    Phase {
        predictions: samples.len(),
        total_s: start.elapsed().as_secs_f64(),
        samples_ms: samples,
    }
}

/// Batched path over `chunk`-sized graph slices; per-prediction latency
/// is each chunk's wall time divided by its prediction count. When
/// `invalidate` is set, the predictor is hot-swapped before every rep so
/// no embedding survives from the previous one.
fn run_batched(
    system: &Nnlqp,
    handle: &PredictorHandle,
    graphs: &[Graph],
    platforms: &[&str],
    reps: usize,
    chunk: usize,
    invalidate: bool,
) -> Phase {
    let mut samples = Vec::new();
    let mut predictions = 0;
    let mut total_s = 0.0;
    for _ in 0..reps {
        if invalidate {
            system.set_predictor(handle.clone()); // version bump: all-miss
        }
        let start = Instant::now();
        for slice in graphs.chunks(chunk) {
            let t = Instant::now();
            let out = system.predict_batch(slice, platforms).expect("batch");
            let n: usize = out.latencies_ms.iter().map(Vec::len).sum();
            predictions += n;
            samples.push(t.elapsed().as_secs_f64() * 1e3 / n as f64);
        }
        total_s += start.elapsed().as_secs_f64();
    }
    Phase {
        predictions,
        total_s,
        samples_ms: samples,
    }
}

/// The three phases plus cache counters for one predictor architecture.
struct ArchReport {
    single: Phase,
    cold: Phase,
    cached: Phase,
    embed_hits: u64,
    embed_misses: u64,
}

impl ArchReport {
    fn to_json(&self) -> serde_json::Value {
        serde_json::json!({
            "phases": {
                "single_uncached": self.single.to_json(),
                "batched_cold": self.cold.to_json(),
                "batched_cached": self.cached.to_json(),
            },
            "speedup": {
                "batched_vs_single": self.cold.throughput() / self.single.throughput(),
                "cached_vs_single": self.cached.throughput() / self.single.throughput(),
            },
            "embed_cache": {
                "hits": self.embed_hits,
                "misses": self.embed_misses,
            },
        })
    }
}

/// Train `arch` on the corpus already measured into `trainer`, then time
/// all three phases on fresh cache-off / cache-on systems sharing the
/// trained handle.
#[allow(clippy::too_many_arguments)]
fn run_arch(
    arch: PredictorKind,
    trainer: &Nnlqp,
    specs: &[nnlqp_sim::PlatformSpec],
    eval: &[Graph],
    platform_names: &[&str],
    scale: &Scale,
    seed: u64,
    quant: bool,
) -> ArchReport {
    trainer
        .train_predictor(
            platform_names,
            TrainPredictorConfig {
                epochs: scale.epochs,
                hidden: 32,
                gnn_layers: 2,
                seed,
                arch: Some(arch),
                ..Default::default()
            },
        )
        .expect("train");
    let mut handle = trainer.predictor_handle().expect("trained handle");
    if quant {
        handle = handle.quantized().expect("quantize trained handle");
    }

    // Two inference systems sharing the weights: cache off vs cache on.
    let baseline = Nnlqp::builder()
        .farm(DeviceFarm::new(specs, 1))
        .embed_cache(0)
        .build();
    baseline.set_predictor(handle.clone());
    let fast = Nnlqp::builder()
        .farm(DeviceFarm::new(specs, 1))
        .embed_cache(4096)
        .build();
    fast.set_predictor(handle.clone());
    let handle = fast.predictor_handle().expect("installed handle");

    let single = run_single(&baseline, eval, platform_names, scale.reps);
    let cold = run_batched(
        &fast,
        &handle,
        eval,
        platform_names,
        scale.reps,
        scale.chunk,
        true,
    );
    // Warm the cache once untimed, then measure the all-hit steady state.
    fast.predict_batch(eval, platform_names).expect("warmup");
    let cached = run_batched(
        &fast,
        &handle,
        eval,
        platform_names,
        scale.reps,
        scale.chunk,
        false,
    );
    let snap = fast.registry().snapshot();
    eprintln!(
        "[predict-bench] {arch}: single {:.0}/s  batched {:.0}/s ({:.2}x)  cached {:.0}/s ({:.2}x)",
        single.throughput(),
        cold.throughput(),
        cold.throughput() / single.throughput(),
        cached.throughput(),
        cached.throughput() / single.throughput(),
    );
    ArchReport {
        single,
        cold,
        cached,
        embed_hits: snap.counter(metric_names::EMBED_HITS),
        embed_misses: snap.counter(metric_names::EMBED_MISSES),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut seed = 0x4e4e_4c51_u64;
    let mut out = std::path::PathBuf::from("BENCH_predict.json");
    let mut no_simd = false;
    let mut quant = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--no-simd" => no_simd = true,
            "--quant" => quant = true,
            "--seed" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => usage(),
            },
            "--out" => match it.next() {
                Some(v) => out = v.into(),
                None => usage(),
            },
            _ => usage(),
        }
    }
    let scale = if quick { Scale::quick() } else { Scale::full() };
    // Only override the dispatch when the flag is given, so the
    // `NNLQP_SIMD` environment toggle keeps working without it.
    if no_simd {
        nnlqp_nn::set_simd_enabled(false);
    }
    eprintln!(
        "[predict-bench] kernel backend: {} ({})",
        nnlqp_nn::kernel().as_str(),
        if quant { "int8 quantized" } else { "f32" },
    );

    let specs = PlatformSpec::table2_platforms();
    let platform_names: Vec<&str> = specs
        .iter()
        .take(scale.platforms)
        .map(|s| s.name.as_str())
        .collect();

    // Measure a training corpus and fit the multi-head predictor.
    eprintln!(
        "[predict-bench] training on {} graphs x {} platforms ({} epochs)",
        scale.train_graphs,
        platform_names.len(),
        scale.epochs
    );
    let mut rng = Rng64::new(seed);
    let train_corpus = sample_subnets(scale.train_graphs, &mut rng);
    let trainer = Nnlqp::builder()
        .farm(DeviceFarm::new(&specs, 1))
        .reps(3)
        .seed(seed)
        .build();
    for name in &platform_names {
        trainer
            .warm_cache(&train_corpus, &Platform::by_name(name).unwrap(), 1)
            .expect("warm cache");
    }
    let eval = sample_subnets(scale.eval_graphs, &mut rng);
    eprintln!(
        "[predict-bench] timing {} graphs x {} platforms, {} reps per phase per architecture",
        eval.len(),
        platform_names.len(),
        scale.reps
    );

    // Every phase runs once per architecture through the same trait-based
    // facade path; the GraphSAGE numbers stay at the top level so older
    // consumers of the report keep parsing.
    let sage = run_arch(
        PredictorKind::Sage,
        &trainer,
        &specs,
        &eval,
        &platform_names,
        &scale,
        seed,
        quant,
    );
    let transformer = run_arch(
        PredictorKind::Transformer,
        &trainer,
        &specs,
        &eval,
        &platform_names,
        &scale,
        seed,
        quant,
    );

    let report = serde_json::json!({
        "bench": "predict",
        "quick": quick,
        "seed": seed,
        "kernel": {
            "backend": nnlqp_nn::kernel().as_str(),
            "simd_available": nnlqp_nn::simd_available(),
            "quantized": quant,
        },
        "config": {
            "train_graphs": scale.train_graphs,
            "eval_graphs": eval.len(),
            "platforms": platform_names,
            "epochs": scale.epochs,
            "reps": scale.reps,
            "batch_chunk": scale.chunk,
        },
        "phases": {
            "single_uncached": sage.single.to_json(),
            "batched_cold": sage.cold.to_json(),
            "batched_cached": sage.cached.to_json(),
        },
        "speedup": {
            "batched_vs_single": sage.cold.throughput() / sage.single.throughput(),
            "cached_vs_single": sage.cached.throughput() / sage.single.throughput(),
        },
        "embed_cache": {
            "hits": sage.embed_hits,
            "misses": sage.embed_misses,
        },
        "architectures": {
            "sage": sage.to_json(),
            "transformer": transformer.to_json(),
        },
    });
    let text = serde_json::to_string_pretty(&report).expect("serialize");
    std::fs::write(&out, format!("{text}\n")).expect("write report");
    eprintln!("[predict-bench] wrote {}", out.display());
}
