//! `gemm-bench` — micro-benchmark of the matrix kernels the inference
//! engine actually runs: portable scalar f32, AVX2+FMA f32, and the int8
//! quantized path, timed at the exact shapes the encoder backbones hit
//! (node-feature projections, SAGE layers, attention projections, head
//! MLPs).
//!
//! Unlike `predict-bench` (end-to-end: features + backbone + heads), this
//! isolates the GEMMs so kernel-level speedups are visible even when the
//! pipeline is dominated by feature extraction.
//!
//! ```text
//! gemm-bench [--quick] [--out PATH]
//! ```
//!
//! Output JSON: one entry per (shape, backend) with GFLOP/s and the
//! speedup of each backend over scalar at that shape.

use nnlqp_ir::Rng64;
use nnlqp_nn::{simd_available, Activation, Kernel, Matrix, QuantLinear, QuantRow};
use std::time::Instant;

/// A GEMM shape `[m x k] * [k x n]` with a label tying it back to the
/// layer that runs it.
struct GemmShape {
    label: &'static str,
    m: usize,
    k: usize,
    n: usize,
}

/// The shapes the deployed predictors actually execute: `m` is the node
/// count of a mid-sized corpus graph (or 1 for the pooled head), `k`/`n`
/// the layer widths of the benched configurations.
const SHAPES: [GemmShape; 5] = [
    GemmShape {
        label: "sage-layer (64 nodes, 32->32)",
        m: 64,
        k: 32,
        n: 32,
    },
    GemmShape {
        label: "encoder-in (64 nodes, feat 29 -> 64)",
        m: 64,
        k: 29,
        n: 64,
    },
    GemmShape {
        label: "attn-proj (64 nodes, 64->64)",
        m: 64,
        k: 64,
        n: 64,
    },
    GemmShape {
        label: "wide-layer (128 nodes, 64->64)",
        m: 128,
        k: 64,
        n: 64,
    },
    GemmShape {
        label: "head-mlp (1 row, 64->64)",
        m: 1,
        k: 64,
        n: 64,
    },
];

fn usage() -> ! {
    eprintln!("usage: gemm-bench [--quick] [--out PATH]");
    std::process::exit(2);
}

fn rand_matrix(rows: usize, cols: usize, rng: &mut Rng64) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| (rng.uniform() as f32) * 2.0 - 1.0)
}

/// Median of per-iteration wall times, in seconds.
fn median_s(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

/// Time `iters` runs of `f`, returning the median per-iteration seconds.
fn time_it(iters: usize, mut f: impl FnMut()) -> f64 {
    // One untimed warmup to fault in buffers and settle the clock.
    f();
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let t = Instant::now();
        f();
        samples.push(t.elapsed().as_secs_f64());
    }
    median_s(samples)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut out: Option<std::path::PathBuf> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => match it.next() {
                Some(v) => out = Some(v.into()),
                None => usage(),
            },
            _ => usage(),
        }
    }
    // Inner repeats amortize timer overhead on the microsecond shapes.
    let (iters, inner) = if quick { (30, 20) } else { (200, 50) };

    let mut rng = Rng64::new(0x6765_6d6d);
    let mut rows = Vec::new();
    eprintln!(
        "[gemm-bench] simd_available={} ({} timed iters x {} inner repeats)",
        simd_available(),
        iters,
        inner
    );
    for shape in &SHAPES {
        let (m, k, n) = (shape.m, shape.k, shape.n);
        let a = rand_matrix(m, k, &mut rng);
        let b = rand_matrix(k, n, &mut rng);
        let bias: Vec<f32> = (0..n).map(|_| (rng.uniform() as f32) - 0.5).collect();
        let ql = QuantLinear::quantize(&b, &bias);
        let flops = 2.0 * (m * k * n) as f64 * inner as f64;

        let mut out_m = Matrix::zeros(m, n);
        let mut pack = Vec::new();
        let mut qrow = QuantRow::new();

        let scalar_s = time_it(iters, || {
            for _ in 0..inner {
                a.matmul_into_with(Kernel::Scalar, &b, &mut out_m, &mut pack);
                out_m.bias_act_with(Kernel::Scalar, &bias, Activation::Relu);
            }
        });
        let simd_s = if simd_available() {
            time_it(iters, || {
                for _ in 0..inner {
                    a.matmul_into_with(Kernel::Avx2Fma, &b, &mut out_m, &mut pack);
                    out_m.bias_act_with(Kernel::Avx2Fma, &bias, Activation::Relu);
                }
            })
        } else {
            scalar_s
        };
        // The int8 path runs on the dispatched backend, like deployment.
        let int8_s = time_it(iters, || {
            for _ in 0..inner {
                ql.forward_quant(&a, &mut out_m, Activation::Relu, &mut qrow);
            }
        });

        let gflops = |s: f64| flops / s.max(1e-12) / 1e9;
        eprintln!(
            "[gemm-bench] {:<38} scalar {:6.2} GF/s  avx2 {:6.2} GF/s ({:4.2}x)  int8 {:6.2} GF/s ({:4.2}x)",
            shape.label,
            gflops(scalar_s),
            gflops(simd_s),
            scalar_s / simd_s,
            gflops(int8_s),
            scalar_s / int8_s,
        );
        rows.push(serde_json::json!({
            "label": shape.label,
            "m": m, "k": k, "n": n,
            "scalar_gflops": gflops(scalar_s),
            "avx2_gflops": gflops(simd_s),
            "int8_gflops": gflops(int8_s),
            "avx2_speedup": scalar_s / simd_s,
            "int8_speedup": scalar_s / int8_s,
        }));
    }

    let report = serde_json::json!({
        "bench": "gemm",
        "quick": quick,
        "simd_available": simd_available(),
        "shapes": rows,
    });
    let text = serde_json::to_string_pretty(&report).expect("serialize");
    match out {
        Some(path) => {
            std::fs::write(&path, format!("{text}\n")).expect("write report");
            eprintln!("[gemm-bench] wrote {}", path.display());
        }
        None => println!("{text}"),
    }
}
